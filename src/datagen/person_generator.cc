#include "datagen/person_generator.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"
#include "util/rng.h"

namespace snb::datagen {

namespace {

// RNG stream tags for the person pass.
constexpr uint64_t kStreamPerson = 201;

}  // namespace

double MeanDegreeForNetworkSize(uint64_t n) {
  if (n < 2) return 0.0;
  double logn = std::log10(static_cast<double>(n));
  double exponent = 0.512 - 0.028 * logn;
  return std::pow(static_cast<double>(n), exponent);
}

std::vector<PersonDraft> GeneratePersons(const DatagenConfig& config,
                                         const Dictionaries& dicts) {
  const uint64_t n = config.num_persons;
  SNB_CHECK_GE(n, 2u);
  const double mean_degree = MeanDegreeForNetworkSize(n);

  // The discrete power law below has an analytic-free mean; normalize it
  // empirically once so that scaled samples hit `mean_degree` on average.
  double raw_mean;
  {
    util::Rng probe(config.seed, kStreamPerson, uint64_t{0xfeed});
    double acc = 0;
    constexpr int kProbes = 4096;
    for (int i = 0; i < kProbes; ++i) {
      acc += static_cast<double>(probe.PowerLaw(1, 1000, 2.5));
    }
    raw_mean = acc / kProbes;
  }

  const core::DateTime sim_start = config.SimulationStart();
  const core::DateTime sim_end = config.SimulationEnd();
  // Persons join during the first 90 % of the simulation so that even the
  // youngest account has time to act.
  const core::DateTime join_end =
      sim_start + static_cast<core::DateTime>(
                      0.9 * static_cast<double>(sim_end - sim_start));

  std::vector<PersonDraft> drafts(n);
  for (uint64_t i = 0; i < n; ++i) {
    util::Rng rng(config.seed, kStreamPerson, i);
    PersonDraft& d = drafts[i];
    core::Person& p = d.record;

    p.id = static_cast<core::Id>(i);
    d.country = dicts.SampleCountry(rng);
    size_t city_place = dicts.SampleCityOfCountry(rng, d.country);
    p.city = dicts.places()[city_place].id;

    const bool female = rng.Bernoulli(0.5);
    p.gender = female ? "female" : "male";
    p.first_name = dicts.SampleFirstName(rng, d.country, female);
    p.last_name = dicts.SampleSurname(rng, d.country);

    // Birthday: ages 18–65 at simulation start.
    int32_t birth_year =
        config.start_year - static_cast<int32_t>(rng.UniformInt(18, 65));
    int32_t birth_month = static_cast<int32_t>(rng.UniformInt(1, 12));
    int32_t birth_day = static_cast<int32_t>(rng.UniformInt(1, 28));
    p.birthday = core::DateFromCivil(birth_year, birth_month, birth_day);

    p.creation_date = sim_start + rng.UniformInt(0, join_end - sim_start);
    p.browser_used = dicts.SampleBrowser(rng);
    p.location_ip = dicts.SampleIp(rng, d.country);

    // Languages: the country's languages plus English-as-lingua-franca is
    // already included in the dictionaries.
    p.speaks = dicts.LanguagesOfCountry(d.country);

    int num_emails = static_cast<int>(rng.UniformInt(1, 3));
    for (int e = 0; e < num_emails; ++e) {
      p.emails.push_back(dicts.MakeEmail(rng, p.first_name, p.last_name, e));
    }

    // Interests: one Zipf-ranked country-correlated main interest plus a few
    // tags correlated with it (the homophily key of the knows pass).
    d.main_interest = dicts.SampleInterestTag(rng, d.country);
    p.interests.push_back(dicts.tags()[d.main_interest].id);
    for (size_t extra : dicts.SampleCorrelatedTags(
             rng, d.main_interest, static_cast<int>(rng.UniformInt(1, 4)))) {
      p.interests.push_back(dicts.tags()[extra].id);
    }

    // University: ~55 % studied, usually in their home country.
    if (rng.Bernoulli(0.55)) {
      size_t uni_country = d.country;
      if (rng.Bernoulli(0.08)) uni_country = dicts.SampleCountry(rng);
      const std::vector<size_t>& unis =
          dicts.UniversitiesOfCountry(uni_country);
      if (!unis.empty()) {
        d.university_org = unis[static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(unis.size()) - 1))];
        core::StudyAt study;
        study.university = dicts.organisations()[d.university_org].id;
        study.class_year = birth_year + 18 +
                           static_cast<int32_t>(rng.UniformInt(3, 7));
        p.study_at.push_back(study);
      }
    }

    // Work: 0–2 companies in the home country (occasionally abroad).
    int num_jobs = static_cast<int>(rng.UniformInt(0, 2));
    for (int j = 0; j < num_jobs; ++j) {
      size_t job_country = rng.Bernoulli(0.9) ? d.country
                                              : dicts.SampleCountry(rng);
      const std::vector<size_t>& companies =
          dicts.CompaniesOfCountry(job_country);
      if (companies.empty()) continue;
      core::WorkAt work;
      size_t org = companies[static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(companies.size()) - 1))];
      work.company = dicts.organisations()[org].id;
      work.work_from = birth_year + 18 +
                       static_cast<int32_t>(rng.UniformInt(4, 20));
      // Avoid duplicate company edges.
      bool dup = false;
      for (const core::WorkAt& w : p.work_at) {
        if (w.company == work.company) dup = true;
      }
      if (!dup) p.work_at.push_back(work);
    }

    // Target degree: Facebook-like heavy tail, scaled to the network-size-
    // dependent mean, and damped for late joiners (less time to make
    // friends).
    double raw = static_cast<double>(rng.PowerLaw(1, 1000, 2.5));
    double time_left_fraction =
        static_cast<double>(sim_end - p.creation_date) /
        static_cast<double>(sim_end - sim_start);
    double scaled =
        raw * mean_degree / raw_mean * std::sqrt(time_left_fraction);
    d.target_degree = static_cast<uint32_t>(std::max(1.0, scaled));
    // Cap: nobody is friends with more than ~1/3 of the network.
    d.target_degree = std::min<uint32_t>(
        d.target_degree, static_cast<uint32_t>(std::max<uint64_t>(n / 3, 1)));
  }
  return drafts;
}

}  // namespace snb::datagen

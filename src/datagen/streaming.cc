#include "datagen/streaming.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <numeric>
#include <string>
#include <vector>

#include "core/date_time.h"
#include "core/schema.h"
#include "datagen/activity_generator.h"
#include "datagen/datagen.h"
#include "datagen/dictionaries.h"
#include "datagen/external_sort.h"
#include "datagen/flashmob.h"
#include "datagen/knows_generator.h"
#include "datagen/person_generator.h"
#include "datagen/serializer.h"
#include "datagen/update_stream.h"
#include "util/check.h"
#include "util/csv.h"

namespace snb::datagen {

namespace {

using util::CsvWriter;
using util::Status;

/// Order-preserving u64 image of a (possibly negative) DateTime.
uint64_t DateKey(core::DateTime t) {
  return static_cast<uint64_t>(t) ^ (uint64_t{1} << 63);
}
core::DateTime DateFromKey(uint64_t k) {
  return static_cast<core::DateTime>(k ^ (uint64_t{1} << 63));
}

std::string I(core::Id id) { return std::to_string(id); }

/// Joins fields exactly like CsvWriter::WriteRow (minus the newline), so a
/// line staged through an ExternalSorter and flushed with WriteLine is
/// byte-identical to a direct WriteRow.
std::string Join(const std::vector<std::string>& fields) {
  std::string line;
  size_t total = fields.size();
  for (const std::string& f : fields) total += f.size();
  line.reserve(total);
  for (size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) line.push_back('|');
    line.append(fields[i]);
  }
  return line;
}

uint64_t UpdateKey2(UpdateKind kind, uint64_t seq) {
  return (static_cast<uint64_t>(kind) << 56) | seq;
}

/// Census pass: record every message timestamp and the (date, generation
/// index) id-assignment keys; retain nothing else.
class CensusSink : public MessageSink {
 public:
  CensusSink(ExternalSorter& post_keys, ExternalSorter& comment_keys,
             ExternalSorter& stamps, size_t& likes)
      : post_keys_(post_keys),
        comment_keys_(comment_keys),
        stamps_(stamps),
        likes_(likes) {}

  void OnPost(uint32_t post_index, const core::Post& post) override {
    SNB_CHECK_OK(post_keys_.Add(DateKey(post.creation_date), post_index));
    SNB_CHECK_OK(stamps_.Add(DateKey(post.creation_date), 0));
  }
  void OnComment(uint32_t comment_index, const core::Comment& comment,
                 core::DateTime /*parent_date*/) override {
    SNB_CHECK_OK(
        comment_keys_.Add(DateKey(comment.creation_date), comment_index));
    SNB_CHECK_OK(stamps_.Add(DateKey(comment.creation_date), 0));
  }
  void OnLike(const core::Like& like,
              core::DateTime /*message_date*/) override {
    SNB_CHECK_OK(stamps_.Add(DateKey(like.creation_date), 0));
    ++likes_;
  }

 private:
  ExternalSorter& post_keys_;
  ExternalSorter& comment_keys_;
  ExternalSorter& stamps_;
  size_t& likes_;
};

/// Emission pass: finalize ids, split bulk vs update, and route every line
/// to its id-keyed sorter, timestamp-keyed update sorter, or direct writer.
class EmitSink : public MessageSink {
 public:
  struct Files {
    ExternalSorter* post;
    ExternalSorter* post_creator;
    ExternalSorter* post_tag;
    ExternalSorter* post_located;
    ExternalSorter* forum_container;
    ExternalSorter* comment;
    ExternalSorter* comment_creator;
    ExternalSorter* comment_tag;
    ExternalSorter* comment_located;
    ExternalSorter* comment_reply_comment;
    ExternalSorter* comment_reply_post;
    ExternalSorter* updates;
    CsvWriter* likes_post;
    CsvWriter* likes_comment;
  };

  EmitSink(const Files& files, const std::vector<core::Forum>& forums,
           const std::vector<core::Id>& forum_remap,
           const std::vector<uint32_t>& post_remap,
           const std::vector<uint32_t>& comment_remap,
           const std::vector<core::DateTime>& person_created,
           core::DateTime split)
      : f_(files),
        forums_(forums),
        forum_remap_(forum_remap),
        post_remap_(post_remap),
        comment_remap_(comment_remap),
        person_created_(person_created),
        split_(split) {}

  void OnPost(uint32_t post_index, const core::Post& post) override {
    core::Post p = post;
    const size_t forum_gen = static_cast<size_t>(p.forum);
    p.id = static_cast<core::Id>(post_remap_[post_index]);
    p.forum = forum_remap_[forum_gen];
    const uint64_t key = static_cast<uint64_t>(p.id);
    if (p.creation_date < split_) {
      SNB_CHECK_OK(f_.post->Add(key, 0, Join(csv_rows::Post(p))));
      SNB_CHECK_OK(
          f_.post_creator->Add(key, 0, Join({I(p.id), I(p.creator)})));
      for (core::Id t : p.tags) {
        SNB_CHECK_OK(f_.post_tag->Add(key, 0, Join({I(p.id), I(t)})));
      }
      SNB_CHECK_OK(
          f_.post_located->Add(key, 0, Join({I(p.id), I(p.country)})));
      SNB_CHECK_OK(
          f_.forum_container->Add(key, 0, Join({I(p.forum), I(p.id)})));
    } else {
      core::DateTime dep =
          std::max(person_created_[static_cast<size_t>(p.creator)],
                   forums_[forum_gen].creation_date);
      UpdateEvent e{UpdateKind::kAddPost, p.creation_date, dep, std::move(p)};
      SNB_CHECK_OK(f_.updates->Add(DateKey(e.timestamp),
                                   UpdateKey2(UpdateKind::kAddPost, key),
                                   FormatUpdateEventLine(e)));
    }
  }

  void OnComment(uint32_t comment_index, const core::Comment& comment,
                 core::DateTime parent_date) override {
    core::Comment c = comment;
    c.id = static_cast<core::Id>(comment_remap_[comment_index]);
    if (c.reply_of_post != core::kNoId) {
      c.reply_of_post = static_cast<core::Id>(
          post_remap_[static_cast<size_t>(c.reply_of_post)]);
    }
    if (c.reply_of_comment != core::kNoId) {
      c.reply_of_comment = static_cast<core::Id>(
          comment_remap_[static_cast<size_t>(c.reply_of_comment)]);
    }
    const uint64_t key = static_cast<uint64_t>(c.id);
    if (c.creation_date < split_) {
      SNB_CHECK_OK(f_.comment->Add(key, 0, Join(csv_rows::Comment(c))));
      SNB_CHECK_OK(
          f_.comment_creator->Add(key, 0, Join({I(c.id), I(c.creator)})));
      for (core::Id t : c.tags) {
        SNB_CHECK_OK(f_.comment_tag->Add(key, 0, Join({I(c.id), I(t)})));
      }
      SNB_CHECK_OK(
          f_.comment_located->Add(key, 0, Join({I(c.id), I(c.country)})));
      if (c.reply_of_comment != core::kNoId) {
        SNB_CHECK_OK(f_.comment_reply_comment->Add(
            key, 0, Join({I(c.id), I(c.reply_of_comment)})));
      }
      if (c.reply_of_post != core::kNoId) {
        SNB_CHECK_OK(f_.comment_reply_post->Add(
            key, 0, Join({I(c.id), I(c.reply_of_post)})));
      }
    } else {
      core::DateTime dep = std::max(
          person_created_[static_cast<size_t>(c.creator)], parent_date);
      UpdateEvent e{UpdateKind::kAddComment, c.creation_date, dep,
                    std::move(c)};
      SNB_CHECK_OK(f_.updates->Add(DateKey(e.timestamp),
                                   UpdateKey2(UpdateKind::kAddComment, key),
                                   FormatUpdateEventLine(e)));
    }
  }

  void OnLike(const core::Like& like, core::DateTime message_date) override {
    core::Like l = like;
    l.message = static_cast<core::Id>(
        l.is_post ? post_remap_[static_cast<size_t>(l.message)]
                  : comment_remap_[static_cast<size_t>(l.message)]);
    if (l.creation_date < split_) {
      (l.is_post ? f_.likes_post : f_.likes_comment)
          ->WriteRow(csv_rows::Like(l));
    } else {
      core::DateTime dep = std::max(
          person_created_[static_cast<size_t>(l.person)], message_date);
      UpdateKind kind =
          l.is_post ? UpdateKind::kAddLikePost : UpdateKind::kAddLikeComment;
      UpdateEvent e{kind, l.creation_date, dep, l};
      // One generation-order sequence across both like kinds, mirroring the
      // single likes loop of Generate(): the kind byte dominates the key, so
      // a shared counter still yields ascending sequence within each kind.
      SNB_CHECK_OK(f_.updates->Add(DateKey(e.timestamp),
                                   UpdateKey2(kind, like_seq_++),
                                   FormatUpdateEventLine(e)));
    }
  }

 private:
  Files f_;
  const std::vector<core::Forum>& forums_;
  const std::vector<core::Id>& forum_remap_;
  const std::vector<uint32_t>& post_remap_;
  const std::vector<uint32_t>& comment_remap_;
  const std::vector<core::DateTime>& person_created_;
  const core::DateTime split_;
  uint64_t like_seq_ = 0;
};

}  // namespace

Status GenerateStreaming(const StreamingOptions& options,
                         StreamingStats* stats) {
  StreamingStats local;
  StreamingStats& st = stats != nullptr ? *stats : local;
  st = StreamingStats{};
  const DatagenConfig& config = options.datagen;

  size_t removed = 0;
  SNB_RETURN_IF_ERROR(
      ExternalSorter::RemoveOrphanSpills(options.spill_dir, &removed));
  st.orphans_reclaimed = removed;

  // Up to 12 sorters are live during emission plus slack for the direct
  // writers; every sorter gets an equal slice of the budget.
  const size_t per_sorter =
      std::max<size_t>(size_t{64} << 10, options.memory_budget_bytes / 16);

  // ---- pass 0: resident skeleton ------------------------------------------
  Dictionaries dicts(config.seed);
  std::vector<PersonDraft> drafts = GeneratePersons(config, dicts);
  KnowsSpill knows_spill{options.spill_dir, per_sorter};
  st.knows = GenerateKnows(config, dicts, drafts, &knows_spill);
  FlashmobSchedule flashmobs(config, dicts);
  ForumPhase fp = GenerateForums(config, dicts, drafts);
  st.persons = drafts.size();
  st.forums = fp.forums.size();
  st.memberships = fp.memberships.size();

  const size_t n = drafts.size();
  std::vector<core::DateTime> person_created(n);
  for (size_t i = 0; i < n; ++i) {
    person_created[i] = drafts[i].record.creation_date;
  }

  // Forums are resident, so their creation-date id assignment is a plain
  // stable sort — identical to AssignIdsByDate.
  std::vector<uint32_t> forum_order(fp.forums.size());
  std::iota(forum_order.begin(), forum_order.end(), uint32_t{0});
  std::stable_sort(forum_order.begin(), forum_order.end(),
                   [&fp](uint32_t a, uint32_t b) {
                     return fp.forums[a].creation_date <
                            fp.forums[b].creation_date;
                   });
  std::vector<core::Id> forum_remap(fp.forums.size());
  for (size_t new_id = 0; new_id < forum_order.size(); ++new_id) {
    forum_remap[forum_order[new_id]] = static_cast<core::Id>(new_id);
  }

  // ---- pass 1: census ------------------------------------------------------
  std::vector<uint32_t> post_remap, comment_remap;
  core::DateTime split = 0;
  {
    ExternalSorter post_keys(
        {options.spill_dir, "census-post", per_sorter});
    ExternalSorter comment_keys(
        {options.spill_dir, "census-comment", per_sorter});
    ExternalSorter stamps(
        {options.spill_dir, "census-stamps", per_sorter});

    for (size_t i = 0; i < n; ++i) {
      SNB_RETURN_IF_ERROR(stamps.Add(DateKey(person_created[i]), 0));
      const PersonDraft& d = drafts[i];
      for (size_t k = 0; k < d.friends.size(); ++k) {
        if (static_cast<core::Id>(d.friends[k]) > d.record.id) {
          SNB_RETURN_IF_ERROR(stamps.Add(DateKey(d.friend_dates[k]), 0));
        }
      }
    }
    for (const core::Forum& f : fp.forums) {
      SNB_RETURN_IF_ERROR(stamps.Add(DateKey(f.creation_date), 0));
    }
    for (const core::ForumMembership& m : fp.memberships) {
      SNB_RETURN_IF_ERROR(stamps.Add(DateKey(m.join_date), 0));
    }

    CensusSink census(post_keys, comment_keys, stamps, st.likes);
    GenerateMessages(config, dicts, drafts, flashmobs, fp, census);
    st.posts = post_keys.size();
    st.comments = comment_keys.size();
    SNB_CHECK_LT(st.posts, size_t{UINT32_MAX});
    SNB_CHECK_LT(st.comments, size_t{UINT32_MAX});

    post_remap.resize(st.posts);
    uint32_t rank = 0;
    SNB_RETURN_IF_ERROR(post_keys.Merge(
        [&post_remap, &rank](uint64_t, uint64_t idx, std::string_view) {
          post_remap[static_cast<size_t>(idx)] = rank++;
        }));
    comment_remap.resize(st.comments);
    rank = 0;
    SNB_RETURN_IF_ERROR(comment_keys.Merge(
        [&comment_remap, &rank](uint64_t, uint64_t idx, std::string_view) {
          comment_remap[static_cast<size_t>(idx)] = rank++;
        }));

    // The bulk/update boundary: (1 - update_fraction) event-volume quantile,
    // the cut-th element of the fully sorted stamp sequence — the value
    // Generate() finds with nth_element.
    const size_t total = stamps.size();
    SNB_CHECK(total > 0);
    size_t cut = static_cast<size_t>((1.0 - config.update_fraction) *
                                     static_cast<double>(total));
    if (cut >= total) cut = total - 1;
    size_t pos = 0;
    SNB_RETURN_IF_ERROR(
        stamps.Merge([&pos, cut, &split](uint64_t k1, uint64_t, std::string_view) {
          if (pos == cut) split = DateFromKey(k1);
          ++pos;
        }));
    if (config.update_fraction < 1e-6) split = config.SimulationEnd() + 1;
    st.spill_runs += post_keys.spill_runs() + comment_keys.spill_runs() +
                     stamps.spill_runs();
  }
  st.split_time = split;

  // ---- pass 2: emission ----------------------------------------------------
  SNB_RETURN_IF_ERROR(WriteCsvBasicStatic(dicts.places(),
                                          dicts.organisations(), dicts.tags(),
                                          dicts.tag_classes(),
                                          options.out_dir));
  const std::string& out = options.out_dir;
  CsvWriter w;

  // Person files: bulk persons in draft (= id) order, straight from RAM.
  SNB_RETURN_IF_ERROR(OpenCsvBasicFile(w, out, "dynamic", "person"));
  for (const PersonDraft& d : drafts) {
    if (d.record.creation_date < split) w.WriteRow(csv_rows::Person(d.record));
  }
  SNB_RETURN_IF_ERROR(w.Close());

  SNB_RETURN_IF_ERROR(
      OpenCsvBasicFile(w, out, "dynamic", "person_email_emailaddress"));
  for (const PersonDraft& d : drafts) {
    if (d.record.creation_date >= split) continue;
    for (const std::string& e : d.record.emails) {
      w.WriteRow({I(d.record.id), e});
    }
  }
  SNB_RETURN_IF_ERROR(w.Close());

  SNB_RETURN_IF_ERROR(
      OpenCsvBasicFile(w, out, "dynamic", "person_hasInterest_tag"));
  for (const PersonDraft& d : drafts) {
    if (d.record.creation_date >= split) continue;
    for (core::Id t : d.record.interests) w.WriteRow({I(d.record.id), I(t)});
  }
  SNB_RETURN_IF_ERROR(w.Close());

  SNB_RETURN_IF_ERROR(
      OpenCsvBasicFile(w, out, "dynamic", "person_isLocatedIn_place"));
  for (const PersonDraft& d : drafts) {
    if (d.record.creation_date >= split) continue;
    w.WriteRow({I(d.record.id), I(d.record.city)});
  }
  SNB_RETURN_IF_ERROR(w.Close());

  SNB_RETURN_IF_ERROR(
      OpenCsvBasicFile(w, out, "dynamic", "person_speaks_language"));
  for (const PersonDraft& d : drafts) {
    if (d.record.creation_date >= split) continue;
    for (const std::string& lang : d.record.speaks) {
      w.WriteRow({I(d.record.id), lang});
    }
  }
  SNB_RETURN_IF_ERROR(w.Close());

  SNB_RETURN_IF_ERROR(
      OpenCsvBasicFile(w, out, "dynamic", "person_studyAt_organisation"));
  for (const PersonDraft& d : drafts) {
    if (d.record.creation_date >= split) continue;
    for (const core::StudyAt& s : d.record.study_at) {
      w.WriteRow({I(d.record.id), I(s.university),
                  std::to_string(s.class_year)});
    }
  }
  SNB_RETURN_IF_ERROR(w.Close());

  SNB_RETURN_IF_ERROR(
      OpenCsvBasicFile(w, out, "dynamic", "person_workAt_organisation"));
  for (const PersonDraft& d : drafts) {
    if (d.record.creation_date >= split) continue;
    for (const core::WorkAt& wk : d.record.work_at) {
      w.WriteRow({I(d.record.id), I(wk.company),
                  std::to_string(wk.work_from)});
    }
  }
  SNB_RETURN_IF_ERROR(w.Close());

  // Knows: one row per undirected edge (i < j), in (i, adjacency) order —
  // generation order, no sort needed.
  SNB_RETURN_IF_ERROR(
      OpenCsvBasicFile(w, out, "dynamic", "person_knows_person"));
  for (size_t i = 0; i < n; ++i) {
    const PersonDraft& d = drafts[i];
    for (size_t k = 0; k < d.friends.size(); ++k) {
      if (d.friends[k] <= i) continue;
      if (d.friend_dates[k] >= split) continue;
      w.WriteRow(csv_rows::Knows({static_cast<core::Id>(i),
                                  static_cast<core::Id>(d.friends[k]),
                                  d.friend_dates[k]}));
    }
  }
  SNB_RETURN_IF_ERROR(w.Close());

  // Forum files: id order via the resident permutation.
  SNB_RETURN_IF_ERROR(OpenCsvBasicFile(w, out, "dynamic", "forum"));
  for (size_t new_id = 0; new_id < forum_order.size(); ++new_id) {
    core::Forum f = fp.forums[forum_order[new_id]];
    if (f.creation_date >= split) continue;
    f.id = static_cast<core::Id>(new_id);
    w.WriteRow(csv_rows::Forum(f));
  }
  SNB_RETURN_IF_ERROR(w.Close());

  SNB_RETURN_IF_ERROR(
      OpenCsvBasicFile(w, out, "dynamic", "forum_hasModerator_person"));
  for (size_t new_id = 0; new_id < forum_order.size(); ++new_id) {
    const core::Forum& f = fp.forums[forum_order[new_id]];
    if (f.creation_date >= split) continue;
    w.WriteRow({I(static_cast<core::Id>(new_id)), I(f.moderator)});
  }
  SNB_RETURN_IF_ERROR(w.Close());

  SNB_RETURN_IF_ERROR(OpenCsvBasicFile(w, out, "dynamic", "forum_hasTag_tag"));
  for (size_t new_id = 0; new_id < forum_order.size(); ++new_id) {
    const core::Forum& f = fp.forums[forum_order[new_id]];
    if (f.creation_date >= split) continue;
    for (core::Id t : f.tags) {
      w.WriteRow({I(static_cast<core::Id>(new_id)), I(t)});
    }
  }
  SNB_RETURN_IF_ERROR(w.Close());

  // Memberships: generation order, forum ids remapped.
  SNB_RETURN_IF_ERROR(
      OpenCsvBasicFile(w, out, "dynamic", "forum_hasMember_person"));
  for (const core::ForumMembership& m : fp.memberships) {
    if (m.join_date >= split) continue;
    w.WriteRow(csv_rows::Membership(
        {forum_remap[static_cast<size_t>(m.forum)], m.person, m.join_date}));
  }
  SNB_RETURN_IF_ERROR(w.Close());

  // Message files: staged through id-keyed sorters; update stream lines
  // through a timestamp-keyed sorter.
  ExternalSorter s_post({options.spill_dir, "emit-post", per_sorter});
  ExternalSorter s_post_creator(
      {options.spill_dir, "emit-post-creator", per_sorter});
  ExternalSorter s_post_tag({options.spill_dir, "emit-post-tag", per_sorter});
  ExternalSorter s_post_located(
      {options.spill_dir, "emit-post-located", per_sorter});
  ExternalSorter s_container(
      {options.spill_dir, "emit-container", per_sorter});
  ExternalSorter s_comment({options.spill_dir, "emit-comment", per_sorter});
  ExternalSorter s_comment_creator(
      {options.spill_dir, "emit-comment-creator", per_sorter});
  ExternalSorter s_comment_tag(
      {options.spill_dir, "emit-comment-tag", per_sorter});
  ExternalSorter s_comment_located(
      {options.spill_dir, "emit-comment-located", per_sorter});
  ExternalSorter s_reply_comment(
      {options.spill_dir, "emit-reply-comment", per_sorter});
  ExternalSorter s_reply_post(
      {options.spill_dir, "emit-reply-post", per_sorter});
  ExternalSorter s_updates({options.spill_dir, "emit-updates", per_sorter});

  // Update events for the resident entities. Key2 encodes (kind, per-kind
  // sequence), reproducing the insertion order that Generate()'s stable sort
  // preserves for equal (timestamp, kind).
  for (size_t i = 0; i < n; ++i) {
    const PersonDraft& d = drafts[i];
    if (d.record.creation_date < split) continue;
    UpdateEvent e{UpdateKind::kAddPerson, d.record.creation_date, 0,
                  d.record};
    SNB_RETURN_IF_ERROR(s_updates.Add(DateKey(e.timestamp),
                                      UpdateKey2(UpdateKind::kAddPerson, i),
                                      FormatUpdateEventLine(e)));
  }
  {
    uint64_t knows_seq = 0;
    for (size_t i = 0; i < n; ++i) {
      const PersonDraft& d = drafts[i];
      for (size_t k = 0; k < d.friends.size(); ++k) {
        if (d.friends[k] <= i) continue;
        if (d.friend_dates[k] < split) continue;
        core::Knows edge{static_cast<core::Id>(i),
                         static_cast<core::Id>(d.friends[k]),
                         d.friend_dates[k]};
        core::DateTime dep =
            std::max(person_created[i],
                     person_created[static_cast<size_t>(d.friends[k])]);
        UpdateEvent e{UpdateKind::kAddKnows, edge.creation_date, dep, edge};
        SNB_RETURN_IF_ERROR(
            s_updates.Add(DateKey(e.timestamp),
                          UpdateKey2(UpdateKind::kAddKnows, knows_seq++),
                          FormatUpdateEventLine(e)));
      }
    }
  }
  for (size_t new_id = 0; new_id < forum_order.size(); ++new_id) {
    core::Forum f = fp.forums[forum_order[new_id]];
    if (f.creation_date < split) continue;
    f.id = static_cast<core::Id>(new_id);
    core::DateTime dep = person_created[static_cast<size_t>(f.moderator)];
    UpdateEvent e{UpdateKind::kAddForum, f.creation_date, dep, std::move(f)};
    SNB_RETURN_IF_ERROR(s_updates.Add(DateKey(e.timestamp),
                                      UpdateKey2(UpdateKind::kAddForum, new_id),
                                      FormatUpdateEventLine(e)));
  }
  {
    uint64_t member_seq = 0;
    for (const core::ForumMembership& m : fp.memberships) {
      const uint64_t seq = member_seq++;
      if (m.join_date < split) continue;
      core::ForumMembership final_m{forum_remap[static_cast<size_t>(m.forum)],
                                    m.person, m.join_date};
      core::DateTime dep =
          std::max(person_created[static_cast<size_t>(m.person)],
                   fp.forums[static_cast<size_t>(m.forum)].creation_date);
      UpdateEvent e{UpdateKind::kAddMembership, m.join_date, dep, final_m};
      SNB_RETURN_IF_ERROR(
          s_updates.Add(DateKey(e.timestamp),
                        UpdateKey2(UpdateKind::kAddMembership, seq),
                        FormatUpdateEventLine(e)));
    }
  }

  // Likes stream straight to their files — generation order is file order.
  CsvWriter likes_post_w, likes_comment_w;
  SNB_RETURN_IF_ERROR(
      OpenCsvBasicFile(likes_post_w, out, "dynamic", "person_likes_post"));
  SNB_RETURN_IF_ERROR(OpenCsvBasicFile(likes_comment_w, out, "dynamic",
                                       "person_likes_comment"));

  EmitSink::Files files{&s_post,
                        &s_post_creator,
                        &s_post_tag,
                        &s_post_located,
                        &s_container,
                        &s_comment,
                        &s_comment_creator,
                        &s_comment_tag,
                        &s_comment_located,
                        &s_reply_comment,
                        &s_reply_post,
                        &s_updates,
                        &likes_post_w,
                        &likes_comment_w};
  EmitSink emit(files, fp.forums, forum_remap, post_remap, comment_remap,
                person_created, split);
  GenerateMessages(config, dicts, drafts, flashmobs, fp, emit);

  SNB_RETURN_IF_ERROR(likes_post_w.Close());
  SNB_RETURN_IF_ERROR(likes_comment_w.Close());

  auto merge_file = [&](ExternalSorter& sorter,
                        const std::string& stem) -> Status {
    CsvWriter mw;
    SNB_RETURN_IF_ERROR(OpenCsvBasicFile(mw, out, "dynamic", stem));
    SNB_RETURN_IF_ERROR(sorter.Merge(
        [&mw](uint64_t, uint64_t, std::string_view line) {
          mw.WriteLine(line);
        }));
    st.spill_runs += sorter.spill_runs();
    return mw.Close();
  };
  SNB_RETURN_IF_ERROR(merge_file(s_post, "post"));
  SNB_RETURN_IF_ERROR(merge_file(s_post_creator, "post_hasCreator_person"));
  SNB_RETURN_IF_ERROR(merge_file(s_post_tag, "post_hasTag_tag"));
  SNB_RETURN_IF_ERROR(merge_file(s_post_located, "post_isLocatedIn_place"));
  SNB_RETURN_IF_ERROR(merge_file(s_container, "forum_containerOf_post"));
  SNB_RETURN_IF_ERROR(merge_file(s_comment, "comment"));
  SNB_RETURN_IF_ERROR(
      merge_file(s_comment_creator, "comment_hasCreator_person"));
  SNB_RETURN_IF_ERROR(merge_file(s_comment_tag, "comment_hasTag_tag"));
  SNB_RETURN_IF_ERROR(
      merge_file(s_comment_located, "comment_isLocatedIn_place"));
  SNB_RETURN_IF_ERROR(merge_file(s_reply_comment, "comment_replyOf_comment"));
  SNB_RETURN_IF_ERROR(merge_file(s_reply_post, "comment_replyOf_post"));

  // Update streams: merged by (timestamp, kind, seq) and routed per kind —
  // the file split of WriteUpdateStreams.
  st.update_events = s_updates.size();
  {
    std::error_code ec;
    std::filesystem::create_directories(out, ec);
    if (ec) return Status::IoError("cannot create directory " + out);
    std::FILE* person_stream =
        std::fopen((out + "/updateStream_0_0_person.csv").c_str(), "w");
    if (person_stream == nullptr) {
      return Status::IoError("cannot open person update stream");
    }
    std::FILE* forum_stream =
        std::fopen((out + "/updateStream_0_0_forum.csv").c_str(), "w");
    if (forum_stream == nullptr) {
      std::fclose(person_stream);
      return Status::IoError("cannot open forum update stream");
    }
    Status merge_status = s_updates.Merge(
        [person_stream, forum_stream](uint64_t, uint64_t key2,
                                      std::string_view line) {
          std::FILE* target =
              (key2 >> 56) ==
                      static_cast<uint64_t>(UpdateKind::kAddPerson)
                  ? person_stream
                  : forum_stream;
          std::fwrite(line.data(), 1, line.size(), target);
          std::fputc('\n', target);
        });
    st.spill_runs += s_updates.spill_runs();
    int rc1 = std::fclose(person_stream);
    int rc2 = std::fclose(forum_stream);
    SNB_RETURN_IF_ERROR(merge_status);
    if (rc1 != 0 || rc2 != 0) {
      return Status::IoError("fclose failed for update streams");
    }
  }
  return Status::Ok();
}

}  // namespace snb::datagen

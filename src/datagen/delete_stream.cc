#include "datagen/delete_stream.h"

#include <algorithm>

#include "core/date_time.h"
#include "util/rng.h"

namespace snb::datagen {
namespace {

// Stream tags keeping each sampling decision independent of every other.
enum DeleteStream : uint64_t {
  kDelPersonStream = 601,
  kDelForumStream = 602,
  kDelPostStream = 603,
  kDelCommentStream = 604,
  kDelLikeStream = 605,
  kDelMembershipStream = 606,
  kDelKnowsStream = 607,
};

core::DateTime MaxCreationDate(const core::SocialNetwork& net) {
  core::DateTime max = 0;
  for (const auto& p : net.persons) max = std::max(max, p.creation_date);
  for (const auto& k : net.knows) max = std::max(max, k.creation_date);
  for (const auto& f : net.forums) max = std::max(max, f.creation_date);
  for (const auto& m : net.memberships) max = std::max(max, m.join_date);
  for (const auto& p : net.posts) max = std::max(max, p.creation_date);
  for (const auto& c : net.comments) max = std::max(max, c.creation_date);
  for (const auto& l : net.likes) max = std::max(max, l.creation_date);
  return max;
}

}  // namespace

std::vector<UpdateEvent> DeriveDeleteStream(
    const core::SocialNetwork& net, const DeleteStreamOptions& options) {
  std::vector<UpdateEvent> events;
  const core::DateTime window_start = MaxCreationDate(net) + 1;
  const int64_t window_millis =
      std::max<int64_t>(1, options.days) * core::kMillisPerDay;

  // Sampling is keyed on the entity's external id (or endpoint pair), so the
  // stream is invariant to the container order of `net`.
  auto emit = [&](UpdateKind kind, core::Id a, core::Id b,
                  core::DateTime dependency, util::Rng& rng) {
    UpdateEvent e;
    e.kind = kind;
    e.timestamp = window_start + static_cast<core::DateTime>(
                                     rng.NextU64() %
                                     static_cast<uint64_t>(window_millis));
    e.dependency = dependency;
    Delete d;
    d.a = a;
    d.b = b;
    e.payload = d;
    events.push_back(e);
  };

  for (const auto& p : net.persons) {
    util::Rng rng(options.seed, kDelPersonStream, p.id);
    if (rng.NextDouble() < options.person_fraction) {
      emit(UpdateKind::kDelPerson, p.id, core::kNoId, p.creation_date, rng);
    }
  }
  for (const auto& f : net.forums) {
    util::Rng rng(options.seed, kDelForumStream, f.id);
    if (rng.NextDouble() < options.forum_fraction) {
      emit(UpdateKind::kDelForum, f.id, core::kNoId, f.creation_date, rng);
    }
  }
  for (const auto& p : net.posts) {
    util::Rng rng(options.seed, kDelPostStream, p.id);
    if (rng.NextDouble() < options.post_fraction) {
      emit(UpdateKind::kDelPost, p.id, core::kNoId, p.creation_date, rng);
    }
  }
  for (const auto& c : net.comments) {
    util::Rng rng(options.seed, kDelCommentStream, c.id);
    if (rng.NextDouble() < options.comment_fraction) {
      emit(UpdateKind::kDelComment, c.id, core::kNoId, c.creation_date, rng);
    }
  }
  for (const auto& l : net.likes) {
    util::Rng rng(options.seed, kDelLikeStream, l.person, l.message,
                  static_cast<uint64_t>(l.is_post));
    if (rng.NextDouble() < options.like_fraction) {
      emit(l.is_post ? UpdateKind::kDelLikePost : UpdateKind::kDelLikeComment,
           l.person, l.message, l.creation_date, rng);
    }
  }
  for (const auto& m : net.memberships) {
    util::Rng rng(options.seed, kDelMembershipStream, m.person, m.forum);
    if (rng.NextDouble() < options.membership_fraction) {
      emit(UpdateKind::kDelMembership, m.person, m.forum, m.join_date, rng);
    }
  }
  for (const auto& k : net.knows) {
    // Key on the unordered endpoint pair so either orientation samples alike.
    const core::Id lo = std::min(k.person1, k.person2);
    const core::Id hi = std::max(k.person1, k.person2);
    util::Rng rng(options.seed, kDelKnowsStream, lo, hi);
    if (rng.NextDouble() < options.knows_fraction) {
      emit(UpdateKind::kDelKnows, k.person1, k.person2, k.creation_date, rng);
    }
  }

  std::stable_sort(events.begin(), events.end(),
                   [](const UpdateEvent& a, const UpdateEvent& b) {
                     if (a.timestamp != b.timestamp) {
                       return a.timestamp < b.timestamp;
                     }
                     return static_cast<uint8_t>(a.kind) <
                            static_cast<uint8_t>(b.kind);
                   });
  return events;
}

}  // namespace snb::datagen

// Person generation (spec Fig. 2.2, step "generate persons"): all Person
// attributes plus the minimum information the later passes need — interests,
// study/work affiliations, and the target knows-degree drawn from a
// Facebook-like distribution [Ugander et al., 2011].

#ifndef SNB_DATAGEN_PERSON_GENERATOR_H_
#define SNB_DATAGEN_PERSON_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "core/schema.h"
#include "datagen/config.h"
#include "datagen/dictionaries.h"

namespace snb::datagen {

/// A person plus the generator-internal fields the knows/activity passes use.
struct PersonDraft {
  core::Person record;          // record.id == index in the drafts vector
  size_t country = 0;           // dictionary country index
  size_t university_org = SIZE_MAX;  // org index, SIZE_MAX if none
  size_t main_interest = 0;     // tag index: the interest correlation key
  uint32_t target_degree = 0;   // knows-degree budget

  // Filled by the knows generator.
  std::vector<uint32_t> friends;             // person indices
  std::vector<core::DateTime> friend_dates;  // parallel to `friends`
};

/// Mean knows-degree for a network of n persons, following the density law of
/// the Facebook graph (mean degree grows sublinearly with network size):
/// n^(0.512 - 0.028 * log10(n)), as used by the reference Datagen.
double MeanDegreeForNetworkSize(uint64_t n);

/// Generates all persons. Deterministic: person i's attributes depend only on
/// (config.seed, i).
std::vector<PersonDraft> GeneratePersons(const DatagenConfig& config,
                                         const Dictionaries& dicts);

}  // namespace snb::datagen

#endif  // SNB_DATAGEN_PERSON_GENERATOR_H_

// The property-dictionary model of spec §2.3.3.1.
//
// Every literal property is drawn from a dictionary D through a ranking
// function R (a country/gender-parameterized permutation of D) and a
// probability function F over ranks (Zipfian). This reproduces correlated
// attribute values: e.g. the popularity ranking of first names differs per
// (country, gender), so persons from the same country draw from the same
// skewed head of the dictionary.
//
// The static part of the network (Places, Organisations, TagClasses, Tags)
// is also built here, since it is fully determined by the resource data.

#ifndef SNB_DATAGEN_DICTIONARIES_H_
#define SNB_DATAGEN_DICTIONARIES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/schema.h"
#include "util/rng.h"
#include "util/zipf.h"

namespace snb::datagen {

/// Immutable processed dictionaries; build once per Datagen run.
class Dictionaries {
 public:
  explicit Dictionaries(uint64_t seed);

  Dictionaries(const Dictionaries&) = delete;
  Dictionaries& operator=(const Dictionaries&) = delete;

  // -- Static entity tables (ids assigned; indices == positions) -----------

  const std::vector<core::Place>& places() const { return places_; }
  const std::vector<core::Organisation>& organisations() const {
    return organisations_;
  }
  const std::vector<core::TagClass>& tag_classes() const {
    return tag_classes_;
  }
  const std::vector<core::Tag>& tags() const { return tags_; }

  size_t num_countries() const { return country_place_.size(); }

  /// Place index of country `c` (c in [0, num_countries())).
  size_t CountryPlace(size_t c) const { return country_place_[c]; }

  /// Country index owning a given city place index.
  size_t CountryOfCity(size_t city_place) const {
    return country_of_city_[city_place];
  }

  const std::vector<size_t>& CitiesOfCountry(size_t c) const {
    return cities_of_country_[c];
  }
  const std::vector<size_t>& UniversitiesOfCountry(size_t c) const {
    return universities_of_country_[c];
  }
  const std::vector<size_t>& CompaniesOfCountry(size_t c) const {
    return companies_of_country_[c];
  }
  const std::vector<std::string>& LanguagesOfCountry(size_t c) const {
    return languages_of_country_[c];
  }

  // -- Samplers (the F functions) -------------------------------------------

  /// Population-weighted country (index into country tables).
  size_t SampleCountry(util::Rng& rng) const;

  /// Uniform city of a country, as a place index.
  size_t SampleCityOfCountry(util::Rng& rng, size_t country) const;

  /// Zipf-ranked first name; ranking parameterized by (country, gender).
  std::string SampleFirstName(util::Rng& rng, size_t country,
                              bool female) const;

  /// Zipf-ranked surname; ranking parameterized by country.
  std::string SampleSurname(util::Rng& rng, size_t country) const;

  /// Browser by global usage probability.
  std::string SampleBrowser(util::Rng& rng) const;

  /// Random IPv4 inside the country's /16 block (the IP Zones resource).
  std::string SampleIp(util::Rng& rng, size_t country) const;

  /// Email address built from the person's name and a provider.
  std::string MakeEmail(util::Rng& rng, const std::string& first,
                        const std::string& last, int sequence) const;

  /// Zipf-ranked interest tag; ranking parameterized by country
  /// (the Tags-by-Country resource). Returns a tag index.
  size_t SampleInterestTag(util::Rng& rng, size_t country) const;

  /// Uniformly random tag index (for noise).
  size_t SampleUniformTag(util::Rng& rng) const;

  /// Tags correlated with `tag` per the Tag Matrix resource: same-class
  /// neighbours with high probability, random otherwise. Returns up to
  /// `max_extra` distinct tags != tag.
  std::vector<size_t> SampleCorrelatedTags(util::Rng& rng, size_t tag,
                                           int max_extra) const;

  /// Synthesizes message text about `tag` of exactly `length` characters
  /// (the Tag Text resource).
  std::string MakeText(util::Rng& rng, size_t tag, int length) const;

  /// Descendant closure of a tag class (inclusive), as tag-class indices.
  std::vector<size_t> TagClassDescendants(size_t tag_class) const;

 private:
  uint64_t seed_;

  std::vector<core::Place> places_;
  std::vector<core::Organisation> organisations_;
  std::vector<core::TagClass> tag_classes_;
  std::vector<core::Tag> tags_;

  std::vector<size_t> country_place_;                // country → place index
  std::vector<size_t> country_of_city_;              // place idx → country (or SIZE_MAX)
  std::vector<std::vector<size_t>> cities_of_country_;
  std::vector<std::vector<size_t>> universities_of_country_;
  std::vector<std::vector<size_t>> companies_of_country_;
  std::vector<std::vector<std::string>> languages_of_country_;
  std::vector<double> country_cdf_;

  // Ranking permutations (R functions).
  std::vector<std::vector<size_t>> male_name_rank_;    // per country
  std::vector<std::vector<size_t>> female_name_rank_;  // per country
  std::vector<std::vector<size_t>> surname_rank_;      // per country
  std::vector<std::vector<size_t>> tag_rank_;          // per country

  // Tag correlation neighbours (the Tag Matrix).
  std::vector<std::vector<size_t>> tag_neighbours_;

  std::vector<std::vector<size_t>> tags_of_class_;
  std::vector<std::vector<size_t>> class_children_;

  util::ZipfSampler name_zipf_;
  util::ZipfSampler surname_zipf_;
  util::ZipfSampler tag_zipf_;
};

}  // namespace snb::datagen

#endif  // SNB_DATAGEN_DICTIONARIES_H_

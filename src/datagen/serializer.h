// Dataset serializers (spec §2.3.4.2).
//
// CsvBasic: every entity, relation and multi-valued attribute in its own
// file — 33 files, Table 2.13. CsvMergeForeign: 1-to-1 / N-to-1 relations
// merged into entity files as foreign keys — 20 files, Table 2.14.
// Files use '|' separators and land in <dir>/static and <dir>/dynamic; each
// file carries the "_0_0.csv" shard suffix of the reference Datagen.

#ifndef SNB_DATAGEN_SERIALIZER_H_
#define SNB_DATAGEN_SERIALIZER_H_

#include <string>
#include <vector>

#include "core/schema.h"
#include "util/csv.h"
#include "util/status.h"

namespace snb::datagen {

/// The 33 CsvBasic file stems of Table 2.13 ("person_knows_person", …), in
/// spec order, without directory or shard suffix.
const std::vector<std::string>& CsvBasicFileStems();

/// Header row of one CsvBasic file. Single source of truth shared by
/// WriteCsvBasic and the streaming serializer, so both emit identical files.
const std::vector<std::string>& CsvBasicHeader(const std::string& stem);

/// CsvBasic row builders for the dynamic entities, shared by the bulk
/// serializer and the streaming datagen writer (byte-identical lines by
/// construction). Ids must already be final.
namespace csv_rows {
std::vector<std::string> Person(const core::Person& p);
std::vector<std::string> Forum(const core::Forum& f);
std::vector<std::string> Post(const core::Post& p);
std::vector<std::string> Comment(const core::Comment& c);
std::vector<std::string> Knows(const core::Knows& k);
std::vector<std::string> Membership(const core::ForumMembership& m);
std::vector<std::string> Like(const core::Like& l);
}  // namespace csv_rows

/// Writes only the static part of CsvBasic (organisation/place/tag/tagclass
/// files) under `dir` — the streaming serializer's static pass.
util::Status WriteCsvBasicStatic(const std::vector<core::Place>& places,
                                 const std::vector<core::Organisation>& orgs,
                                 const std::vector<core::Tag>& tags,
                                 const std::vector<core::TagClass>& tag_classes,
                                 const std::string& dir);

/// Opens `<dir>/<sub>/<stem>_0_0.csv` with the stem's CsvBasic header,
/// creating directories as needed.
util::Status OpenCsvBasicFile(util::CsvWriter& writer, const std::string& dir,
                              const std::string& sub, const std::string& stem);

/// The 20 CsvMergeForeign file stems of Table 2.14.
const std::vector<std::string>& CsvMergeForeignFileStems();

/// Serializes the network in CsvBasic format under `dir` (creates
/// <dir>/static and <dir>/dynamic).
util::Status WriteCsvBasic(const core::SocialNetwork& net,
                           const std::string& dir);

/// Serializes the network in CsvMergeForeign format under `dir`.
util::Status WriteCsvMergeForeign(const core::SocialNetwork& net,
                                  const std::string& dir);

/// The 31 CsvComposite file stems of Table 2.15 (multi-valued attributes
/// Person.email / Person.speaks become composite columns).
const std::vector<std::string>& CsvCompositeFileStems();

/// The 18 CsvCompositeMergeForeign file stems of Table 2.16.
const std::vector<std::string>& CsvCompositeMergeForeignFileStems();

/// Serializes in CsvComposite format (Table 2.15) under `dir`.
util::Status WriteCsvComposite(const core::SocialNetwork& net,
                               const std::string& dir);

/// Serializes in CsvCompositeMergeForeign format (Table 2.16) under `dir`.
util::Status WriteCsvCompositeMergeForeign(const core::SocialNetwork& net,
                                           const std::string& dir);

/// Serializes in the Turtle RDF format (spec §2.3.4.2): two files,
/// 0_ldbc_socialnet_static_dbp.ttl (static part) and 0_ldbc_socialnet.ttl
/// (dynamic part), under `dir`.
util::Status WriteTurtle(const core::SocialNetwork& net,
                         const std::string& dir);

}  // namespace snb::datagen

#endif  // SNB_DATAGEN_SERIALIZER_H_

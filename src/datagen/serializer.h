// Dataset serializers (spec §2.3.4.2).
//
// CsvBasic: every entity, relation and multi-valued attribute in its own
// file — 33 files, Table 2.13. CsvMergeForeign: 1-to-1 / N-to-1 relations
// merged into entity files as foreign keys — 20 files, Table 2.14.
// Files use '|' separators and land in <dir>/static and <dir>/dynamic; each
// file carries the "_0_0.csv" shard suffix of the reference Datagen.

#ifndef SNB_DATAGEN_SERIALIZER_H_
#define SNB_DATAGEN_SERIALIZER_H_

#include <string>
#include <vector>

#include "core/schema.h"
#include "util/status.h"

namespace snb::datagen {

/// The 33 CsvBasic file stems of Table 2.13 ("person_knows_person", …), in
/// spec order, without directory or shard suffix.
const std::vector<std::string>& CsvBasicFileStems();

/// The 20 CsvMergeForeign file stems of Table 2.14.
const std::vector<std::string>& CsvMergeForeignFileStems();

/// Serializes the network in CsvBasic format under `dir` (creates
/// <dir>/static and <dir>/dynamic).
util::Status WriteCsvBasic(const core::SocialNetwork& net,
                           const std::string& dir);

/// Serializes the network in CsvMergeForeign format under `dir`.
util::Status WriteCsvMergeForeign(const core::SocialNetwork& net,
                                  const std::string& dir);

/// The 31 CsvComposite file stems of Table 2.15 (multi-valued attributes
/// Person.email / Person.speaks become composite columns).
const std::vector<std::string>& CsvCompositeFileStems();

/// The 18 CsvCompositeMergeForeign file stems of Table 2.16.
const std::vector<std::string>& CsvCompositeMergeForeignFileStems();

/// Serializes in CsvComposite format (Table 2.15) under `dir`.
util::Status WriteCsvComposite(const core::SocialNetwork& net,
                               const std::string& dir);

/// Serializes in CsvCompositeMergeForeign format (Table 2.16) under `dir`.
util::Status WriteCsvCompositeMergeForeign(const core::SocialNetwork& net,
                                           const std::string& dir);

/// Serializes in the Turtle RDF format (spec §2.3.4.2): two files,
/// 0_ldbc_socialnet_static_dbp.ttl (static part) and 0_ldbc_socialnet.ttl
/// (dynamic part), under `dir`.
util::Status WriteTurtle(const core::SocialNetwork& net,
                         const std::string& dir);

}  // namespace snb::datagen

#endif  // SNB_DATAGEN_SERIALIZER_H_

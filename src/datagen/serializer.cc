#include "datagen/serializer.h"

#include <filesystem>
#include <utility>

#include "core/date_time.h"
#include "util/check.h"
#include "util/csv.h"

namespace snb::datagen {

using core::SocialNetwork;
using util::CsvWriter;
using util::Status;

namespace {

std::string PlaceTypeName(core::PlaceType t) {
  switch (t) {
    case core::PlaceType::kCity:
      return "city";
    case core::PlaceType::kCountry:
      return "country";
    case core::PlaceType::kContinent:
      return "continent";
  }
  return "city";
}

std::string OrgTypeName(core::OrganisationType t) {
  return t == core::OrganisationType::kUniversity ? "university" : "company";
}

std::string I(core::Id id) { return std::to_string(id); }
std::string N(int64_t v) { return std::to_string(v); }

/// Opens `<dir>/<sub>/<stem>_0_0.csv` with the given header.
Status OpenFile(CsvWriter& w, const std::string& dir, const std::string& sub,
                const std::string& stem,
                const std::vector<std::string>& header) {
  std::error_code ec;
  std::filesystem::create_directories(dir + "/" + sub, ec);
  if (ec) return Status::IoError("cannot create directory " + dir);
  return w.Open(dir + "/" + sub + "/" + stem + "_0_0.csv", header);
}

}  // namespace

const std::vector<std::string>& CsvBasicHeader(const std::string& stem) {
  static const auto* kHeaders = new std::vector<
      std::pair<std::string, std::vector<std::string>>>{
      {"organisation", {"id", "type", "name", "url"}},
      {"organisation_isLocatedIn_place", {"Organisation.id", "Place.id"}},
      {"place", {"id", "name", "url", "type"}},
      {"place_isPartOf_place", {"Place.id", "Place.id"}},
      {"tag", {"id", "name", "url"}},
      {"tag_hasType_tagclass", {"Tag.id", "TagClass.id"}},
      {"tagclass", {"id", "name", "url"}},
      {"tagclass_isSubclassOf_tagclass", {"TagClass.id", "TagClass.id"}},
      {"comment",
       {"id", "creationDate", "locationIP", "browserUsed", "content",
        "length"}},
      {"comment_hasCreator_person", {"Comment.id", "Person.id"}},
      {"comment_hasTag_tag", {"Comment.id", "Tag.id"}},
      {"comment_isLocatedIn_place", {"Comment.id", "Place.id"}},
      {"comment_replyOf_comment", {"Comment.id", "Comment.id"}},
      {"comment_replyOf_post", {"Comment.id", "Post.id"}},
      {"forum", {"id", "title", "creationDate"}},
      {"forum_containerOf_post", {"Forum.id", "Post.id"}},
      {"forum_hasMember_person", {"Forum.id", "Person.id", "joinDate"}},
      {"forum_hasModerator_person", {"Forum.id", "Person.id"}},
      {"forum_hasTag_tag", {"Forum.id", "Tag.id"}},
      {"person",
       {"id", "firstName", "lastName", "gender", "birthday", "creationDate",
        "locationIP", "browserUsed"}},
      {"person_email_emailaddress", {"Person.id", "email"}},
      {"person_hasInterest_tag", {"Person.id", "Tag.id"}},
      {"person_isLocatedIn_place", {"Person.id", "Place.id"}},
      {"person_knows_person", {"Person.id", "Person.id", "creationDate"}},
      {"person_likes_comment", {"Person.id", "Comment.id", "creationDate"}},
      {"person_likes_post", {"Person.id", "Post.id", "creationDate"}},
      {"person_speaks_language", {"Person.id", "language"}},
      {"person_studyAt_organisation",
       {"Person.id", "Organisation.id", "classYear"}},
      {"person_workAt_organisation",
       {"Person.id", "Organisation.id", "workFrom"}},
      {"post",
       {"id", "imageFile", "creationDate", "locationIP", "browserUsed",
        "language", "content", "length"}},
      {"post_hasCreator_person", {"Post.id", "Person.id"}},
      {"post_hasTag_tag", {"Post.id", "Tag.id"}},
      {"post_isLocatedIn_place", {"Post.id", "Place.id"}},
  };
  for (const auto& [name, header] : *kHeaders) {
    if (name == stem) return header;
  }
  SNB_CHECK_MSG(false, "unknown CsvBasic stem");
  static const std::vector<std::string> kEmpty;
  return kEmpty;
}

Status OpenCsvBasicFile(CsvWriter& writer, const std::string& dir,
                        const std::string& sub, const std::string& stem) {
  return OpenFile(writer, dir, sub, stem, CsvBasicHeader(stem));
}

namespace csv_rows {

std::vector<std::string> Person(const core::Person& p) {
  return {I(p.id), p.first_name, p.last_name, p.gender,
          core::FormatDate(p.birthday),
          core::FormatDateTime(p.creation_date), p.location_ip,
          p.browser_used};
}

std::vector<std::string> Forum(const core::Forum& f) {
  return {I(f.id), util::SanitizeField(f.title),
          core::FormatDateTime(f.creation_date)};
}

std::vector<std::string> Post(const core::Post& p) {
  return {I(p.id), p.image_file, core::FormatDateTime(p.creation_date),
          p.location_ip, p.browser_used, p.language,
          util::SanitizeField(p.content), N(p.length)};
}

std::vector<std::string> Comment(const core::Comment& c) {
  return {I(c.id), core::FormatDateTime(c.creation_date), c.location_ip,
          c.browser_used, util::SanitizeField(c.content), N(c.length)};
}

std::vector<std::string> Knows(const core::Knows& k) {
  return {I(k.person1), I(k.person2),
          core::FormatDateTime(k.creation_date)};
}

std::vector<std::string> Membership(const core::ForumMembership& m) {
  return {I(m.forum), I(m.person), core::FormatDateTime(m.join_date)};
}

std::vector<std::string> Like(const core::Like& l) {
  return {I(l.person), I(l.message), core::FormatDateTime(l.creation_date)};
}

}  // namespace csv_rows

Status WriteCsvBasicStatic(const std::vector<core::Place>& places,
                           const std::vector<core::Organisation>& orgs,
                           const std::vector<core::Tag>& tags,
                           const std::vector<core::TagClass>& tag_classes,
                           const std::string& dir) {
  CsvWriter w;
  SNB_RETURN_IF_ERROR(OpenCsvBasicFile(w, dir, "static", "organisation"));
  for (const auto& o : orgs) {
    w.WriteRow({I(o.id), OrgTypeName(o.type), o.name, o.url});
  }
  SNB_RETURN_IF_ERROR(w.Close());

  SNB_RETURN_IF_ERROR(
      OpenCsvBasicFile(w, dir, "static", "organisation_isLocatedIn_place"));
  for (const auto& o : orgs) w.WriteRow({I(o.id), I(o.place)});
  SNB_RETURN_IF_ERROR(w.Close());

  SNB_RETURN_IF_ERROR(OpenCsvBasicFile(w, dir, "static", "place"));
  for (const auto& p : places) {
    w.WriteRow({I(p.id), p.name, p.url, PlaceTypeName(p.type)});
  }
  SNB_RETURN_IF_ERROR(w.Close());

  SNB_RETURN_IF_ERROR(
      OpenCsvBasicFile(w, dir, "static", "place_isPartOf_place"));
  for (const auto& p : places) {
    if (p.part_of != core::kNoId) w.WriteRow({I(p.id), I(p.part_of)});
  }
  SNB_RETURN_IF_ERROR(w.Close());

  SNB_RETURN_IF_ERROR(OpenCsvBasicFile(w, dir, "static", "tag"));
  for (const auto& t : tags) w.WriteRow({I(t.id), t.name, t.url});
  SNB_RETURN_IF_ERROR(w.Close());

  SNB_RETURN_IF_ERROR(
      OpenCsvBasicFile(w, dir, "static", "tag_hasType_tagclass"));
  for (const auto& t : tags) w.WriteRow({I(t.id), I(t.tag_class)});
  SNB_RETURN_IF_ERROR(w.Close());

  SNB_RETURN_IF_ERROR(OpenCsvBasicFile(w, dir, "static", "tagclass"));
  for (const auto& tc : tag_classes) {
    w.WriteRow({I(tc.id), tc.name, tc.url});
  }
  SNB_RETURN_IF_ERROR(w.Close());

  SNB_RETURN_IF_ERROR(OpenCsvBasicFile(w, dir, "static",
                                       "tagclass_isSubclassOf_tagclass"));
  for (const auto& tc : tag_classes) {
    if (tc.parent != core::kNoId) w.WriteRow({I(tc.id), I(tc.parent)});
  }
  return w.Close();
}

const std::vector<std::string>& CsvBasicFileStems() {
  static const std::vector<std::string>* kStems = new std::vector<std::string>{
      // Static part (Table 2.13 order).
      "organisation",
      "organisation_isLocatedIn_place",
      "place",
      "place_isPartOf_place",
      "tag",
      "tag_hasType_tagclass",
      "tagclass",
      "tagclass_isSubclassOf_tagclass",
      // Dynamic part.
      "comment",
      "comment_hasCreator_person",
      "comment_hasTag_tag",
      "comment_isLocatedIn_place",
      "comment_replyOf_comment",
      "comment_replyOf_post",
      "forum",
      "forum_containerOf_post",
      "forum_hasMember_person",
      "forum_hasModerator_person",
      "forum_hasTag_tag",
      "person",
      "person_email_emailaddress",
      "person_hasInterest_tag",
      "person_isLocatedIn_place",
      "person_knows_person",
      "person_likes_comment",
      "person_likes_post",
      "person_speaks_language",
      "person_studyAt_organisation",
      "person_workAt_organisation",
      "post",
      "post_hasCreator_person",
      "post_hasTag_tag",
      "post_isLocatedIn_place",
  };
  return *kStems;
}

const std::vector<std::string>& CsvMergeForeignFileStems() {
  static const std::vector<std::string>* kStems = new std::vector<std::string>{
      "organisation",
      "place",
      "tag",
      "tagclass",
      "comment",
      "comment_hasTag_tag",
      "forum",
      "forum_hasMember_person",
      "forum_hasTag_tag",
      "person",
      "person_email_emailaddress",
      "person_hasInterest_tag",
      "person_knows_person",
      "person_likes_comment",
      "person_likes_post",
      "person_speaks_language",
      "person_studyAt_organisation",
      "person_workAt_organisation",
      "post",
      "post_hasTag_tag",
  };
  return *kStems;
}

Status WriteCsvBasic(const SocialNetwork& net, const std::string& dir) {
  CsvWriter w;

  // ---- static ----
  SNB_RETURN_IF_ERROR(WriteCsvBasicStatic(net.places, net.organisations,
                                          net.tags, net.tag_classes, dir));

  // ---- dynamic ----
  SNB_RETURN_IF_ERROR(OpenCsvBasicFile(w, dir, "dynamic", "comment"));
  for (const auto& c : net.comments) w.WriteRow(csv_rows::Comment(c));
  SNB_RETURN_IF_ERROR(w.Close());

  SNB_RETURN_IF_ERROR(
      OpenCsvBasicFile(w, dir, "dynamic", "comment_hasCreator_person"));
  for (const auto& c : net.comments) w.WriteRow({I(c.id), I(c.creator)});
  SNB_RETURN_IF_ERROR(w.Close());

  SNB_RETURN_IF_ERROR(OpenCsvBasicFile(w, dir, "dynamic", "comment_hasTag_tag"));
  for (const auto& c : net.comments) {
    for (core::Id t : c.tags) w.WriteRow({I(c.id), I(t)});
  }
  SNB_RETURN_IF_ERROR(w.Close());

  SNB_RETURN_IF_ERROR(
      OpenCsvBasicFile(w, dir, "dynamic", "comment_isLocatedIn_place"));
  for (const auto& c : net.comments) w.WriteRow({I(c.id), I(c.country)});
  SNB_RETURN_IF_ERROR(w.Close());

  SNB_RETURN_IF_ERROR(
      OpenCsvBasicFile(w, dir, "dynamic", "comment_replyOf_comment"));
  for (const auto& c : net.comments) {
    if (c.reply_of_comment != core::kNoId) {
      w.WriteRow({I(c.id), I(c.reply_of_comment)});
    }
  }
  SNB_RETURN_IF_ERROR(w.Close());

  SNB_RETURN_IF_ERROR(
      OpenCsvBasicFile(w, dir, "dynamic", "comment_replyOf_post"));
  for (const auto& c : net.comments) {
    if (c.reply_of_post != core::kNoId) {
      w.WriteRow({I(c.id), I(c.reply_of_post)});
    }
  }
  SNB_RETURN_IF_ERROR(w.Close());

  SNB_RETURN_IF_ERROR(OpenCsvBasicFile(w, dir, "dynamic", "forum"));
  for (const auto& f : net.forums) w.WriteRow(csv_rows::Forum(f));
  SNB_RETURN_IF_ERROR(w.Close());

  SNB_RETURN_IF_ERROR(
      OpenCsvBasicFile(w, dir, "dynamic", "forum_containerOf_post"));
  for (const auto& p : net.posts) w.WriteRow({I(p.forum), I(p.id)});
  SNB_RETURN_IF_ERROR(w.Close());

  SNB_RETURN_IF_ERROR(
      OpenCsvBasicFile(w, dir, "dynamic", "forum_hasMember_person"));
  for (const auto& m : net.memberships) w.WriteRow(csv_rows::Membership(m));
  SNB_RETURN_IF_ERROR(w.Close());

  SNB_RETURN_IF_ERROR(
      OpenCsvBasicFile(w, dir, "dynamic", "forum_hasModerator_person"));
  for (const auto& f : net.forums) w.WriteRow({I(f.id), I(f.moderator)});
  SNB_RETURN_IF_ERROR(w.Close());

  SNB_RETURN_IF_ERROR(OpenCsvBasicFile(w, dir, "dynamic", "forum_hasTag_tag"));
  for (const auto& f : net.forums) {
    for (core::Id t : f.tags) w.WriteRow({I(f.id), I(t)});
  }
  SNB_RETURN_IF_ERROR(w.Close());

  SNB_RETURN_IF_ERROR(OpenCsvBasicFile(w, dir, "dynamic", "person"));
  for (const auto& p : net.persons) w.WriteRow(csv_rows::Person(p));
  SNB_RETURN_IF_ERROR(w.Close());

  SNB_RETURN_IF_ERROR(OpenCsvBasicFile(w, dir, "dynamic", "person_email_emailaddress"));
  for (const auto& p : net.persons) {
    for (const std::string& e : p.emails) w.WriteRow({I(p.id), e});
  }
  SNB_RETURN_IF_ERROR(w.Close());

  SNB_RETURN_IF_ERROR(OpenCsvBasicFile(w, dir, "dynamic", "person_hasInterest_tag"));
  for (const auto& p : net.persons) {
    for (core::Id t : p.interests) w.WriteRow({I(p.id), I(t)});
  }
  SNB_RETURN_IF_ERROR(w.Close());

  SNB_RETURN_IF_ERROR(OpenCsvBasicFile(w, dir, "dynamic", "person_isLocatedIn_place"));
  for (const auto& p : net.persons) w.WriteRow({I(p.id), I(p.city)});
  SNB_RETURN_IF_ERROR(w.Close());

  SNB_RETURN_IF_ERROR(OpenCsvBasicFile(w, dir, "dynamic", "person_knows_person"));
  for (const auto& k : net.knows) w.WriteRow(csv_rows::Knows(k));
  SNB_RETURN_IF_ERROR(w.Close());

  SNB_RETURN_IF_ERROR(OpenCsvBasicFile(w, dir, "dynamic", "person_likes_comment"));
  for (const auto& l : net.likes) {
    if (!l.is_post) w.WriteRow(csv_rows::Like(l));
  }
  SNB_RETURN_IF_ERROR(w.Close());

  SNB_RETURN_IF_ERROR(OpenCsvBasicFile(w, dir, "dynamic", "person_likes_post"));
  for (const auto& l : net.likes) {
    if (l.is_post) w.WriteRow(csv_rows::Like(l));
  }
  SNB_RETURN_IF_ERROR(w.Close());

  SNB_RETURN_IF_ERROR(OpenCsvBasicFile(w, dir, "dynamic", "person_speaks_language"));
  for (const auto& p : net.persons) {
    for (const std::string& lang : p.speaks) w.WriteRow({I(p.id), lang});
  }
  SNB_RETURN_IF_ERROR(w.Close());

  SNB_RETURN_IF_ERROR(OpenCsvBasicFile(w, dir, "dynamic", "person_studyAt_organisation"));
  for (const auto& p : net.persons) {
    for (const core::StudyAt& s : p.study_at) {
      w.WriteRow({I(p.id), I(s.university), N(s.class_year)});
    }
  }
  SNB_RETURN_IF_ERROR(w.Close());

  SNB_RETURN_IF_ERROR(OpenCsvBasicFile(w, dir, "dynamic", "person_workAt_organisation"));
  for (const auto& p : net.persons) {
    for (const core::WorkAt& wk : p.work_at) {
      w.WriteRow({I(p.id), I(wk.company), N(wk.work_from)});
    }
  }
  SNB_RETURN_IF_ERROR(w.Close());

  SNB_RETURN_IF_ERROR(OpenCsvBasicFile(w, dir, "dynamic", "post"));
  for (const auto& p : net.posts) w.WriteRow(csv_rows::Post(p));
  SNB_RETURN_IF_ERROR(w.Close());

  SNB_RETURN_IF_ERROR(OpenCsvBasicFile(w, dir, "dynamic", "post_hasCreator_person"));
  for (const auto& p : net.posts) w.WriteRow({I(p.id), I(p.creator)});
  SNB_RETURN_IF_ERROR(w.Close());

  SNB_RETURN_IF_ERROR(OpenCsvBasicFile(w, dir, "dynamic", "post_hasTag_tag"));
  for (const auto& p : net.posts) {
    for (core::Id t : p.tags) w.WriteRow({I(p.id), I(t)});
  }
  SNB_RETURN_IF_ERROR(w.Close());

  SNB_RETURN_IF_ERROR(OpenCsvBasicFile(w, dir, "dynamic", "post_isLocatedIn_place"));
  for (const auto& p : net.posts) w.WriteRow({I(p.id), I(p.country)});
  SNB_RETURN_IF_ERROR(w.Close());

  return Status::Ok();
}

Status WriteCsvMergeForeign(const SocialNetwork& net, const std::string& dir) {
  CsvWriter w;
  auto opt = [](core::Id id) {
    return id == core::kNoId ? std::string() : std::to_string(id);
  };

  SNB_RETURN_IF_ERROR(OpenFile(w, dir, "static", "organisation",
                               {"id", "type", "name", "url", "place"}));
  for (const auto& o : net.organisations) {
    w.WriteRow({I(o.id), OrgTypeName(o.type), o.name, o.url, I(o.place)});
  }
  SNB_RETURN_IF_ERROR(w.Close());

  SNB_RETURN_IF_ERROR(OpenFile(w, dir, "static", "place",
                               {"id", "name", "url", "type", "isPartOf"}));
  for (const auto& p : net.places) {
    w.WriteRow(
        {I(p.id), p.name, p.url, PlaceTypeName(p.type), opt(p.part_of)});
  }
  SNB_RETURN_IF_ERROR(w.Close());

  SNB_RETURN_IF_ERROR(OpenFile(w, dir, "static", "tag",
                               {"id", "name", "url", "hasType"}));
  for (const auto& t : net.tags) {
    w.WriteRow({I(t.id), t.name, t.url, I(t.tag_class)});
  }
  SNB_RETURN_IF_ERROR(w.Close());

  SNB_RETURN_IF_ERROR(OpenFile(w, dir, "static", "tagclass",
                               {"id", "name", "url", "isSubclassOf"}));
  for (const auto& tc : net.tag_classes) {
    w.WriteRow({I(tc.id), tc.name, tc.url, opt(tc.parent)});
  }
  SNB_RETURN_IF_ERROR(w.Close());

  SNB_RETURN_IF_ERROR(OpenFile(
      w, dir, "dynamic", "comment",
      {"id", "creationDate", "locationIP", "browserUsed", "content", "length",
       "creator", "place", "replyOfPost", "replyOfComment"}));
  for (const auto& c : net.comments) {
    w.WriteRow({I(c.id), core::FormatDateTime(c.creation_date), c.location_ip,
                c.browser_used, util::SanitizeField(c.content), N(c.length),
                I(c.creator), I(c.country), opt(c.reply_of_post),
                opt(c.reply_of_comment)});
  }
  SNB_RETURN_IF_ERROR(w.Close());

  SNB_RETURN_IF_ERROR(OpenFile(w, dir, "dynamic", "comment_hasTag_tag",
                               {"Comment.id", "Tag.id"}));
  for (const auto& c : net.comments) {
    for (core::Id t : c.tags) w.WriteRow({I(c.id), I(t)});
  }
  SNB_RETURN_IF_ERROR(w.Close());

  SNB_RETURN_IF_ERROR(OpenFile(w, dir, "dynamic", "forum",
                               {"id", "title", "creationDate", "moderator"}));
  for (const auto& f : net.forums) {
    w.WriteRow({I(f.id), util::SanitizeField(f.title),
                core::FormatDateTime(f.creation_date), I(f.moderator)});
  }
  SNB_RETURN_IF_ERROR(w.Close());

  SNB_RETURN_IF_ERROR(OpenFile(w, dir, "dynamic", "forum_hasMember_person",
                               {"Forum.id", "Person.id", "joinDate"}));
  for (const auto& m : net.memberships) {
    w.WriteRow({I(m.forum), I(m.person), core::FormatDateTime(m.join_date)});
  }
  SNB_RETURN_IF_ERROR(w.Close());

  SNB_RETURN_IF_ERROR(OpenFile(w, dir, "dynamic", "forum_hasTag_tag",
                               {"Forum.id", "Tag.id"}));
  for (const auto& f : net.forums) {
    for (core::Id t : f.tags) w.WriteRow({I(f.id), I(t)});
  }
  SNB_RETURN_IF_ERROR(w.Close());

  SNB_RETURN_IF_ERROR(OpenFile(
      w, dir, "dynamic", "person",
      {"id", "firstName", "lastName", "gender", "birthday", "creationDate",
       "locationIP", "browserUsed", "place"}));
  for (const auto& p : net.persons) {
    w.WriteRow({I(p.id), p.first_name, p.last_name, p.gender,
                core::FormatDate(p.birthday),
                core::FormatDateTime(p.creation_date), p.location_ip,
                p.browser_used, I(p.city)});
  }
  SNB_RETURN_IF_ERROR(w.Close());

  SNB_RETURN_IF_ERROR(OpenFile(w, dir, "dynamic", "person_email_emailaddress",
                               {"Person.id", "email"}));
  for (const auto& p : net.persons) {
    for (const std::string& e : p.emails) w.WriteRow({I(p.id), e});
  }
  SNB_RETURN_IF_ERROR(w.Close());

  SNB_RETURN_IF_ERROR(OpenFile(w, dir, "dynamic", "person_hasInterest_tag",
                               {"Person.id", "Tag.id"}));
  for (const auto& p : net.persons) {
    for (core::Id t : p.interests) w.WriteRow({I(p.id), I(t)});
  }
  SNB_RETURN_IF_ERROR(w.Close());

  SNB_RETURN_IF_ERROR(OpenFile(w, dir, "dynamic", "person_knows_person",
                               {"Person.id", "Person.id", "creationDate"}));
  for (const auto& k : net.knows) w.WriteRow(csv_rows::Knows(k));
  SNB_RETURN_IF_ERROR(w.Close());

  SNB_RETURN_IF_ERROR(OpenFile(w, dir, "dynamic", "person_likes_comment",
                               {"Person.id", "Comment.id", "creationDate"}));
  for (const auto& l : net.likes) {
    if (!l.is_post) w.WriteRow(csv_rows::Like(l));
  }
  SNB_RETURN_IF_ERROR(w.Close());

  SNB_RETURN_IF_ERROR(OpenFile(w, dir, "dynamic", "person_likes_post",
                               {"Person.id", "Post.id", "creationDate"}));
  for (const auto& l : net.likes) {
    if (l.is_post) w.WriteRow(csv_rows::Like(l));
  }
  SNB_RETURN_IF_ERROR(w.Close());

  SNB_RETURN_IF_ERROR(OpenFile(w, dir, "dynamic", "person_speaks_language",
                               {"Person.id", "language"}));
  for (const auto& p : net.persons) {
    for (const std::string& lang : p.speaks) w.WriteRow({I(p.id), lang});
  }
  SNB_RETURN_IF_ERROR(w.Close());

  SNB_RETURN_IF_ERROR(OpenFile(w, dir, "dynamic", "person_studyAt_organisation",
                               {"Person.id", "Organisation.id", "classYear"}));
  for (const auto& p : net.persons) {
    for (const core::StudyAt& s : p.study_at) {
      w.WriteRow({I(p.id), I(s.university), N(s.class_year)});
    }
  }
  SNB_RETURN_IF_ERROR(w.Close());

  SNB_RETURN_IF_ERROR(OpenFile(w, dir, "dynamic", "person_workAt_organisation",
                               {"Person.id", "Organisation.id", "workFrom"}));
  for (const auto& p : net.persons) {
    for (const core::WorkAt& wk : p.work_at) {
      w.WriteRow({I(p.id), I(wk.company), N(wk.work_from)});
    }
  }
  SNB_RETURN_IF_ERROR(w.Close());

  SNB_RETURN_IF_ERROR(OpenFile(
      w, dir, "dynamic", "post",
      {"id", "imageFile", "creationDate", "locationIP", "browserUsed",
       "language", "content", "length", "creator", "Forum.id", "place"}));
  for (const auto& p : net.posts) {
    w.WriteRow({I(p.id), p.image_file, core::FormatDateTime(p.creation_date),
                p.location_ip, p.browser_used, p.language,
                util::SanitizeField(p.content), N(p.length), I(p.creator),
                I(p.forum), I(p.country)});
  }
  SNB_RETURN_IF_ERROR(w.Close());

  SNB_RETURN_IF_ERROR(OpenFile(w, dir, "dynamic", "post_hasTag_tag",
                               {"Post.id", "Tag.id"}));
  for (const auto& p : net.posts) {
    for (core::Id t : p.tags) w.WriteRow({I(p.id), I(t)});
  }
  SNB_RETURN_IF_ERROR(w.Close());

  return Status::Ok();
}

}  // namespace snb::datagen

#include "datagen/dictionaries.h"

#include <algorithm>
#include <numeric>

#include "datagen/dictionary_data.h"
#include "util/check.h"

namespace snb::datagen {

using core::Organisation;
using core::OrganisationType;
using core::Place;
using core::PlaceType;
using core::Tag;
using core::TagClass;

namespace {

/// Deterministic permutation of [0, n) keyed by `key`: the ranking function R.
std::vector<size_t> RankPermutation(uint64_t key, size_t n) {
  std::vector<size_t> perm(n);
  std::iota(perm.begin(), perm.end(), size_t{0});
  std::sort(perm.begin(), perm.end(), [key](size_t a, size_t b) {
    uint64_t ha = util::Mix64(key ^ (a * 0x9e3779b97f4a7c15ULL + 1));
    uint64_t hb = util::Mix64(key ^ (b * 0x9e3779b97f4a7c15ULL + 1));
    return ha != hb ? ha < hb : a < b;
  });
  return perm;
}

std::string UrlFor(const std::string& kind, const std::string& name) {
  std::string slug = name;
  for (char& c : slug) {
    if (c == ' ') c = '_';
  }
  return "http://snb.example.org/" + kind + "/" + slug;
}

}  // namespace

Dictionaries::Dictionaries(uint64_t seed)
    : seed_(seed),
      name_zipf_(data::kNumMaleNames, 0.9),
      surname_zipf_(data::kNumSurnames, 0.9),
      tag_zipf_(data::kNumTags, 1.0) {
  SNB_CHECK_EQ(data::kNumMaleNames, data::kNumFemaleNames);

  // ---- Places: continents, then countries, then cities --------------------
  core::Id next_place = 0;
  std::vector<size_t> continent_index(data::kNumContinents);
  for (size_t i = 0; i < data::kNumContinents; ++i) {
    Place p;
    p.id = next_place++;
    p.name = data::kContinents[i];
    p.url = UrlFor("place", p.name);
    p.type = PlaceType::kContinent;
    p.part_of = core::kNoId;
    continent_index[i] = places_.size();
    places_.push_back(std::move(p));
  }
  auto continent_of = [&](const char* name) -> size_t {
    for (size_t i = 0; i < data::kNumContinents; ++i) {
      if (std::string(data::kContinents[i]) == name) return continent_index[i];
    }
    SNB_UNREACHABLE();
  };

  country_place_.resize(data::kNumCountries);
  cities_of_country_.resize(data::kNumCountries);
  universities_of_country_.resize(data::kNumCountries);
  companies_of_country_.resize(data::kNumCountries);
  languages_of_country_.resize(data::kNumCountries);

  for (size_t c = 0; c < data::kNumCountries; ++c) {
    const data::CountryRow& row = data::kCountries[c];
    Place p;
    p.id = next_place++;
    p.name = row.name;
    p.url = UrlFor("place", p.name);
    p.type = PlaceType::kCountry;
    p.part_of = places_[continent_of(row.continent)].id;
    country_place_[c] = places_.size();
    places_.push_back(std::move(p));
    for (const char* const* lang = row.languages; *lang != nullptr; ++lang) {
      languages_of_country_[c].push_back(*lang);
    }
  }
  country_of_city_.assign(places_.size(), SIZE_MAX);
  for (size_t c = 0; c < data::kNumCountries; ++c) {
    const data::CountryRow& row = data::kCountries[c];
    for (const char* const* city = row.cities; *city != nullptr; ++city) {
      Place p;
      p.id = next_place++;
      p.name = *city;
      p.url = UrlFor("place", p.name);
      p.type = PlaceType::kCity;
      p.part_of = places_[country_place_[c]].id;
      cities_of_country_[c].push_back(places_.size());
      country_of_city_.push_back(c);
      places_.push_back(std::move(p));
    }
  }

  // ---- Organisations: universities (per city) then companies (per country).
  core::Id next_org = 0;
  for (size_t c = 0; c < data::kNumCountries; ++c) {
    for (size_t city_place : cities_of_country_[c]) {
      Organisation u;
      u.id = next_org++;
      u.type = OrganisationType::kUniversity;
      u.name = "University of " + places_[city_place].name;
      u.url = UrlFor("organisation", u.name);
      u.place = places_[city_place].id;
      universities_of_country_[c].push_back(organisations_.size());
      organisations_.push_back(std::move(u));
    }
  }
  for (size_t c = 0; c < data::kNumCountries; ++c) {
    for (size_t s = 0; s < data::kNumCompanySectors; ++s) {
      Organisation o;
      o.id = next_org++;
      o.type = OrganisationType::kCompany;
      o.name = std::string(data::kCountries[c].name) + " " +
               data::kCompanySectors[s];
      o.url = UrlFor("organisation", o.name);
      o.place = places_[country_place_[c]].id;
      companies_of_country_[c].push_back(organisations_.size());
      organisations_.push_back(std::move(o));
    }
  }

  // ---- Tag classes & tags --------------------------------------------------
  core::Id next_class = 0;
  auto class_index_of = [&](const char* name) -> size_t {
    for (size_t i = 0; i < tag_classes_.size(); ++i) {
      if (tag_classes_[i].name == name) return i;
    }
    SNB_UNREACHABLE();
  };
  for (size_t i = 0; i < data::kNumTagClasses; ++i) {
    const data::TagClassRow& row = data::kTagClasses[i];
    TagClass tc;
    tc.id = next_class++;
    tc.name = row.name;
    tc.url = UrlFor("tagclass", tc.name);
    tc.parent = row.parent == nullptr
                    ? core::kNoId
                    : tag_classes_[class_index_of(row.parent)].id;
    tag_classes_.push_back(std::move(tc));
  }
  class_children_.resize(tag_classes_.size());
  for (size_t i = 0; i < tag_classes_.size(); ++i) {
    if (tag_classes_[i].parent != core::kNoId) {
      class_children_[static_cast<size_t>(tag_classes_[i].parent)].push_back(
          i);
    }
  }

  tags_of_class_.resize(tag_classes_.size());
  core::Id next_tag = 0;
  for (size_t i = 0; i < data::kNumTags; ++i) {
    const data::TagRow& row = data::kTags[i];
    Tag t;
    t.id = next_tag++;
    t.name = row.name;
    t.url = UrlFor("tag", t.name);
    size_t cls = class_index_of(row.tag_class);
    t.tag_class = tag_classes_[cls].id;
    tags_of_class_[cls].push_back(tags_.size());
    tags_.push_back(std::move(t));
  }

  // ---- Ranking permutations (R) --------------------------------------------
  male_name_rank_.reserve(data::kNumCountries);
  female_name_rank_.reserve(data::kNumCountries);
  surname_rank_.reserve(data::kNumCountries);
  tag_rank_.reserve(data::kNumCountries);
  for (size_t c = 0; c < data::kNumCountries; ++c) {
    male_name_rank_.push_back(
        RankPermutation(util::MixSeed(seed_, 101, c), data::kNumMaleNames));
    female_name_rank_.push_back(
        RankPermutation(util::MixSeed(seed_, 102, c), data::kNumFemaleNames));
    surname_rank_.push_back(
        RankPermutation(util::MixSeed(seed_, 103, c), data::kNumSurnames));
    tag_rank_.push_back(
        RankPermutation(util::MixSeed(seed_, 104, c), data::kNumTags));
  }

  // ---- Country sampling CDF ------------------------------------------------
  double total = 0;
  for (size_t c = 0; c < data::kNumCountries; ++c) {
    total += data::kCountries[c].population;
  }
  double acc = 0;
  country_cdf_.resize(data::kNumCountries);
  for (size_t c = 0; c < data::kNumCountries; ++c) {
    acc += data::kCountries[c].population / total;
    country_cdf_[c] = acc;
  }
  country_cdf_.back() = 1.0;

  // ---- Tag correlation neighbours (the Tag Matrix) -------------------------
  // Each tag correlates with a deterministic subset of its class siblings.
  tag_neighbours_.resize(tags_.size());
  for (size_t t = 0; t < tags_.size(); ++t) {
    size_t cls = 0;
    for (size_t i = 0; i < tag_classes_.size(); ++i) {
      if (tag_classes_[i].id == tags_[t].tag_class) cls = i;
    }
    const std::vector<size_t>& siblings = tags_of_class_[cls];
    std::vector<size_t> order =
        RankPermutation(util::MixSeed(seed_, 105, t), siblings.size());
    for (size_t k = 0; k < order.size() && tag_neighbours_[t].size() < 6;
         ++k) {
      size_t candidate = siblings[order[k]];
      if (candidate != t) tag_neighbours_[t].push_back(candidate);
    }
    // One cross-class neighbour for long-range correlation.
    size_t cross = util::Mix64(util::MixSeed(seed_, 106, t)) % tags_.size();
    if (cross != t) tag_neighbours_[t].push_back(cross);
  }
}

size_t Dictionaries::SampleCountry(util::Rng& rng) const {
  double u = rng.NextDouble();
  auto it = std::lower_bound(country_cdf_.begin(), country_cdf_.end(), u);
  return static_cast<size_t>(it - country_cdf_.begin());
}

size_t Dictionaries::SampleCityOfCountry(util::Rng& rng,
                                         size_t country) const {
  const std::vector<size_t>& cities = cities_of_country_[country];
  SNB_CHECK(!cities.empty());
  return cities[static_cast<size_t>(
      rng.UniformInt(0, static_cast<int64_t>(cities.size()) - 1))];
}

std::string Dictionaries::SampleFirstName(util::Rng& rng, size_t country,
                                          bool female) const {
  size_t rank = name_zipf_.Sample(rng);
  if (female) return data::kFemaleNames[female_name_rank_[country][rank]];
  return data::kMaleNames[male_name_rank_[country][rank]];
}

std::string Dictionaries::SampleSurname(util::Rng& rng,
                                        size_t country) const {
  size_t rank = surname_zipf_.Sample(rng);
  return data::kSurnames[surname_rank_[country][rank]];
}

std::string Dictionaries::SampleBrowser(util::Rng& rng) const {
  double u = rng.NextDouble();
  double acc = 0;
  for (size_t i = 0; i < data::kNumBrowsers; ++i) {
    acc += data::kBrowsers[i].probability;
    if (u < acc) return data::kBrowsers[i].name;
  }
  return data::kBrowsers[data::kNumBrowsers - 1].name;
}

std::string Dictionaries::SampleIp(util::Rng& rng, size_t country) const {
  // Each country owns the /16 block (1 + 7c mod 223).(13 + 11c mod 251).x.y.
  int a = static_cast<int>(1 + (7 * country) % 223);
  int b = static_cast<int>(13 + (11 * country) % 251);
  int x = static_cast<int>(rng.UniformInt(0, 255));
  int y = static_cast<int>(rng.UniformInt(1, 254));
  return std::to_string(a) + "." + std::to_string(b) + "." +
         std::to_string(x) + "." + std::to_string(y);
}

std::string Dictionaries::MakeEmail(util::Rng& rng, const std::string& first,
                                    const std::string& last,
                                    int sequence) const {
  std::string local = first + "." + last;
  for (char& c : local) {
    if (c == ' ') c = '_';
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  if (sequence > 0) local += std::to_string(sequence);
  size_t provider = static_cast<size_t>(
      rng.UniformInt(0, static_cast<int64_t>(data::kNumEmailProviders) - 1));
  return local + "@" + data::kEmailProviders[provider];
}

size_t Dictionaries::SampleInterestTag(util::Rng& rng, size_t country) const {
  size_t rank = tag_zipf_.Sample(rng);
  return tag_rank_[country][rank];
}

size_t Dictionaries::SampleUniformTag(util::Rng& rng) const {
  return static_cast<size_t>(
      rng.UniformInt(0, static_cast<int64_t>(tags_.size()) - 1));
}

std::vector<size_t> Dictionaries::SampleCorrelatedTags(util::Rng& rng,
                                                       size_t tag,
                                                       int max_extra) const {
  std::vector<size_t> out;
  const std::vector<size_t>& neighbours = tag_neighbours_[tag];
  for (int i = 0; i < max_extra; ++i) {
    size_t pick;
    if (!neighbours.empty() && rng.Bernoulli(0.8)) {
      pick = neighbours[static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(neighbours.size()) - 1))];
    } else {
      pick = SampleUniformTag(rng);
    }
    if (pick != tag &&
        std::find(out.begin(), out.end(), pick) == out.end()) {
      out.push_back(pick);
    }
  }
  return out;
}

std::string Dictionaries::MakeText(util::Rng& rng, size_t tag,
                                   int length) const {
  SNB_CHECK_GE(length, 1);
  std::string text = "About " + tags_[tag].name + ":";
  while (static_cast<int>(text.size()) < length) {
    text.push_back(' ');
    text += data::kTextWords[static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(data::kNumTextWords) - 1))];
  }
  text.resize(static_cast<size_t>(length));
  // Avoid trailing separator-looking whitespace after the resize.
  if (text.back() == ' ') text.back() = '.';
  return text;
}

std::vector<size_t> Dictionaries::TagClassDescendants(
    size_t tag_class) const {
  std::vector<size_t> out{tag_class};
  for (size_t i = 0; i < out.size(); ++i) {
    for (size_t child : class_children_[out[i]]) {
      out.push_back(child);
    }
  }
  return out;
}

}  // namespace snb::datagen

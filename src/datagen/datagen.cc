#include "datagen/datagen.h"

#include <algorithm>
#include <numeric>

#include "datagen/activity_generator.h"
#include "datagen/dictionaries.h"
#include "datagen/flashmob.h"
#include "datagen/knows_generator.h"
#include "datagen/person_generator.h"
#include "util/check.h"

namespace snb::datagen {

namespace {

/// Sorts entities by creation date and returns old-index → new-id mapping;
/// reorders `items` in place.
template <typename T>
std::vector<core::Id> AssignIdsByDate(std::vector<T>& items) {
  std::vector<size_t> order(items.size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::stable_sort(order.begin(), order.end(), [&items](size_t a, size_t b) {
    return items[a].creation_date < items[b].creation_date;
  });
  std::vector<core::Id> remap(items.size());
  std::vector<T> sorted;
  sorted.reserve(items.size());
  for (size_t new_id = 0; new_id < order.size(); ++new_id) {
    remap[order[new_id]] = static_cast<core::Id>(new_id);
    sorted.push_back(std::move(items[order[new_id]]));
    sorted.back().id = static_cast<core::Id>(new_id);
  }
  items = std::move(sorted);
  return remap;
}

}  // namespace

GeneratedData Generate(const DatagenConfig& config) {
  Dictionaries dicts(config.seed);
  std::vector<PersonDraft> drafts = GeneratePersons(config, dicts);
  GenerateKnows(config, dicts, drafts);
  FlashmobSchedule flashmobs(config, dicts);
  ActivityData activity = GenerateActivity(config, dicts, drafts, flashmobs);

  // -- Final id assignment --------------------------------------------------
  // Persons already carry id == index. Forums, posts and comments get
  // creation-date-ordered ids; all references are remapped.
  std::vector<core::Id> forum_remap = AssignIdsByDate(activity.forums);
  for (core::ForumMembership& m : activity.memberships) {
    m.forum = forum_remap[static_cast<size_t>(m.forum)];
  }
  for (core::Post& p : activity.posts) {
    p.forum = forum_remap[static_cast<size_t>(p.forum)];
  }

  std::vector<core::Id> post_remap = AssignIdsByDate(activity.posts);
  std::vector<core::Id> comment_remap = AssignIdsByDate(activity.comments);
  for (core::Comment& c : activity.comments) {
    if (c.reply_of_post != core::kNoId) {
      c.reply_of_post = post_remap[static_cast<size_t>(c.reply_of_post)];
    }
    if (c.reply_of_comment != core::kNoId) {
      c.reply_of_comment =
          comment_remap[static_cast<size_t>(c.reply_of_comment)];
    }
  }
  for (core::Like& l : activity.likes) {
    l.message = l.is_post ? post_remap[static_cast<size_t>(l.message)]
                          : comment_remap[static_cast<size_t>(l.message)];
  }

  // -- Split into bulk dataset vs update streams -----------------------------
  // The update streams carry the trailing `update_fraction` of the generated
  // *events* (spec §2.3.4), so the boundary is an event-volume quantile, not
  // a share of simulated time.
  core::DateTime split;
  {
    std::vector<core::DateTime> stamps;
    stamps.reserve(drafts.size() + activity.posts.size() +
                   activity.comments.size() + activity.likes.size() +
                   activity.memberships.size() + activity.forums.size());
    for (const PersonDraft& d : drafts) {
      stamps.push_back(d.record.creation_date);
      for (size_t k = 0; k < d.friends.size(); ++k) {
        if (static_cast<core::Id>(d.friends[k]) > d.record.id) {
          stamps.push_back(d.friend_dates[k]);
        }
      }
    }
    for (const core::Forum& f : activity.forums) {
      stamps.push_back(f.creation_date);
    }
    for (const core::ForumMembership& m : activity.memberships) {
      stamps.push_back(m.join_date);
    }
    for (const core::Post& p : activity.posts) {
      stamps.push_back(p.creation_date);
    }
    for (const core::Comment& c : activity.comments) {
      stamps.push_back(c.creation_date);
    }
    for (const core::Like& l : activity.likes) {
      stamps.push_back(l.creation_date);
    }
    SNB_CHECK(!stamps.empty());
    size_t cut = static_cast<size_t>(
        (1.0 - config.update_fraction) * static_cast<double>(stamps.size()));
    if (cut >= stamps.size()) cut = stamps.size() - 1;
    std::nth_element(stamps.begin(), stamps.begin() + cut, stamps.end());
    split = stamps[cut];
    if (config.update_fraction < 1e-6) split = config.SimulationEnd() + 1;
  }
  GeneratedData out;
  out.split_time = split;
  core::SocialNetwork& net = out.network;

  net.places = dicts.places();
  net.organisations = dicts.organisations();
  net.tag_classes = dicts.tag_classes();
  net.tags = dicts.tags();

  out.total_persons = drafts.size();
  out.total_forums = activity.forums.size();
  out.total_posts = activity.posts.size();
  out.total_comments = activity.comments.size();
  out.total_memberships = activity.memberships.size();
  out.total_likes = activity.likes.size();

  std::vector<core::DateTime> person_created(drafts.size());
  for (size_t i = 0; i < drafts.size(); ++i) {
    person_created[i] = drafts[i].record.creation_date;
  }

  auto person_dep = [&](core::Id p) {
    return person_created[static_cast<size_t>(p)];
  };

  for (PersonDraft& d : drafts) {
    if (d.record.creation_date < split) {
      net.persons.push_back(std::move(d.record));
    } else {
      out.updates.push_back({UpdateKind::kAddPerson, d.record.creation_date,
                             0, std::move(d.record)});
    }
  }

  // Knows edges: emit each undirected edge once (i < j), split by edge date.
  {
    // drafts[i].record has been moved, but friends/friend_dates survive.
    for (size_t i = 0; i < drafts.size(); ++i) {
      const PersonDraft& d = drafts[i];
      for (size_t k = 0; k < d.friends.size(); ++k) {
        uint32_t j = d.friends[k];
        if (j <= i) continue;
        core::Knows edge{static_cast<core::Id>(i),
                         static_cast<core::Id>(j), d.friend_dates[k]};
        ++out.total_knows;
        if (edge.creation_date < split) {
          net.knows.push_back(edge);
        } else {
          core::DateTime dep = std::max(person_dep(edge.person1),
                                        person_dep(edge.person2));
          out.updates.push_back(
              {UpdateKind::kAddKnows, edge.creation_date, dep, edge});
        }
      }
    }
  }

  std::vector<core::DateTime> forum_created(activity.forums.size());
  for (size_t i = 0; i < activity.forums.size(); ++i) {
    forum_created[i] = activity.forums[i].creation_date;
  }
  std::vector<core::DateTime> post_created(activity.posts.size());
  for (size_t i = 0; i < activity.posts.size(); ++i) {
    post_created[i] = activity.posts[i].creation_date;
  }
  std::vector<core::DateTime> comment_created(activity.comments.size());
  for (size_t i = 0; i < activity.comments.size(); ++i) {
    comment_created[i] = activity.comments[i].creation_date;
  }

  for (core::Forum& f : activity.forums) {
    core::DateTime dep = person_dep(f.moderator);
    if (f.creation_date < split) {
      net.forums.push_back(std::move(f));
    } else {
      out.updates.push_back(
          {UpdateKind::kAddForum, f.creation_date, dep, std::move(f)});
    }
  }
  for (core::ForumMembership& m : activity.memberships) {
    if (m.join_date < split) {
      net.memberships.push_back(m);
    } else {
      core::DateTime dep = std::max(
          person_dep(m.person), forum_created[static_cast<size_t>(m.forum)]);
      out.updates.push_back({UpdateKind::kAddMembership, m.join_date, dep, m});
    }
  }
  for (core::Post& p : activity.posts) {
    if (p.creation_date < split) {
      net.posts.push_back(std::move(p));
    } else {
      core::DateTime dep = std::max(
          person_dep(p.creator), forum_created[static_cast<size_t>(p.forum)]);
      out.updates.push_back(
          {UpdateKind::kAddPost, p.creation_date, dep, std::move(p)});
    }
  }
  for (core::Comment& c : activity.comments) {
    if (c.creation_date < split) {
      net.comments.push_back(std::move(c));
    } else {
      core::DateTime parent =
          c.reply_of_post != core::kNoId
              ? post_created[static_cast<size_t>(c.reply_of_post)]
              : comment_created[static_cast<size_t>(c.reply_of_comment)];
      core::DateTime dep = std::max(person_dep(c.creator), parent);
      out.updates.push_back(
          {UpdateKind::kAddComment, c.creation_date, dep, std::move(c)});
    }
  }
  for (core::Like& l : activity.likes) {
    if (l.creation_date < split) {
      net.likes.push_back(l);
    } else {
      core::DateTime msg =
          l.is_post ? post_created[static_cast<size_t>(l.message)]
                    : comment_created[static_cast<size_t>(l.message)];
      core::DateTime dep = std::max(person_dep(l.person), msg);
      out.updates.push_back({l.is_post ? UpdateKind::kAddLikePost
                                       : UpdateKind::kAddLikeComment,
                             l.creation_date, dep, l});
    }
  }

  // Stable: ties on (timestamp, kind) keep generation order, so the
  // write→read round-trip of the update streams is exact.
  std::stable_sort(out.updates.begin(), out.updates.end(),
                   [](const UpdateEvent& a, const UpdateEvent& b) {
                     if (a.timestamp != b.timestamp) {
                       return a.timestamp < b.timestamp;
                     }
                     return static_cast<int>(a.kind) <
                            static_cast<int>(b.kind);
                   });

  return out;
}

}  // namespace snb::datagen

// Datagen run configuration (spec §2.3.3: number of persons, number of
// simulated years, starting year — plus the engineering knobs this
// implementation exposes).

#ifndef SNB_DATAGEN_CONFIG_H_
#define SNB_DATAGEN_CONFIG_H_

#include <cstdint>

#include "core/date_time.h"

namespace snb::datagen {

struct DatagenConfig {
  /// Global seed; the entire network is a pure function of this config.
  uint64_t seed = 42;

  /// Number of persons in the network (the SF-determining parameter,
  /// Table 2.12).
  uint64_t num_persons = 1500;

  /// First simulated year (spec default: 2010).
  int32_t start_year = 2010;

  /// Number of simulated years (spec default: 3).
  int32_t num_years = 3;

  /// Fraction of the simulated timeline withheld from the bulk dataset and
  /// emitted as update streams (spec §2.3.4: 10 %).
  double update_fraction = 0.1;

  /// Multiplier on per-person message volume. 1.0 approximates the paper's
  /// Table 2.12 volumes; tests use smaller values for speed.
  double activity_scale = 1.0;

  /// Sliding-window width of the knows-generation passes (spec §2.3.3.2).
  uint32_t knows_window = 512;

  /// Fraction of posts attached to flashmob events rather than uniform
  /// background activity.
  double flashmob_post_fraction = 0.25;

  core::DateTime SimulationStart() const {
    return core::DateTimeFromCivil(start_year, 1, 1);
  }
  core::DateTime SimulationEnd() const {
    return core::DateTimeFromCivil(start_year + num_years, 1, 1);
  }
  /// Events at or after this instant belong to the update streams.
  core::DateTime UpdateSplit() const {
    core::DateTime start = SimulationStart();
    core::DateTime end = SimulationEnd();
    return start + static_cast<core::DateTime>(
                       (1.0 - update_fraction) *
                       static_cast<double>(end - start));
  }
};

}  // namespace snb::datagen

#endif  // SNB_DATAGEN_CONFIG_H_

// Knows-edge generation (spec §2.3.3.2–§2.3.3.3): the correlated,
// homophily-reproducing core of Datagen, rebuilt from scratch without
// MapReduce.
//
// Three passes, one per correlation dimension:
//   1. study   — where/when the person studied,
//   2. interest — the person's main interest tag,
//   3. random  — uniform noise.
// Each pass sorts persons by a similarity key M (the MapReduce shuffle of the
// reference implementation) and scans with a sliding window of W persons;
// edge endpoints are picked at a geometric-distributed ranked distance, so
// the connection probability decays with similarity distance. How *many*
// edges a person gets is fixed by its Facebook-like target degree, split
// across dimensions ≈ 45 % / 45 % / 10 %.

#ifndef SNB_DATAGEN_KNOWS_GENERATOR_H_
#define SNB_DATAGEN_KNOWS_GENERATOR_H_

#include <vector>

#include "datagen/config.h"
#include "datagen/dictionaries.h"
#include "datagen/person_generator.h"

namespace snb::datagen {

/// Generates all knows edges and records them symmetrically into
/// `drafts[i].friends` / `friend_dates`. Returns the number of edges.
size_t GenerateKnows(const DatagenConfig& config, const Dictionaries& dicts,
                     std::vector<PersonDraft>& drafts);

}  // namespace snb::datagen

#endif  // SNB_DATAGEN_KNOWS_GENERATOR_H_

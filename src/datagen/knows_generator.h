// Knows-edge generation (spec §2.3.3.2–§2.3.3.3): the correlated,
// homophily-reproducing core of Datagen, rebuilt from scratch without
// MapReduce.
//
// Three passes, one per correlation dimension:
//   1. study   — where/when the person studied,
//   2. interest — the person's main interest tag,
//   3. random  — uniform noise.
// Each pass sorts persons by a similarity key M (the MapReduce shuffle of the
// reference implementation) and scans with a sliding window of W persons;
// edge endpoints are picked at a geometric-distributed ranked distance, so
// the connection probability decays with similarity distance. How *many*
// edges a person gets is fixed by its Facebook-like target degree, split
// across dimensions ≈ 45 % / 45 % / 10 %.
//
// The window scan itself only ever looks back `knows_window` rank positions,
// so the pass consumes the key-sorted person sequence through a ring buffer.
// With a `KnowsSpill` configured, the per-pass similarity keys are sorted
// through the spill-backed external merge sorter instead of an in-memory
// std::sort — the bounded-memory path of the streaming datagen. Both paths
// visit persons in the identical total order (key, then index), so the
// generated edge set is bit-identical.

#ifndef SNB_DATAGEN_KNOWS_GENERATOR_H_
#define SNB_DATAGEN_KNOWS_GENERATOR_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "datagen/config.h"
#include "datagen/dictionaries.h"
#include "datagen/person_generator.h"

namespace snb::datagen {

/// Opt-in external-sort spill for the similarity-key shuffles.
struct KnowsSpill {
  std::string spill_dir;
  size_t memory_budget_bytes = 32u << 20;
};

/// Generates all knows edges and records them symmetrically into
/// `drafts[i].friends` / `friend_dates`. Returns the number of edges.
/// With `spill` set, the three key sorts run through ExternalSorter
/// (bounded memory); the result is bit-identical either way.
size_t GenerateKnows(const DatagenConfig& config, const Dictionaries& dicts,
                     std::vector<PersonDraft>& drafts,
                     const KnowsSpill* spill = nullptr);

}  // namespace snb::datagen

#endif  // SNB_DATAGEN_KNOWS_GENERATOR_H_

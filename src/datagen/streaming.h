// Bounded-memory streaming datagen (spec Fig. 2.2 run end-to-end without
// materializing the message set).
//
// The in-memory Generate() keeps every post, comment and like resident until
// serialization — at larger scale factors the message text dominates RAM.
// GenerateStreaming produces byte-identical CsvBasic files and update
// streams while never retaining a message:
//
//   pass 0  resident skeleton: persons, knows edges (window passes fed by an
//           external key sort), forums + memberships. These are the compact
//           entities whose cross-references every message depends on; they
//           stay in RAM by design.
//   pass 1  census: stream the messages once, spilling (creation-date,
//           generation-index) keys and event timestamps to ExternalSorter
//           runs. Merging yields the creation-date-ordered id assignment
//           (exactly AssignIdsByDate's stable sort) and the bulk/update
//           split quantile (exactly Generate's nth_element).
//   pass 2  emission: stream the messages again — per-entity RNG streams
//           make regeneration bit-identical — routing each formatted CSV
//           line into an id-keyed external sorter (post/comment files),
//           a timestamp-keyed sorter (update streams), or a direct writer
//           (person/forum/membership/like files, whose output order equals
//           generation order). Merging the sorters writes the final files.
//
// Resident memory: person drafts + forum phase + two 4-byte remap words per
// message + the sorter buffers (memory_budget_bytes). Message content exists
// only inside one sink callback at a time.

#ifndef SNB_DATAGEN_STREAMING_H_
#define SNB_DATAGEN_STREAMING_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "datagen/config.h"
#include "util/status.h"

namespace snb::datagen {

struct StreamingOptions {
  DatagenConfig datagen;
  /// Output directory: receives <out_dir>/static, <out_dir>/dynamic and the
  /// two updateStream_0_0_*.csv files — the same layout as WriteCsvBasic +
  /// WriteUpdateStreams.
  std::string out_dir;
  /// Spill directory for external-sort runs; orphans from a crashed prior
  /// run are reclaimed on entry.
  std::string spill_dir;
  /// Total budget for in-memory sort runs across all live sorters. Small
  /// budgets force spilling without changing any output byte.
  size_t memory_budget_bytes = 256u << 20;
};

struct StreamingStats {
  size_t persons = 0;
  size_t knows = 0;
  size_t forums = 0;
  size_t memberships = 0;
  size_t posts = 0;
  size_t comments = 0;
  size_t likes = 0;
  size_t update_events = 0;
  size_t spill_runs = 0;          // external-sort runs spilled to disk
  size_t orphans_reclaimed = 0;   // stale spill files removed on entry
  int64_t split_time = 0;         // bulk/update boundary (ms since epoch)
};

/// Runs the streaming datagen. Deterministic in `options.datagen` alone;
/// output is byte-identical to WriteCsvBasic(Generate(cfg).network) plus
/// WriteUpdateStreams(Generate(cfg).updates) for every budget value.
util::Status GenerateStreaming(const StreamingOptions& options,
                               StreamingStats* stats);

}  // namespace snb::datagen

#endif  // SNB_DATAGEN_STREAMING_H_

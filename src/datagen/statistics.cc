#include "datagen/statistics.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "core/date_time.h"
#include "util/check.h"
#include "util/rng.h"

namespace snb::datagen {

DatasetStatistics ComputeStatistics(const core::SocialNetwork& net) {
  DatasetStatistics s;
  s.num_persons = net.persons.size();
  s.num_forums = net.forums.size();
  s.num_posts = net.posts.size();
  s.num_comments = net.comments.size();
  s.num_knows = net.knows.size();
  s.num_likes = net.likes.size();
  s.num_memberships = net.memberships.size();
  s.num_nodes = net.NumNodes();
  s.num_edges = net.NumEdges();

  // Person id → position (ids are dense for generated data, but the
  // statistics must also hold for loaded data with arbitrary ids).
  std::unordered_map<core::Id, size_t> person_pos;
  person_pos.reserve(net.persons.size());
  for (size_t i = 0; i < net.persons.size(); ++i) {
    person_pos[net.persons[i].id] = i;
  }

  std::vector<uint32_t> degree(net.persons.size(), 0);
  for (const core::Knows& k : net.knows) {
    auto it1 = person_pos.find(k.person1);
    auto it2 = person_pos.find(k.person2);
    SNB_CHECK(it1 != person_pos.end() && it2 != person_pos.end());
    ++degree[it1->second];
    ++degree[it2->second];
  }
  uint64_t total_degree = 0;
  for (uint32_t d : degree) {
    total_degree += d;
    s.max_degree = std::max(s.max_degree, d);
    size_t bucket = 0;
    while ((uint32_t{1} << (bucket + 1)) <= std::max<uint32_t>(d, 1)) {
      ++bucket;
    }
    if (s.degree_histogram_log2.size() <= bucket) {
      s.degree_histogram_log2.resize(bucket + 1, 0);
    }
    ++s.degree_histogram_log2[bucket];
  }
  s.avg_degree = net.persons.empty()
                     ? 0.0
                     : static_cast<double>(total_degree) /
                           static_cast<double>(net.persons.size());

  // Homophily measurement over the actual edges vs random person pairs.
  std::unordered_map<core::Id, core::Id> city_country;  // city → country
  for (const core::Place& p : net.places) {
    if (p.type == core::PlaceType::kCity) city_country[p.id] = p.part_of;
  }
  auto country_of = [&](const core::Person& p) {
    auto it = city_country.find(p.city);
    return it == city_country.end() ? core::kNoId : it->second;
  };
  auto university_of = [](const core::Person& p) {
    return p.study_at.empty() ? core::kNoId : p.study_at[0].university;
  };
  auto share_interest = [](const core::Person& a, const core::Person& b) {
    for (core::Id t : a.interests) {
      if (std::find(b.interests.begin(), b.interests.end(), t) !=
          b.interests.end()) {
        return true;
      }
    }
    return false;
  };

  size_t same_country = 0, same_uni = 0, common_interest = 0;
  for (const core::Knows& k : net.knows) {
    const core::Person& a = net.persons[person_pos[k.person1]];
    const core::Person& b = net.persons[person_pos[k.person2]];
    if (country_of(a) == country_of(b)) ++same_country;
    if (university_of(a) != core::kNoId &&
        university_of(a) == university_of(b)) {
      ++same_uni;
    }
    if (share_interest(a, b)) ++common_interest;
  }
  if (!net.knows.empty()) {
    double e = static_cast<double>(net.knows.size());
    s.frac_same_country = static_cast<double>(same_country) / e;
    s.frac_same_university = static_cast<double>(same_uni) / e;
    s.frac_common_interest = static_cast<double>(common_interest) / e;
  }

  // Random-pair baseline, sampled with a fixed seed.
  if (net.persons.size() >= 2) {
    util::Rng rng(0xba5eULL);
    size_t trials = std::min<size_t>(20000, net.persons.size() * 4);
    size_t rc = 0, ru = 0, ri = 0;
    for (size_t t = 0; t < trials; ++t) {
      size_t i = static_cast<size_t>(rng.UniformInt(
          0, static_cast<int64_t>(net.persons.size()) - 1));
      size_t j = static_cast<size_t>(rng.UniformInt(
          0, static_cast<int64_t>(net.persons.size()) - 1));
      if (i == j) continue;
      const core::Person& a = net.persons[i];
      const core::Person& b = net.persons[j];
      if (country_of(a) == country_of(b)) ++rc;
      if (university_of(a) != core::kNoId &&
          university_of(a) == university_of(b)) {
        ++ru;
      }
      if (share_interest(a, b)) ++ri;
    }
    s.random_same_country = static_cast<double>(rc) / trials;
    s.random_same_university = static_cast<double>(ru) / trials;
    s.random_common_interest = static_cast<double>(ri) / trials;
  }

  for (const core::Post& p : net.posts) {
    ++s.posts_per_day[core::DateFromDateTime(p.creation_date)];
  }

  return s;
}

}  // namespace snb::datagen

#include "datagen/knows_generator.h"

#include <algorithm>
#include <cstdint>
#include <unordered_set>

#include "datagen/external_sort.h"
#include "util/check.h"
#include "util/rng.h"

namespace snb::datagen {

namespace {

constexpr uint64_t kStreamKnows = 301;

/// Similarity keys (the M functions of §2.3.3.2). Low bits carry a hash so
/// that equal-cohort persons land in a deterministic but shuffled order.
uint64_t StudyKey(const PersonDraft& d, uint64_t seed) {
  uint64_t noise = util::Mix64(seed ^ static_cast<uint64_t>(d.record.id)) &
                   0xffff;
  if (d.university_org != SIZE_MAX) {
    uint64_t year = d.record.study_at.empty()
                        ? 0
                        : static_cast<uint64_t>(
                              d.record.study_at[0].class_year & 0x3f);
    return ((static_cast<uint64_t>(d.university_org) << 6 | year) << 16) |
           noise;
  }
  // Persons without a university cluster by home city, in a separate key
  // region above all university cohorts.
  return (uint64_t{1} << 62) |
         ((static_cast<uint64_t>(d.record.city) << 16) | noise);
}

uint64_t InterestKey(const PersonDraft& d, uint64_t seed) {
  uint64_t noise = util::Mix64(seed ^ static_cast<uint64_t>(d.record.id) ^
                               0x1234) &
                   0xffffff;
  return (static_cast<uint64_t>(d.main_interest) << 24) | noise;
}

uint64_t RandomKey(const PersonDraft& d, uint64_t seed) {
  return util::Mix64(seed ^ static_cast<uint64_t>(d.record.id) ^ 0xabcd);
}

struct PassState {
  std::vector<uint32_t> budget;  // remaining edges for the current dimension
  std::vector<std::unordered_set<uint32_t>> neighbours;  // global dedup
};

/// One similarity pass, consuming persons in ascending-key order. The pass
/// only ever reaches `window` rank positions back, so it holds a ring buffer
/// of the last window+1 consumed indices — the order sequence itself may be
/// produced by an in-memory sort or streamed out of an external merge.
class WindowPass {
 public:
  WindowPass(const DatagenConfig& config, std::vector<PersonDraft>& drafts,
             uint64_t pass_tag, PassState& state, size_t& edges_created)
      : config_(config),
        drafts_(drafts),
        pass_tag_(pass_tag),
        state_(state),
        edges_created_(edges_created),
        sim_end_(config.SimulationEnd()) {
    const size_t n = drafts.size();
    window_ = std::min<uint32_t>(
        config.knows_window, static_cast<uint32_t>(n > 1 ? n - 1 : 1));
    // Geometric distance distribution with mean ≈ window / 8: most picks are
    // very close in similarity rank, few reach across the window.
    geo_p_ = std::min(
        0.5, 8.0 / static_cast<double>(std::max<uint32_t>(window_, 2)));
    ring_.resize(window_ + 1);
  }

  /// Feeds the next person in key order (rank `pos`, starting at 0).
  void Consume(uint32_t i) {
    const size_t pos = pos_++;
    ring_[pos % ring_.size()] = i;
    if (pos == 0) return;
    if (state_.budget[i] == 0) return;
    util::Rng rng(config_.seed, kStreamKnows, pass_tag_, i);
    // Bounded attempts: budget may be unfillable when neighbours in the
    // window are saturated.
    uint32_t attempts = 8 * state_.budget[i] + 16;
    while (state_.budget[i] > 0 && attempts-- > 0) {
      uint64_t dist = 1 + static_cast<uint64_t>(rng.Geometric(geo_p_));
      if (dist > pos || dist > window_) continue;
      const uint32_t j = ring_[(pos - dist) % ring_.size()];
      if (state_.budget[j] == 0) continue;
      if (state_.neighbours[i].contains(j)) continue;

      // Edge creation date: after both persons joined, skewed toward soon
      // after the younger account was created.
      core::DateTime lower = std::max(drafts_[i].record.creation_date,
                                      drafts_[j].record.creation_date);
      double u = rng.NextDouble();
      core::DateTime when =
          lower + static_cast<core::DateTime>(
                      u * u * static_cast<double>(sim_end_ - 1 - lower));

      state_.neighbours[i].insert(j);
      state_.neighbours[j].insert(i);
      drafts_[i].friends.push_back(j);
      drafts_[i].friend_dates.push_back(when);
      drafts_[j].friends.push_back(i);
      drafts_[j].friend_dates.push_back(when);
      --state_.budget[i];
      --state_.budget[j];
      ++edges_created_;
    }
  }

 private:
  const DatagenConfig& config_;
  std::vector<PersonDraft>& drafts_;
  const uint64_t pass_tag_;
  PassState& state_;
  size_t& edges_created_;
  const core::DateTime sim_end_;
  uint32_t window_ = 1;
  double geo_p_ = 0.5;
  std::vector<uint32_t> ring_;  // last window+1 consumed person indices
  size_t pos_ = 0;
};

void RunPass(const DatagenConfig& config, std::vector<PersonDraft>& drafts,
             const std::vector<uint64_t>& keys, uint64_t pass_tag,
             PassState& state, size_t& edges_created,
             const KnowsSpill* spill) {
  const size_t n = drafts.size();
  WindowPass pass(config, drafts, pass_tag, state, edges_created);
  if (spill == nullptr) {
    std::vector<uint32_t> order(n);
    for (size_t i = 0; i < n; ++i) order[i] = static_cast<uint32_t>(i);
    std::sort(order.begin(), order.end(), [&keys](uint32_t a, uint32_t b) {
      return keys[a] != keys[b] ? keys[a] < keys[b] : a < b;
    });
    for (uint32_t i : order) pass.Consume(i);
    return;
  }
  // External shuffle: the same (key, index) total order streamed out of the
  // spill-backed merge. SNB_CHECK_OK: spill I/O failure mid-datagen has no
  // partial-output recovery story, and callers opted into spilling.
  ExternalSorter sorter({spill->spill_dir,
                         "knows-pass" + std::to_string(pass_tag),
                         spill->memory_budget_bytes});
  for (size_t i = 0; i < n; ++i) {
    SNB_CHECK_OK(sorter.Add(keys[i], i));
  }
  SNB_CHECK_OK(sorter.Merge([&pass](uint64_t, uint64_t idx, std::string_view) {
    pass.Consume(static_cast<uint32_t>(idx));
  }));
}

}  // namespace

size_t GenerateKnows(const DatagenConfig& config, const Dictionaries& dicts,
                     std::vector<PersonDraft>& drafts,
                     const KnowsSpill* spill) {
  (void)dicts;
  const size_t n = drafts.size();
  PassState state;
  state.neighbours.resize(n);

  // Dimension budget split: 45 % study, 45 % interest, and the remainder —
  // including whatever the correlated passes could not place because their
  // windows saturated — mopped up by the random pass.
  std::vector<uint32_t> budget_study(n), budget_interest(n);
  for (size_t i = 0; i < n; ++i) {
    uint32_t total = drafts[i].target_degree;
    budget_study[i] = static_cast<uint32_t>(0.45 * total);
    budget_interest[i] = static_cast<uint32_t>(0.45 * total);
  }

  size_t edges = 0;

  std::vector<uint64_t> keys(n);
  uint64_t key_seed = util::MixSeed(config.seed, kStreamKnows, uint64_t{1});
  for (size_t i = 0; i < n; ++i) keys[i] = StudyKey(drafts[i], key_seed);
  state.budget = std::move(budget_study);
  RunPass(config, drafts, keys, 1, state, edges, spill);

  key_seed = util::MixSeed(config.seed, kStreamKnows, uint64_t{2});
  for (size_t i = 0; i < n; ++i) keys[i] = InterestKey(drafts[i], key_seed);
  state.budget = std::move(budget_interest);
  RunPass(config, drafts, keys, 2, state, edges, spill);

  key_seed = util::MixSeed(config.seed, kStreamKnows, uint64_t{3});
  for (size_t i = 0; i < n; ++i) keys[i] = RandomKey(drafts[i], key_seed);
  std::vector<uint32_t> budget_random(n);
  for (size_t i = 0; i < n; ++i) {
    uint32_t made = static_cast<uint32_t>(drafts[i].friends.size());
    budget_random[i] =
        drafts[i].target_degree > made ? drafts[i].target_degree - made : 0;
  }
  state.budget = std::move(budget_random);
  RunPass(config, drafts, keys, 3, state, edges, spill);

  return edges;
}

}  // namespace snb::datagen

#include "datagen/knows_generator.h"

#include <algorithm>
#include <cstdint>
#include <unordered_set>

#include "util/check.h"
#include "util/rng.h"

namespace snb::datagen {

namespace {

constexpr uint64_t kStreamKnows = 301;

/// Similarity keys (the M functions of §2.3.3.2). Low bits carry a hash so
/// that equal-cohort persons land in a deterministic but shuffled order.
uint64_t StudyKey(const PersonDraft& d, uint64_t seed) {
  uint64_t noise = util::Mix64(seed ^ static_cast<uint64_t>(d.record.id)) &
                   0xffff;
  if (d.university_org != SIZE_MAX) {
    uint64_t year = d.record.study_at.empty()
                        ? 0
                        : static_cast<uint64_t>(
                              d.record.study_at[0].class_year & 0x3f);
    return ((static_cast<uint64_t>(d.university_org) << 6 | year) << 16) |
           noise;
  }
  // Persons without a university cluster by home city, in a separate key
  // region above all university cohorts.
  return (uint64_t{1} << 62) |
         ((static_cast<uint64_t>(d.record.city) << 16) | noise);
}

uint64_t InterestKey(const PersonDraft& d, uint64_t seed) {
  uint64_t noise = util::Mix64(seed ^ static_cast<uint64_t>(d.record.id) ^
                               0x1234) &
                   0xffffff;
  return (static_cast<uint64_t>(d.main_interest) << 24) | noise;
}

uint64_t RandomKey(const PersonDraft& d, uint64_t seed) {
  return util::Mix64(seed ^ static_cast<uint64_t>(d.record.id) ^ 0xabcd);
}

struct PassState {
  std::vector<uint32_t> budget;  // remaining edges for the current dimension
  std::vector<std::unordered_set<uint32_t>> neighbours;  // global dedup
};

void RunPass(const DatagenConfig& config, std::vector<PersonDraft>& drafts,
             const std::vector<uint64_t>& keys, uint64_t pass_tag,
             PassState& state, size_t& edges_created) {
  const size_t n = drafts.size();
  std::vector<uint32_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = static_cast<uint32_t>(i);
  std::sort(order.begin(), order.end(), [&keys](uint32_t a, uint32_t b) {
    return keys[a] != keys[b] ? keys[a] < keys[b] : a < b;
  });

  const uint32_t window = std::min<uint32_t>(
      config.knows_window, static_cast<uint32_t>(n > 1 ? n - 1 : 1));
  // Geometric distance distribution with mean ≈ window / 8: most picks are
  // very close in similarity rank, few reach across the window.
  const double geo_p =
      std::min(0.5, 8.0 / static_cast<double>(std::max<uint32_t>(window, 2)));
  const core::DateTime sim_end = config.SimulationEnd();

  for (size_t pos = 1; pos < n; ++pos) {
    const uint32_t i = order[pos];
    if (state.budget[i] == 0) continue;
    util::Rng rng(config.seed, kStreamKnows, pass_tag, i);
    // Bounded attempts: budget may be unfillable when neighbours in the
    // window are saturated.
    uint32_t attempts = 8 * state.budget[i] + 16;
    while (state.budget[i] > 0 && attempts-- > 0) {
      uint64_t dist = 1 + static_cast<uint64_t>(rng.Geometric(geo_p));
      if (dist > pos || dist > window) continue;
      const uint32_t j = order[pos - dist];
      if (state.budget[j] == 0) continue;
      if (state.neighbours[i].contains(j)) continue;

      // Edge creation date: after both persons joined, skewed toward soon
      // after the younger account was created.
      core::DateTime lower = std::max(drafts[i].record.creation_date,
                                      drafts[j].record.creation_date);
      double u = rng.NextDouble();
      core::DateTime when =
          lower + static_cast<core::DateTime>(
                      u * u * static_cast<double>(sim_end - 1 - lower));

      state.neighbours[i].insert(j);
      state.neighbours[j].insert(static_cast<uint32_t>(i));
      drafts[i].friends.push_back(j);
      drafts[i].friend_dates.push_back(when);
      drafts[j].friends.push_back(static_cast<uint32_t>(i));
      drafts[j].friend_dates.push_back(when);
      --state.budget[i];
      --state.budget[j];
      ++edges_created;
    }
  }
}

}  // namespace

size_t GenerateKnows(const DatagenConfig& config, const Dictionaries& dicts,
                     std::vector<PersonDraft>& drafts) {
  (void)dicts;
  const size_t n = drafts.size();
  PassState state;
  state.neighbours.resize(n);

  // Dimension budget split: 45 % study, 45 % interest, and the remainder —
  // including whatever the correlated passes could not place because their
  // windows saturated — mopped up by the random pass.
  std::vector<uint32_t> budget_study(n), budget_interest(n);
  for (size_t i = 0; i < n; ++i) {
    uint32_t total = drafts[i].target_degree;
    budget_study[i] = static_cast<uint32_t>(0.45 * total);
    budget_interest[i] = static_cast<uint32_t>(0.45 * total);
  }

  size_t edges = 0;

  std::vector<uint64_t> keys(n);
  uint64_t key_seed = util::MixSeed(config.seed, kStreamKnows, uint64_t{1});
  for (size_t i = 0; i < n; ++i) keys[i] = StudyKey(drafts[i], key_seed);
  state.budget = std::move(budget_study);
  RunPass(config, drafts, keys, 1, state, edges);

  key_seed = util::MixSeed(config.seed, kStreamKnows, uint64_t{2});
  for (size_t i = 0; i < n; ++i) keys[i] = InterestKey(drafts[i], key_seed);
  state.budget = std::move(budget_interest);
  RunPass(config, drafts, keys, 2, state, edges);

  key_seed = util::MixSeed(config.seed, kStreamKnows, uint64_t{3});
  for (size_t i = 0; i < n; ++i) keys[i] = RandomKey(drafts[i], key_seed);
  std::vector<uint32_t> budget_random(n);
  for (size_t i = 0; i < n; ++i) {
    uint32_t made = static_cast<uint32_t>(drafts[i].friends.size());
    budget_random[i] =
        drafts[i].target_degree > made ? drafts[i].target_degree - made : 0;
  }
  state.budget = std::move(budget_random);
  RunPass(config, drafts, keys, 3, state, edges);

  return edges;
}

}  // namespace snb::datagen

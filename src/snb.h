// Umbrella header: the full public API of the snb library.
//
//   #include "snb.h"
//
//   snb::datagen::DatagenConfig config;          // generate…
//   auto data = snb::datagen::Generate(config);
//   snb::storage::Graph graph(std::move(data.network));   // …load…
//   auto rows = snb::bi::RunBi1(graph, {date});            // …query.
//
// Individual module headers can be included directly for faster builds.

#ifndef SNB_SNB_H_
#define SNB_SNB_H_

#include "bi/bi.h"                       // BI reads 1–25 (optimized engine)
#include "bi/cancel.h"                   // cooperative query cancellation
#include "bi/naive.h"                    // BI naive baseline engine
#include "bi/parallel.h"                 // parallel BI variants (CP-1.2)
#include "core/choke_points.h"           // Table A.1 registry
#include "core/date_time.h"              // Date/DateTime arithmetic
#include "core/scale_factors.h"          // Tables 2.12 / 3.1 / B.1
#include "core/schema.h"                 // entity records (Fig. 2.1)
#include "datagen/datagen.h"             // the correlated generator
#include "datagen/serializer.h"          // CsvBasic/…/Turtle serializers
#include "datagen/statistics.h"          // dataset statistics
#include "datagen/update_stream.h"       // update-stream write/read
#include "driver/driver.h"               // workload driver (§3.4, §6.2)
#include "driver/validation.h"           // engine cross-validation
#include "interactive/interactive.h"     // IC 1–14, IS 1–7
#include "interactive/naive.h"           // Interactive naive baseline
#include "interactive/updates.h"         // IU 1–8 application
#include "params/parameter_curation.h"   // substitution parameters (§3.3)
#include "sched/histogram.h"             // bounded latency histograms
#include "sched/scheduler.h"             // concurrent query streams (§6)
#include "sched/score.h"                 // Power@SF / Throughput@SF
#include "sched/stream.h"                // permuted BI op streams
#include "storage/consistency.h"         // audit checks (§6.1.3)
#include "storage/export.h"              // checkpointing (§6.3)
#include "storage/graph.h"               // the graph store
#include "storage/loader.h"              // CsvBasic bulk loader

#endif  // SNB_SNB_H_

// Tests for the parallel execution paths: every morsel-parallel query
// variant (CP-1.2) must be bit-identical to the sequential engine AND the
// naive engine at every pool size; the creation-date index must visit
// exactly the messages a filtered full scan visits, including messages
// appended to the unsorted tail by updates; cancellation must surface from
// inside a morsel loop without wedging the pool.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "bi/bi.h"
#include "bi/cancel.h"
#include "bi/naive.h"
#include "bi/parallel.h"
#include "datagen/datagen.h"
#include "driver/driver.h"
#include "engine/morsel.h"
#include "params/parameter_curation.h"
#include "storage/graph.h"
#include "storage/message_index.h"
#include "util/thread_pool.h"

namespace snb {
namespace {

class ParallelFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    // Drop the minimum-work fan-out floor: the fixture is deliberately tiny,
    // and these tests (run under TSan in check.sh) must still drive the
    // morsel machinery rather than collapse to the inline path.
    engine::internal::GlobalMorselTuning().min_morsels_for_fanout = 1;
    datagen::DatagenConfig cfg;
    cfg.num_persons = 350;
    cfg.activity_scale = 0.5;
    datagen::GeneratedData data = datagen::Generate(cfg);
    graph_ = new storage::Graph(std::move(data.network));
    params::CurationConfig pc;
    pc.per_query = 4;
    params_ = new params::WorkloadParameters(
        params::CurateParameters(*graph_, pc));
    pool_ = new util::ThreadPool(4);
  }
  static void TearDownTestSuite() {
    delete pool_;
    delete params_;
    delete graph_;
    engine::internal::GlobalMorselTuning() = engine::internal::MorselTuning{};
  }
  static const storage::Graph& graph() { return *graph_; }
  static const params::WorkloadParameters& params() { return *params_; }
  static util::ThreadPool& pool() { return *pool_; }

  /// Cross-validates one query template: for every curated binding the
  /// naive engine and the morsel-parallel variant at 1/2/4/8 threads must
  /// all return exactly the sequential engine's rows.
  template <typename Bindings, typename SeqFn, typename NaiveFn,
            typename ParFn>
  static void CheckQuery(const char* name, const Bindings& bindings,
                         SeqFn seq, NaiveFn naive, ParFn par) {
    util::ThreadPool pools[] = {util::ThreadPool(1), util::ThreadPool(2),
                                util::ThreadPool(4), util::ThreadPool(8)};
    ASSERT_FALSE(bindings.empty()) << name;
    for (const auto& p : bindings) {
      const auto expected = seq(graph(), p);
      EXPECT_EQ(naive(graph(), p), expected) << name << " (naive)";
      for (util::ThreadPool& tp : pools) {
        EXPECT_EQ(par(graph(), p, tp), expected)
            << name << " threads=" << tp.num_threads();
      }
    }
  }

 private:
  static storage::Graph* graph_;
  static params::WorkloadParameters* params_;
  static util::ThreadPool* pool_;
};

storage::Graph* ParallelFixture::graph_ = nullptr;
params::WorkloadParameters* ParallelFixture::params_ = nullptr;
util::ThreadPool* ParallelFixture::pool_ = nullptr;

TEST_F(ParallelFixture, Bi1MatchesSequentialAndNaive) {
  CheckQuery("BI 1", params().bi1, bi::RunBi1, bi::naive::RunBi1,
             bi::parallel::RunBi1);
  // Degenerate date (nothing qualifies) must also agree.
  bi::Bi1Params empty{core::DateFromCivil(2009, 1, 1)};
  EXPECT_EQ(bi::parallel::RunBi1(graph(), empty, pool()),
            bi::RunBi1(graph(), empty));
}

TEST_F(ParallelFixture, Bi2MatchesSequentialAndNaive) {
  CheckQuery("BI 2", params().bi2, bi::RunBi2, bi::naive::RunBi2,
             bi::parallel::RunBi2);
}

TEST_F(ParallelFixture, Bi3MatchesSequentialAndNaive) {
  CheckQuery("BI 3", params().bi3, bi::RunBi3, bi::naive::RunBi3,
             bi::parallel::RunBi3);
}

TEST_F(ParallelFixture, Bi6MatchesSequentialAndNaive) {
  CheckQuery("BI 6", params().bi6, bi::RunBi6, bi::naive::RunBi6,
             bi::parallel::RunBi6);
}

TEST_F(ParallelFixture, Bi12MatchesSequentialAndNaive) {
  CheckQuery("BI 12", params().bi12, bi::RunBi12, bi::naive::RunBi12,
             bi::parallel::RunBi12);
}

TEST_F(ParallelFixture, Bi13MatchesSequentialAndNaive) {
  CheckQuery("BI 13", params().bi13, bi::RunBi13, bi::naive::RunBi13,
             bi::parallel::RunBi13);
}

TEST_F(ParallelFixture, Bi14MatchesSequentialAndNaive) {
  CheckQuery("BI 14", params().bi14, bi::RunBi14, bi::naive::RunBi14,
             bi::parallel::RunBi14);
}

TEST_F(ParallelFixture, Bi17MatchesSequentialAndNaive) {
  CheckQuery("BI 17", params().bi17, bi::RunBi17, bi::naive::RunBi17,
             bi::parallel::RunBi17);
}

TEST_F(ParallelFixture, Bi20MatchesSequentialAndNaive) {
  CheckQuery("BI 20", params().bi20, bi::RunBi20, bi::naive::RunBi20,
             bi::parallel::RunBi20);
  bi::Bi20Params with_unknown{{"Thing", "NoSuchClass", "Person"}};
  EXPECT_EQ(bi::parallel::RunBi20(graph(), with_unknown, pool()),
            bi::RunBi20(graph(), with_unknown));
}

TEST_F(ParallelFixture, Bi23MatchesSequentialAndNaive) {
  CheckQuery("BI 23", params().bi23, bi::RunBi23, bi::naive::RunBi23,
             bi::parallel::RunBi23);
}

TEST_F(ParallelFixture, Bi24MatchesSequentialAndNaive) {
  CheckQuery("BI 24", params().bi24, bi::RunBi24, bi::naive::RunBi24,
             bi::parallel::RunBi24);
}

TEST_F(ParallelFixture, ParallelBi1DeterministicAcrossPoolSizes) {
  util::ThreadPool one(1), many(8);
  const bi::Bi1Params& p = params().bi1[0];
  EXPECT_EQ(bi::parallel::RunBi1(graph(), p, one),
            bi::parallel::RunBi1(graph(), p, many));
}

TEST_F(ParallelFixture, CancelledTokenAbortsParallelQueryAndPoolSurvives) {
  bi::CancelToken token;
  token.RequestStop();
  {
    bi::ScopedCancelToken scoped(&token);
    EXPECT_THROW(bi::parallel::RunBi1(graph(), params().bi1[0], pool()),
                 bi::QueryCancelled);
    EXPECT_THROW(bi::parallel::RunBi20(graph(), params().bi20[0], pool()),
                 bi::QueryCancelled);
  }
  // The abandoned morsels must not leave the pool wedged or poisoned.
  EXPECT_EQ(bi::parallel::RunBi1(graph(), params().bi1[0], pool()),
            bi::RunBi1(graph(), params().bi1[0]));
}

TEST_F(ParallelFixture, ParallelBiStreamRunsEveryOperation) {
  driver::DriverReport sequential =
      driver::RunBiWorkload(graph(), params(), 2);
  driver::DriverReport parallel =
      driver::RunBiWorkloadParallel(graph(), params(), 2, pool());
  EXPECT_EQ(parallel.total_operations, sequential.total_operations);
  ASSERT_EQ(parallel.per_operation.size(), sequential.per_operation.size());
  for (const auto& [op, stats] : sequential.per_operation) {
    ASSERT_TRUE(parallel.per_operation.contains(op)) << op;
    EXPECT_EQ(parallel.per_operation.at(op).count, stats.count) << op;
  }
  EXPECT_EQ(parallel.results_log.size(), parallel.total_operations);
}

// ---- Creation-date index / zone-map pruning ------------------------------

class MessageIndexFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    datagen::DatagenConfig cfg;
    cfg.num_persons = 200;
    cfg.activity_scale = 0.5;
    datagen::GeneratedData data = datagen::Generate(cfg);
    graph_ = std::make_unique<storage::Graph>(std::move(data.network));
  }

  storage::Graph& graph() { return *graph_; }

  /// Reference: full scan + per-message filter, sorted for set comparison.
  std::vector<uint32_t> FilteredFullScan(core::DateTime start,
                                         core::DateTime end) {
    std::vector<uint32_t> out;
    graph().ForEachMessage([&](uint32_t msg) {
      core::DateTime d = graph().MessageCreationDate(msg);
      if (d >= start && d < end) out.push_back(msg);
    });
    std::sort(out.begin(), out.end());
    return out;
  }

  std::vector<uint32_t> RangeScan(core::DateTime start, core::DateTime end) {
    std::vector<uint32_t> out;
    graph().ForEachMessageInRange(start, end,
                                  [&](uint32_t msg) { out.push_back(msg); });
    std::sort(out.begin(), out.end());
    return out;
  }

  std::unique_ptr<storage::Graph> graph_;
};

TEST_F(MessageIndexFixture, RangeScanVisitsExactlyTheWindowMessages) {
  const core::DateTime windows[][2] = {
      {core::DateTimeFromCivil(2010, 6, 1), core::DateTimeFromCivil(2010, 7, 1)},
      {core::DateTimeFromCivil(2011, 1, 1), core::DateTimeFromCivil(2011, 4, 1)},
      {storage::kMinMessageDate, core::DateTimeFromCivil(2011, 1, 1)},
      {core::DateTimeFromCivil(2012, 1, 1), storage::kMaxMessageDate},
      {storage::kMinMessageDate, storage::kMaxMessageDate},
      // Empty window.
      {core::DateTimeFromCivil(1990, 1, 1), core::DateTimeFromCivil(1991, 1, 1)},
  };
  for (const auto& w : windows) {
    EXPECT_EQ(RangeScan(w[0], w[1]), FilteredFullScan(w[0], w[1]));
  }
}

TEST_F(MessageIndexFixture, MessageRangeViewMatchesForEach) {
  const core::DateTime start = core::DateTimeFromCivil(2010, 6, 1);
  const core::DateTime end = core::DateTimeFromCivil(2010, 9, 1);
  storage::Graph::MessageRangeView view = graph().MessageRange(start, end);
  std::vector<uint32_t> from_view;
  for (size_t i = 0; i < view.size(); ++i) from_view.push_back(view[i]);
  std::sort(from_view.begin(), from_view.end());
  EXPECT_EQ(from_view, RangeScan(start, end));
}

TEST_F(MessageIndexFixture, OneMonthWindowExaminesStrictlyFewerCandidates) {
  // The sorted base turns a one-month window into a contiguous slice, so a
  // range scan must examine strictly fewer index entries than the full
  // message count (the bench report records the same ratio at scale).
  const size_t total = graph().NumMessages();
  ASSERT_GT(total, 0u);
  const size_t candidates = graph().MessageIndex().CandidatesInRange(
      core::DateTimeFromCivil(2010, 6, 1), core::DateTimeFromCivil(2010, 7, 1));
  EXPECT_LT(candidates, total);
  // Candidates can never undercount the actual matches.
  EXPECT_GE(candidates, RangeScan(core::DateTimeFromCivil(2010, 6, 1),
                                  core::DateTimeFromCivil(2010, 7, 1))
                            .size());
}

TEST_F(MessageIndexFixture, AppendedMessagesLandInTheTailAndAreVisible) {
  const size_t base = graph().MessageIndex().base_size();
  // Append clones of existing records with fresh ids; creation dates far
  // outside the generated range make them easy to address with a window.
  const core::DateTime tail_date = core::DateTimeFromCivil(2030, 6, 15);
  core::Post post = graph().PostAt(0);
  post.id = 1u << 30;
  post.creation_date = tail_date;
  graph().AddPost(post);
  core::Comment comment = graph().CommentAt(0);
  comment.id = 1u << 30;
  comment.creation_date = tail_date + core::kMillisPerDay;
  graph().AddComment(comment);

  // Appends grow the tail, never the sorted base (readers of the base stay
  // valid under the single-writer contract).
  EXPECT_EQ(graph().MessageIndex().base_size(), base);
  EXPECT_EQ(graph().MessageIndex().tail_size(), 2u);

  // Tail messages are visible to range scans, views and candidate counts.
  const core::DateTime w0 = core::DateTimeFromCivil(2030, 1, 1);
  const core::DateTime w1 = core::DateTimeFromCivil(2031, 1, 1);
  EXPECT_EQ(RangeScan(w0, w1).size(), 2u);
  EXPECT_EQ(RangeScan(w0, w1), FilteredFullScan(w0, w1));
  EXPECT_EQ(graph().MessageRange(w0, w1).size(), 2u);
  EXPECT_GE(graph().MessageIndex().CandidatesInRange(w0, w1), 2u);
  // A window before the appends never touches the tail block.
  EXPECT_EQ(RangeScan(core::DateTimeFromCivil(2010, 6, 1),
                      core::DateTimeFromCivil(2010, 7, 1)),
            FilteredFullScan(core::DateTimeFromCivil(2010, 6, 1),
                             core::DateTimeFromCivil(2010, 7, 1)));

  // The engines agree on the mutated graph too — BI 1 with a far-future
  // cutoff aggregates over both the base and the tail.
  bi::Bi1Params p{core::DateFromCivil(2032, 1, 1)};
  util::ThreadPool tp(4);
  const auto expected = bi::RunBi1(graph(), p);
  EXPECT_EQ(bi::naive::RunBi1(graph(), p), expected);
  EXPECT_EQ(bi::parallel::RunBi1(graph(), p, tp), expected);
}

}  // namespace
}  // namespace snb

// Tests for the parallel execution paths: intra-query parallel group-by
// (CP-1.2) must match the sequential engine exactly; the parallel BI stream
// must run every operation the sequential stream runs.

#include <gtest/gtest.h>

#include "bi/bi.h"
#include "bi/parallel.h"
#include "datagen/datagen.h"
#include "driver/driver.h"
#include "params/parameter_curation.h"
#include "storage/graph.h"
#include "util/thread_pool.h"

namespace snb {
namespace {

class ParallelFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    datagen::DatagenConfig cfg;
    cfg.num_persons = 350;
    cfg.activity_scale = 0.5;
    datagen::GeneratedData data = datagen::Generate(cfg);
    graph_ = new storage::Graph(std::move(data.network));
    params::CurationConfig pc;
    pc.per_query = 4;
    params_ = new params::WorkloadParameters(
        params::CurateParameters(*graph_, pc));
    pool_ = new util::ThreadPool(4);
  }
  static void TearDownTestSuite() {
    delete pool_;
    delete params_;
    delete graph_;
  }
  static const storage::Graph& graph() { return *graph_; }
  static const params::WorkloadParameters& params() { return *params_; }
  static util::ThreadPool& pool() { return *pool_; }

 private:
  static storage::Graph* graph_;
  static params::WorkloadParameters* params_;
  static util::ThreadPool* pool_;
};

storage::Graph* ParallelFixture::graph_ = nullptr;
params::WorkloadParameters* ParallelFixture::params_ = nullptr;
util::ThreadPool* ParallelFixture::pool_ = nullptr;

TEST_F(ParallelFixture, ParallelBi1MatchesSequential) {
  for (const bi::Bi1Params& p : params().bi1) {
    EXPECT_EQ(bi::parallel::RunBi1(graph(), p, pool()),
              bi::RunBi1(graph(), p));
  }
  // Degenerate date (nothing qualifies) must also agree.
  bi::Bi1Params empty{core::DateFromCivil(2009, 1, 1)};
  EXPECT_EQ(bi::parallel::RunBi1(graph(), empty, pool()),
            bi::RunBi1(graph(), empty));
}

TEST_F(ParallelFixture, ParallelBi1DeterministicAcrossPoolSizes) {
  util::ThreadPool one(1), many(8);
  const bi::Bi1Params& p = params().bi1[0];
  EXPECT_EQ(bi::parallel::RunBi1(graph(), p, one),
            bi::parallel::RunBi1(graph(), p, many));
}

TEST_F(ParallelFixture, ParallelBi20MatchesSequential) {
  for (const bi::Bi20Params& p : params().bi20) {
    EXPECT_EQ(bi::parallel::RunBi20(graph(), p, pool()),
              bi::RunBi20(graph(), p));
  }
  bi::Bi20Params with_unknown{{"Thing", "NoSuchClass", "Person"}};
  EXPECT_EQ(bi::parallel::RunBi20(graph(), with_unknown, pool()),
            bi::RunBi20(graph(), with_unknown));
}

TEST_F(ParallelFixture, ParallelBiStreamRunsEveryOperation) {
  driver::DriverReport sequential =
      driver::RunBiWorkload(graph(), params(), 2);
  driver::DriverReport parallel =
      driver::RunBiWorkloadParallel(graph(), params(), 2, pool());
  EXPECT_EQ(parallel.total_operations, sequential.total_operations);
  ASSERT_EQ(parallel.per_operation.size(), sequential.per_operation.size());
  for (const auto& [op, stats] : sequential.per_operation) {
    ASSERT_TRUE(parallel.per_operation.contains(op)) << op;
    EXPECT_EQ(parallel.per_operation.at(op).count, stats.count) << op;
  }
  EXPECT_EQ(parallel.results_log.size(), parallel.total_operations);
}

}  // namespace
}  // namespace snb

// Scheduler tests: concurrent streams over a shared read-only graph produce
// results bit-identical to the sequential engine, cooperative cancellation
// fires on tight deadlines, histogram percentiles stay within bucket
// resolution, and the Power/Throughput score formulas hold.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <vector>

#include "datagen/datagen.h"
#include "driver/driver.h"
#include "params/parameter_curation.h"
#include "sched/histogram.h"
#include "sched/scheduler.h"
#include "sched/score.h"
#include "sched/stream.h"
#include "storage/graph.h"
#include "util/rng.h"

namespace snb::sched {
namespace {

struct Workload {
  storage::Graph graph;
  params::WorkloadParameters params;
};

Workload* MakeWorkload() {
  datagen::DatagenConfig cfg;
  cfg.num_persons = 200;
  cfg.activity_scale = 0.4;
  datagen::GeneratedData data = datagen::Generate(cfg);
  auto* w = new Workload{storage::Graph(std::move(data.network)), {}};
  params::CurationConfig pc;
  pc.per_query = 4;
  w->params = params::CurateParameters(w->graph, pc);
  return w;
}

class SchedFixture : public ::testing::Test {
 public:
  static void SetUpTestSuite() { workload_ = MakeWorkload(); }
  static void TearDownTestSuite() { delete workload_; }
  static const storage::Graph& graph() { return workload_->graph; }
  static const params::WorkloadParameters& params() {
    return workload_->params;
  }

 private:
  static Workload* workload_;
};

Workload* SchedFixture::workload_ = nullptr;

// Reference (rows, fingerprint) per op, computed on this thread with no
// token — the sequential engine's answer.
std::map<std::pair<int, size_t>, OpOutcome> SequentialReference(
    size_t bindings_per_query) {
  std::map<std::pair<int, size_t>, OpOutcome> ref;
  for (int q = 1; q <= 25; ++q) {
    size_t n = std::min(bindings_per_query,
                        BindingCount(SchedFixture::params(), q));
    for (size_t b = 0; b < n; ++b) {
      ref[{q, b}] = ExecuteStreamOp(SchedFixture::graph(),
                                    SchedFixture::params(), {q, b}, nullptr);
    }
  }
  return ref;
}

TEST_F(SchedFixture, StreamsPermuteTheSameOpSet) {
  QueryStream s0(0, params(), 2, 42);
  QueryStream s1(1, params(), 2, 42);
  QueryStream s0_again(0, params(), 2, 42);

  // Same (seed, id) → identical sequence; different id → different order.
  ASSERT_EQ(s0.ops().size(), s0_again.ops().size());
  for (size_t i = 0; i < s0.ops().size(); ++i) {
    EXPECT_EQ(s0.ops()[i].query, s0_again.ops()[i].query);
    EXPECT_EQ(s0.ops()[i].binding, s0_again.ops()[i].binding);
  }
  auto key = [](const StreamOp& op) {
    return std::pair<int, size_t>{op.query, op.binding};
  };
  std::vector<std::pair<int, size_t>> a, b;
  bool same_order = true;
  ASSERT_EQ(s0.ops().size(), s1.ops().size());
  for (size_t i = 0; i < s0.ops().size(); ++i) {
    a.push_back(key(s0.ops()[i]));
    b.push_back(key(s1.ops()[i]));
    if (a.back() != b.back()) same_order = false;
  }
  EXPECT_FALSE(same_order);
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  EXPECT_EQ(a, b);  // same multiset: every stream runs the full workload
}

TEST_F(SchedFixture, ConcurrentStreamsMatchSequentialEngineBitForBit) {
  const size_t kBindings = 3;
  auto ref = SequentialReference(kBindings);

  SchedulerConfig cfg;
  cfg.num_streams = 3;
  cfg.num_workers = 4;
  cfg.bindings_per_query = kBindings;
  ScheduleResult run = RunStreams(graph(), params(), cfg);

  ASSERT_EQ(run.streams.size(), 3u);
  EXPECT_EQ(run.total_cancelled, 0u);
  EXPECT_EQ(run.total_completed, 3 * ref.size());
  for (const StreamResult& stream : run.streams) {
    ASSERT_EQ(stream.outcomes.size(), ref.size());
    for (const OpOutcome& o : stream.outcomes) {
      const OpOutcome& expected = ref.at({o.op.query, o.op.binding});
      EXPECT_EQ(o.rows, expected.rows)
          << StreamOpName(o.op) << " binding " << o.op.binding;
      EXPECT_EQ(o.fingerprint, expected.fingerprint)
          << StreamOpName(o.op) << " binding " << o.op.binding;
    }
  }
}

TEST_F(SchedFixture, IntraStreamOverlapPreservesResults) {
  const size_t kBindings = 2;
  auto ref = SequentialReference(kBindings);

  SchedulerConfig cfg;
  cfg.num_streams = 2;
  cfg.num_workers = 4;
  cfg.max_in_flight_per_stream = 4;  // overlap queries within a stream
  cfg.bindings_per_query = kBindings;
  ScheduleResult run = RunStreams(graph(), params(), cfg);

  EXPECT_EQ(run.total_completed, 2 * ref.size());
  for (const StreamResult& stream : run.streams) {
    for (const OpOutcome& o : stream.outcomes) {
      EXPECT_EQ(o.fingerprint, ref.at({o.op.query, o.op.binding}).fingerprint)
          << StreamOpName(o.op);
    }
  }
}

TEST_F(SchedFixture, TightDeadlineCancelsEveryQuery) {
  SchedulerConfig cfg;
  cfg.num_streams = 2;
  cfg.num_workers = 2;
  cfg.bindings_per_query = 2;
  cfg.query_deadline_ms = 1e-6;  // 1 ns: expired before any query can start
  ScheduleResult run = RunStreams(graph(), params(), cfg);

  EXPECT_EQ(run.total_completed, 0u);
  EXPECT_GT(run.total_cancelled, 0u);
  for (const StreamResult& stream : run.streams) {
    EXPECT_EQ(stream.completed, 0u);
    EXPECT_EQ(stream.cancelled, stream.outcomes.size());
    for (const OpOutcome& o : stream.outcomes) {
      EXPECT_TRUE(o.cancelled);
      EXPECT_EQ(o.rows, 0u);
    }
  }
}

TEST_F(SchedFixture, RequestStopCancelsMidQuery) {
  bi::CancelToken token;
  token.RequestStop();
  OpOutcome out = ExecuteStreamOp(graph(), params(), {1, 0}, &token);
  EXPECT_TRUE(out.cancelled);
  EXPECT_EQ(out.rows, 0u);

  // The same op without a token completes.
  OpOutcome ok = ExecuteStreamOp(graph(), params(), {1, 0}, nullptr);
  EXPECT_FALSE(ok.cancelled);
}

TEST_F(SchedFixture, DriverMultiStreamModeReportsAllStreams) {
  driver::DriverConfig cfg;
  cfg.bi_streams = 2;
  cfg.bi_workers = 4;
  driver::DriverReport report =
      driver::RunBiWorkloadMultiStream(graph(), params(), 2, cfg);
  EXPECT_EQ(report.per_operation.size(), 25u);
  for (const auto& [op, stats] : report.per_operation) {
    EXPECT_EQ(stats.count, 2u * 2u) << op;  // streams × bindings
  }
  EXPECT_EQ(report.cancelled_reads, 0u);
  EXPECT_EQ(report.total_operations, 2u * 2u * 25u);

  driver::DriverConfig tight = cfg;
  tight.bi_query_deadline_ms = 1e-6;
  driver::DriverReport cancelled =
      driver::RunBiWorkloadMultiStream(graph(), params(), 2, tight);
  EXPECT_EQ(cancelled.total_operations, 0u);
  EXPECT_EQ(cancelled.cancelled_reads, 2u * 2u * 25u);
}

TEST(LatencyHistogramTest, PercentilesWithinBucketResolution) {
  LatencyHistogram hist;
  std::vector<double> samples;
  util::Rng rng(7, uint64_t{0x4157});
  for (int i = 0; i < 20000; ++i) {
    // Latencies spread over four decades, the realistic BI template spread.
    double ms = std::pow(10.0, rng.NextDouble() * 4.0 - 1.0);
    samples.push_back(ms);
    hist.Record(ms);
  }
  std::vector<double> sorted = samples;
  std::sort(sorted.begin(), sorted.end());

  EXPECT_EQ(hist.count(), samples.size());
  double total = 0;
  for (double s : samples) total += s;
  EXPECT_NEAR(hist.MeanMs(), total / samples.size(), 1e-9);
  EXPECT_DOUBLE_EQ(hist.max_ms(), sorted.back());
  EXPECT_DOUBLE_EQ(hist.min_ms(), sorted.front());

  const double ratio = LatencyHistogram::BucketRatio();
  for (double p : {0.05, 0.25, 0.5, 0.9, 0.95, 0.99, 0.999}) {
    double exact =
        sorted[static_cast<size_t>(p * static_cast<double>(sorted.size()))];
    double approx = hist.PercentileMs(p);
    EXPECT_GE(approx, exact * (1 - 1e-12)) << "p=" << p;
    EXPECT_LE(approx, exact * ratio * (1 + 1e-12)) << "p=" << p;
  }
}

TEST(LatencyHistogramTest, MergeMatchesSingleHistogram) {
  LatencyHistogram one, a, b;
  util::Rng rng(11, uint64_t{0x4158});
  for (int i = 0; i < 5000; ++i) {
    double ms = 0.5 + rng.NextDouble() * 200.0;
    one.Record(ms);
    (i % 2 == 0 ? a : b).Record(ms);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), one.count());
  // Summation order differs between the split and the single histogram.
  EXPECT_NEAR(a.total_ms(), one.total_ms(), 1e-6);
  EXPECT_DOUBLE_EQ(a.max_ms(), one.max_ms());
  for (double p : {0.5, 0.95, 0.99}) {
    EXPECT_DOUBLE_EQ(a.PercentileMs(p), one.PercentileMs(p)) << "p=" << p;
  }
}

TEST(LatencyHistogramTest, EdgeCases) {
  LatencyHistogram empty;
  EXPECT_EQ(empty.count(), 0u);
  EXPECT_EQ(empty.PercentileMs(0.99), 0.0);
  EXPECT_EQ(empty.MeanMs(), 0.0);
  EXPECT_EQ(empty.max_ms(), 0.0);

  LatencyHistogram extremes;
  extremes.Record(1e-5);  // below the finite range → underflow bucket
  extremes.Record(1e9);   // above the finite range → overflow bucket
  EXPECT_DOUBLE_EQ(extremes.PercentileMs(0.0), 1e-5);   // clamped to min/max
  EXPECT_DOUBLE_EQ(extremes.PercentileMs(0.99), 1e9);
}

TEST(ScoreTest, PowerScoreIsScaledGeomean) {
  ScheduleResult run;
  run.streams.resize(1);
  // Two templates with exactly known means: 100 ms and 400 ms →
  // geomean = sqrt(0.1 · 0.4) = 0.2 s → power@SF1 = 3600 / 0.2 = 18000.
  run.per_query["BI 1"].Record(100.0);
  run.per_query["BI 2"].Record(300.0);
  run.per_query["BI 2"].Record(500.0);
  run.total_completed = 3;
  PowerScore score = ComputePowerScore(run, 1.0);
  EXPECT_TRUE(score.ok());
  EXPECT_EQ(score.templates_scored, 2u);
  EXPECT_NEAR(score.geomean_seconds, 0.2, 1e-12);
  EXPECT_NEAR(score.power_at_sf, 18000.0, 1e-6);
  // Scores scale linearly with SF.
  EXPECT_NEAR(ComputePowerScore(run, 0.1).power_at_sf, 1800.0, 1e-6);
}

TEST(ScoreTest, ThroughputScoreCountsStreamsPerHour) {
  ScheduleResult run;
  run.streams.resize(4);
  run.wall_seconds = 1800.0;  // 4 streams in half an hour
  run.total_completed = 400;
  ThroughputScore score = ComputeThroughputScore(run, 0.1);
  EXPECT_TRUE(score.ok());
  EXPECT_NEAR(score.queries_per_hour, 800.0, 1e-9);
  EXPECT_NEAR(score.throughput_at_sf, 4 * 2.0 * 0.1, 1e-9);

  ScheduleResult with_cancels = run;
  with_cancels.total_cancelled = 5;
  EXPECT_FALSE(ComputeThroughputScore(with_cancels, 0.1).ok());
}

}  // namespace
}  // namespace snb::sched

// Cross-validation of the optimized Interactive engine against the naive
// baseline: all 14 complex reads, multiple curated bindings, multiple
// generated networks.

#include <gtest/gtest.h>

#include <map>

#include "datagen/datagen.h"
#include "interactive/interactive.h"
#include "interactive/naive.h"
#include "params/parameter_curation.h"
#include "storage/graph.h"

namespace snb::interactive {
namespace {

struct Workbench {
  storage::Graph graph;
  params::WorkloadParameters params;
};

Workbench* MakeWorkbench(uint64_t seed) {
  datagen::DatagenConfig cfg;
  cfg.seed = seed;
  cfg.num_persons = 260;
  cfg.activity_scale = 0.5;
  datagen::GeneratedData data = datagen::Generate(cfg);
  auto* bench = new Workbench{storage::Graph(std::move(data.network)), {}};
  params::CurationConfig pc;
  pc.seed = seed;
  pc.per_query = 6;
  bench->params = params::CurateParameters(bench->graph, pc);
  return bench;
}

class IcCrossValTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  static void SetUpTestSuite() {
    if (benches_ == nullptr) {
      benches_ = new std::map<uint64_t, Workbench*>();
    }
  }
  Workbench& bench() {
    Workbench*& b = (*benches_)[GetParam()];
    if (b == nullptr) b = MakeWorkbench(GetParam());
    return *b;
  }

 private:
  static std::map<uint64_t, Workbench*>* benches_;
};

std::map<uint64_t, Workbench*>* IcCrossValTest::benches_ = nullptr;

#define SNB_IC_CROSSVAL(N)                                           \
  TEST_P(IcCrossValTest, Ic##N##MatchesNaive) {                      \
    Workbench& wb = bench();                                         \
    ASSERT_FALSE(wb.params.ic##N.empty());                           \
    for (size_t i = 0; i < wb.params.ic##N.size() && i < 4; ++i) {   \
      auto optimized = RunIc##N(wb.graph, wb.params.ic##N[i]);       \
      auto baseline = naive::RunIc##N(wb.graph, wb.params.ic##N[i]); \
      EXPECT_EQ(optimized, baseline) << "binding " << i;             \
    }                                                                \
  }

SNB_IC_CROSSVAL(1)
SNB_IC_CROSSVAL(2)
SNB_IC_CROSSVAL(3)
SNB_IC_CROSSVAL(4)
SNB_IC_CROSSVAL(5)
SNB_IC_CROSSVAL(6)
SNB_IC_CROSSVAL(7)
SNB_IC_CROSSVAL(8)
SNB_IC_CROSSVAL(9)
SNB_IC_CROSSVAL(10)
SNB_IC_CROSSVAL(11)
SNB_IC_CROSSVAL(12)
SNB_IC_CROSSVAL(13)
SNB_IC_CROSSVAL(14)

#undef SNB_IC_CROSSVAL

TEST_P(IcCrossValTest, ShortReadsMatchNaive) {
  Workbench& wb = bench();
  // Person-centric short reads over the curated persons.
  for (size_t i = 0; i < wb.params.ic7.size() && i < 4; ++i) {
    core::Id person = wb.params.ic7[i].person_id;
    EXPECT_EQ(RunIs1(wb.graph, person), naive::RunIs1(wb.graph, person));
    EXPECT_EQ(RunIs2(wb.graph, person), naive::RunIs2(wb.graph, person));
    EXPECT_EQ(RunIs3(wb.graph, person), naive::RunIs3(wb.graph, person));
  }
  // Message-centric short reads over a few posts and comments.
  for (uint32_t post = 0; post < 6 && post < wb.graph.NumPosts();
       post += 2) {
    core::Id id = wb.graph.PostAt(post).id;
    EXPECT_EQ(RunIs4(wb.graph, id, true), naive::RunIs4(wb.graph, id, true));
    EXPECT_EQ(RunIs5(wb.graph, id, true), naive::RunIs5(wb.graph, id, true));
    EXPECT_EQ(RunIs6(wb.graph, id, true), naive::RunIs6(wb.graph, id, true));
    EXPECT_EQ(RunIs7(wb.graph, id, true), naive::RunIs7(wb.graph, id, true));
  }
  for (uint32_t comment = 0; comment < 6 && comment < wb.graph.NumComments();
       comment += 2) {
    core::Id id = wb.graph.CommentAt(comment).id;
    EXPECT_EQ(RunIs4(wb.graph, id, false),
              naive::RunIs4(wb.graph, id, false));
    EXPECT_EQ(RunIs7(wb.graph, id, false),
              naive::RunIs7(wb.graph, id, false));
  }
  // Unknown ids agree on emptiness.
  EXPECT_EQ(RunIs1(wb.graph, 1 << 30), naive::RunIs1(wb.graph, 1 << 30));
}

INSTANTIATE_TEST_SUITE_P(Seeds, IcCrossValTest,
                         ::testing::Values(42, 777, 31415));

}  // namespace
}  // namespace snb::interactive

// Unit tests for the fail-point framework (util/failpoint.h): arming modes,
// nth-hit triggers, auto-disarm, spec-string grammar, and the crash mode
// (asserted through a forked child so the test binary survives).
//
// Note: the site *macro* is reserved for production code under src/ (the
// lint gate enforces it); tests exercise sites through the registration and
// Hit() functions directly, which is also what a hand-rolled site does.

#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>

#include "util/failpoint.h"
#include "util/status.h"

namespace snb::util::failpoint {
namespace {

class FailpointTest : public ::testing::Test {
 protected:
  void TearDown() override { DisarmAll(); }
};

TEST_F(FailpointTest, UnarmedSiteIsInvisible) {
  RegisterSite("test.unarmed");
  EXPECT_FALSE(IsArmed("test.unarmed"));
  EXPECT_TRUE(Hit("test.unarmed").ok());
}

TEST_F(FailpointTest, ErrorModeInjectsTransientStatusByDefault) {
  Arm("test.error", Spec{});
  EXPECT_TRUE(AnyArmed());
  Status st = Hit("test.error");
  EXPECT_TRUE(st.IsTransient()) << st.ToString();
  EXPECT_NE(st.ToString().find("test.error"), std::string::npos)
      << "default message should name the site: " << st.ToString();

  Disarm("test.error");
  EXPECT_FALSE(IsArmed("test.error"));
  EXPECT_TRUE(Hit("test.error").ok());
}

TEST_F(FailpointTest, ErrorModeCarriesRequestedCodeAndMessage) {
  Spec spec;
  spec.error_code = StatusCode::kCorruption;
  spec.message = "synthetic bitrot";
  Arm("test.corrupt", spec);
  Status st = Hit("test.corrupt");
  EXPECT_TRUE(st.IsCorruption());
  EXPECT_EQ(st.message(), "synthetic bitrot");
}

TEST_F(FailpointTest, NthHitFiresExactlyOnceThenDisarms) {
  Spec spec;
  spec.nth = 3;
  Arm("test.nth", spec);
  EXPECT_TRUE(Hit("test.nth").ok());   // hit 1
  EXPECT_TRUE(Hit("test.nth").ok());   // hit 2
  EXPECT_FALSE(Hit("test.nth").ok());  // hit 3 — fires
  // Past the trigger the point auto-disarms (one-shot semantics).
  EXPECT_TRUE(Hit("test.nth").ok());
  EXPECT_FALSE(IsArmed("test.nth"));
}

TEST_F(FailpointTest, MaxFiresAutoDisarms) {
  Spec spec;
  spec.max_fires = 2;
  Arm("test.maxfires", spec);
  EXPECT_FALSE(Hit("test.maxfires").ok());
  EXPECT_FALSE(Hit("test.maxfires").ok());
  EXPECT_FALSE(IsArmed("test.maxfires"));
  EXPECT_TRUE(Hit("test.maxfires").ok());
}

TEST_F(FailpointTest, RearmingResetsCounters) {
  Spec spec;
  spec.max_fires = 1;
  Arm("test.rearm", spec);
  EXPECT_FALSE(Hit("test.rearm").ok());
  EXPECT_TRUE(Hit("test.rearm").ok());
  Arm("test.rearm", spec);  // fresh fire budget
  EXPECT_FALSE(Hit("test.rearm").ok());
}

TEST_F(FailpointTest, DelayModeSleeps) {
  Spec spec;
  spec.mode = Mode::kDelay;
  spec.delay_ms = 30;
  Arm("test.delay", spec);
  auto t0 = std::chrono::steady_clock::now();
  EXPECT_TRUE(Hit("test.delay").ok());
  auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - t0);
  EXPECT_GE(elapsed.count(), 25);
}

TEST_F(FailpointTest, HitCountTracksArmedTraffic) {
  Arm("test.count", Spec{});
  size_t before = HitCount("test.count");
  (void)Hit("test.count");
  (void)Hit("test.count");
  EXPECT_EQ(HitCount("test.count"), before + 2);
}

TEST_F(FailpointTest, RegistrySurfacesExecutedSites) {
  RegisterSite("test.registry.a");
  RegisterSite("test.registry.b");
  RegisterSite("test.registry.a");  // idempotent
  std::vector<std::string> sites = RegisteredSites();
  EXPECT_TRUE(std::is_sorted(sites.begin(), sites.end()));
  EXPECT_EQ(std::count(sites.begin(), sites.end(), "test.registry.a"), 1);
  EXPECT_EQ(std::count(sites.begin(), sites.end(), "test.registry.b"), 1);
}

TEST_F(FailpointTest, SpecStringArmsMultipleEntries) {
  ASSERT_TRUE(ArmFromSpecString(
                  "test.s1=error:corruption;test.s2=delay:5;test.s3=error@2x1")
                  .ok());
  EXPECT_TRUE(IsArmed("test.s1"));
  EXPECT_TRUE(IsArmed("test.s2"));
  EXPECT_TRUE(IsArmed("test.s3"));

  EXPECT_TRUE(Hit("test.s1").IsCorruption());
  EXPECT_TRUE(Hit("test.s2").ok());  // delay fires but injects nothing

  // @2x1: skips the first hit, fires on the second, then disarms.
  EXPECT_TRUE(Hit("test.s3").ok());
  EXPECT_TRUE(Hit("test.s3").IsTransient());
  EXPECT_FALSE(IsArmed("test.s3"));
}

TEST_F(FailpointTest, SpecStringOffDisarms) {
  Arm("test.off", Spec{});
  ASSERT_TRUE(ArmFromSpecString("test.off=off").ok());
  EXPECT_FALSE(IsArmed("test.off"));
}

TEST_F(FailpointTest, SpecStringRejectsGarbage) {
  EXPECT_FALSE(ArmFromSpecString("justaname").ok());
  EXPECT_FALSE(ArmFromSpecString("a=bogusmode").ok());
  EXPECT_FALSE(ArmFromSpecString("a=error:bogus").ok());
  EXPECT_FALSE(ArmFromSpecString("a=delay:abc").ok());
  EXPECT_FALSE(ArmFromSpecString("a=error@x").ok());
  EXPECT_FALSE(IsArmed("a"));
}

TEST_F(FailpointTest, CrashModeKillsTheProcessWithMarkerExitCode) {
  pid_t pid = fork();
  ASSERT_GE(pid, 0) << "fork failed";
  if (pid == 0) {
    // Child: arm and walk into the site. Hit() must not return.
    Spec spec;
    spec.mode = Mode::kCrash;
    Arm("test.crash", spec);
    (void)Hit("test.crash");
    _exit(1);  // unreachable — failing the parent's assertion if reached
  }
  int wstatus = 0;
  ASSERT_EQ(waitpid(pid, &wstatus, 0), pid);
  ASSERT_TRUE(WIFEXITED(wstatus));
  EXPECT_EQ(WEXITSTATUS(wstatus), CrashExitCode());
}

}  // namespace
}  // namespace snb::util::failpoint

// Engine primitive tests: top-k selection (vs full sort, property-based)
// and the BFS family (distances, bidirectional shortest path, all shortest
// paths) on crafted and random graphs.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "engine/bfs.h"
#include "engine/top_k.h"
#include "storage/adjacency.h"
#include "util/rng.h"

namespace snb::engine {
namespace {

TEST(TopKTest, KeepsBestElements) {
  auto less = [](int a, int b) { return a < b; };
  TopK<int, decltype(less)> top(3, less);
  for (int v : {9, 1, 8, 2, 7, 3}) top.Add(v);
  EXPECT_EQ(top.Take(), (std::vector<int>{1, 2, 3}));
}

TEST(TopKTest, FewerThanKElements) {
  auto less = [](int a, int b) { return a < b; };
  TopK<int, decltype(less)> top(10, less);
  top.Add(5);
  top.Add(3);
  EXPECT_EQ(top.Take(), (std::vector<int>{3, 5}));
}

TEST(TopKTest, WouldAcceptReflectsThreshold) {
  auto less = [](int a, int b) { return a < b; };
  TopK<int, decltype(less)> top(2, less);
  EXPECT_TRUE(top.WouldAccept(100));
  top.Add(10);
  top.Add(20);
  EXPECT_TRUE(top.full());
  EXPECT_FALSE(top.WouldAccept(30));
  EXPECT_FALSE(top.WouldAccept(20));  // equal ranks below the retained one
  EXPECT_TRUE(top.WouldAccept(15));
  EXPECT_TRUE(top.Add(15));
  EXPECT_EQ(top.Take(), (std::vector<int>{10, 15}));
}

class TopKPropertyTest : public ::testing::TestWithParam<size_t> {};

TEST_P(TopKPropertyTest, MatchesFullSort) {
  const size_t k = GetParam();
  util::Rng rng(99, k);
  auto less = [](int64_t a, int64_t b) { return a < b; };
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<int64_t> values;
    size_t n = static_cast<size_t>(rng.UniformInt(0, 500));
    for (size_t i = 0; i < n; ++i) {
      values.push_back(rng.UniformInt(-1000, 1000));
    }
    TopK<int64_t, decltype(less)> top(k, less);
    for (int64_t v : values) top.Add(v);
    std::vector<int64_t> expected = values;
    std::sort(expected.begin(), expected.end());
    if (expected.size() > k) expected.resize(k);
    EXPECT_EQ(top.Take(), expected);
  }
}

INSTANTIATE_TEST_SUITE_P(Ks, TopKPropertyTest,
                         ::testing::Values(1, 2, 5, 20, 100));

TEST(SortAndLimitTest, TruncatesAfterSorting) {
  std::vector<int> v{5, 1, 4, 2, 3};
  SortAndLimit(v, std::less<int>(), 3);
  EXPECT_EQ(v, (std::vector<int>{1, 2, 3}));
  std::vector<int> w{5, 1};
  SortAndLimit(w, std::less<int>(), 0);  // 0 = unlimited
  EXPECT_EQ(w, (std::vector<int>{1, 5}));
}

// ---------------------------------------------------------------------------

storage::AdjacencyList MakeUndirected(
    size_t n, const std::vector<std::pair<uint32_t, uint32_t>>& edges) {
  std::vector<storage::EdgeInput> dir;
  for (auto [a, b] : edges) {
    dir.push_back({a, b});
    dir.push_back({b, a});
  }
  storage::AdjacencyList adj;
  adj.Build(n, std::move(dir), false);
  return adj;
}

TEST(BfsTest, DistancesOnPathGraph) {
  auto adj = MakeUndirected(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}});
  auto dist = BfsDistances(adj, 0);
  EXPECT_EQ(dist, (std::vector<int32_t>{0, 1, 2, 3, 4}));
}

TEST(BfsTest, MaxDepthBoundsExploration) {
  auto adj = MakeUndirected(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}});
  auto dist = BfsDistances(adj, 0, 2);
  EXPECT_EQ(dist, (std::vector<int32_t>{0, 1, 2, -1, -1}));
}

TEST(BfsTest, DisconnectedComponentsUnreachable) {
  auto adj = MakeUndirected(4, {{0, 1}, {2, 3}});
  auto dist = BfsDistances(adj, 0);
  EXPECT_EQ(dist[2], -1);
  EXPECT_EQ(dist[3], -1);
}

TEST(ShortestPathTest, BasicCases) {
  auto adj = MakeUndirected(6, {{0, 1}, {1, 2}, {2, 3}, {0, 4}, {4, 3}});
  EXPECT_EQ(ShortestPathLength(adj, 0, 0), 0);
  EXPECT_EQ(ShortestPathLength(adj, 0, 3), 2);  // 0-4-3 beats 0-1-2-3
  EXPECT_EQ(ShortestPathLength(adj, 0, 5), -1);
}

TEST(ShortestPathTest, MatchesFullBfsOnRandomGraphs) {
  util::Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    size_t n = static_cast<size_t>(rng.UniformInt(2, 60));
    std::vector<std::pair<uint32_t, uint32_t>> edges;
    size_t m = static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(n * 2)));
    for (size_t e = 0; e < m; ++e) {
      uint32_t a = static_cast<uint32_t>(rng.UniformInt(0, static_cast<int64_t>(n) - 1));
      uint32_t b = static_cast<uint32_t>(rng.UniformInt(0, static_cast<int64_t>(n) - 1));
      if (a != b) edges.emplace_back(a, b);
    }
    auto adj = MakeUndirected(n, edges);
    for (int pair = 0; pair < 10; ++pair) {
      uint32_t s = static_cast<uint32_t>(rng.UniformInt(0, static_cast<int64_t>(n) - 1));
      uint32_t t = static_cast<uint32_t>(rng.UniformInt(0, static_cast<int64_t>(n) - 1));
      auto dist = BfsDistances(adj, s);
      EXPECT_EQ(ShortestPathLength(adj, s, t), dist[t])
          << "n=" << n << " s=" << s << " t=" << t;
    }
  }
}

TEST(AllShortestPathsTest, EnumeratesAllOnDiamond) {
  // Diamond 0-{1,2}-3: two shortest paths 0-1-3 and 0-2-3.
  auto adj = MakeUndirected(4, {{0, 1}, {0, 2}, {1, 3}, {2, 3}});
  auto paths = AllShortestPaths(adj, 0, 3);
  ASSERT_EQ(paths.size(), 2u);
  std::set<std::vector<uint32_t>> got(paths.begin(), paths.end());
  EXPECT_TRUE(got.contains({0, 1, 3}));
  EXPECT_TRUE(got.contains({0, 2, 3}));
}

TEST(AllShortestPathsTest, TrivialAndDisconnected) {
  auto adj = MakeUndirected(3, {{0, 1}});
  auto self = AllShortestPaths(adj, 0, 0);
  ASSERT_EQ(self.size(), 1u);
  EXPECT_EQ(self[0], (std::vector<uint32_t>{0}));
  EXPECT_TRUE(AllShortestPaths(adj, 0, 2).empty());
}

TEST(AllShortestPathsTest, AllPathsHaveShortestLength) {
  util::Rng rng(13);
  for (int trial = 0; trial < 10; ++trial) {
    size_t n = static_cast<size_t>(rng.UniformInt(4, 40));
    std::vector<std::pair<uint32_t, uint32_t>> edges;
    for (size_t e = 0; e < n * 2; ++e) {
      uint32_t a = static_cast<uint32_t>(rng.UniformInt(0, static_cast<int64_t>(n) - 1));
      uint32_t b = static_cast<uint32_t>(rng.UniformInt(0, static_cast<int64_t>(n) - 1));
      if (a != b) edges.emplace_back(a, b);
    }
    auto adj = MakeUndirected(n, edges);
    uint32_t s = 0, t = static_cast<uint32_t>(n - 1);
    int32_t d = ShortestPathLength(adj, s, t);
    auto paths = AllShortestPaths(adj, s, t);
    if (d < 0) {
      EXPECT_TRUE(paths.empty());
      continue;
    }
    EXPECT_FALSE(paths.empty());
    std::set<std::vector<uint32_t>> unique(paths.begin(), paths.end());
    EXPECT_EQ(unique.size(), paths.size()) << "duplicate paths";
    for (const auto& path : paths) {
      EXPECT_EQ(static_cast<int32_t>(path.size()) - 1, d);
      EXPECT_EQ(path.front(), s);
      EXPECT_EQ(path.back(), t);
      // Consecutive nodes are adjacent.
      for (size_t i = 0; i + 1 < path.size(); ++i) {
        EXPECT_TRUE(adj.Contains(path[i], path[i + 1]));
      }
    }
  }
}

TEST(AllShortestPathsTest, MaxPathsCapsEnumeration) {
  // Ladder of diamonds: path count doubles per stage.
  std::vector<std::pair<uint32_t, uint32_t>> edges;
  uint32_t node = 0;
  for (int stage = 0; stage < 5; ++stage) {
    edges.emplace_back(node, node + 1);
    edges.emplace_back(node, node + 2);
    edges.emplace_back(node + 1, node + 3);
    edges.emplace_back(node + 2, node + 3);
    node += 3;
  }
  auto adj = MakeUndirected(node + 1, edges);
  auto all = AllShortestPaths(adj, 0, node);
  EXPECT_EQ(all.size(), 32u);  // 2^5
  auto capped = AllShortestPaths(adj, 0, node, 7);
  EXPECT_EQ(capped.size(), 7u);
}

}  // namespace
}  // namespace snb::engine

// Drives the snb_lint binary over the golden fixtures in
// tests/lint_fixtures/. Every check has a fires/clean pair: the fires
// fixture must produce at least one finding of exactly that check, and the
// clean fixture must survive the *full* check suite under its virtual
// path — so a check that silently stops firing and a check that starts
// over-firing both break this test. The lexer edge fixtures (multi-line
// block comments, raw strings, non-nesting /* */) pin the exact failure
// modes that the old sed|grep lint gate got wrong.
//
// SNB_LINT_BIN and SNB_LINT_FIXTURE_DIR arrive as compile definitions from
// tests/CMakeLists.txt.

#include <cstdio>
#include <string>

#include "gtest/gtest.h"

namespace {

struct RunResult {
  int exit_code = -1;
  std::string output;
};

RunResult RunLint(const std::string& args) {
  std::string cmd = std::string(SNB_LINT_BIN) + " " + args + " 2>&1";
  RunResult r;
  FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) return r;
  char buf[512];
  while (fgets(buf, sizeof(buf), pipe) != nullptr) r.output += buf;
  int status = pclose(pipe);
  r.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return r;
}

std::string Fixture(const std::string& name) {
  return std::string(SNB_LINT_FIXTURE_DIR) + "/" + name;
}

/// The fires half of a golden pair: running only `check` over the fixture
/// exits 1 and every reported finding names that check.
void ExpectFires(const std::string& check, const std::string& fixture) {
  RunResult r =
      RunLint("--check " + check + " --fixture " + Fixture(fixture));
  EXPECT_EQ(r.exit_code, 1) << check << " on " << fixture << ":\n"
                            << r.output;
  EXPECT_NE(r.output.find("[" + check + "]"), std::string::npos)
      << check << " on " << fixture << ":\n"
      << r.output;
}

/// The clean half: the fixture passes the *entire* suite, so no other
/// check over-fires on the idioms this pair declares acceptable.
void ExpectClean(const std::string& fixture) {
  RunResult r = RunLint("--fixture " + Fixture(fixture));
  EXPECT_EQ(r.exit_code, 0) << fixture << ":\n" << r.output;
  EXPECT_EQ(r.output, "") << fixture;
}

TEST(SnbLintFixtures, GoldenPairsPerCheck) {
  ExpectFires("no-raw-random", "no_raw_random_fires.cc");
  ExpectClean("no_raw_random_clean.cc");

  ExpectFires("no-wall-clock", "no_wall_clock_fires.cc");
  ExpectClean("no_wall_clock_clean.cc");

  ExpectFires("no-raw-sync", "no_raw_sync_fires.cc");
  ExpectClean("no_raw_sync_clean.cc");

  ExpectFires("condvar-confined", "condvar_confined_fires.cc");
  ExpectClean("condvar_confined_clean.cc");

  ExpectFires("fuzz-public-parser", "fuzz_public_parser_fires.cc");
  ExpectClean("fuzz_public_parser_clean.cc");

  ExpectFires("cancel-poll", "cancel_poll_fires.cc");
  ExpectFires("cancel-poll", "cancel_poll_unreachable_fires.cc");
  ExpectClean("cancel_poll_clean.cc");

  ExpectFires("topk-bound", "topk_bound_fires.cc");
  ExpectClean("topk_bound_clean.cc");

  ExpectFires("no-raw-atomic", "no_raw_atomic_fires.cc");
  ExpectClean("no_raw_atomic_clean.cc");

  ExpectFires("no-raw-assert", "no_raw_assert_fires.cc");
  ExpectClean("no_raw_assert_clean.cc");

  ExpectFires("failpoint-site-confined", "failpoint_site_confined_fires.cc");
  ExpectClean("failpoint_site_confined_clean.cc");

  ExpectFires("failpoint-arming-confined",
              "failpoint_arming_confined_fires.cc");
  ExpectClean("failpoint_arming_confined_clean.cc");

  ExpectFires("failpoint-site-unique", "failpoint_site_unique_fires.cc");
  ExpectClean("failpoint_site_unique_clean.cc");

  // Cascade-stage golden pairs: the delete cascade's stages each own a
  // distinct fail-point site, and only tests may arm them.
  ExpectFires("failpoint-site-unique",
              "failpoint_cascade_site_unique_fires.cc");
  ExpectClean("failpoint_cascade_site_unique_clean.cc");

  ExpectFires("failpoint-arming-confined",
              "failpoint_cascade_arming_fires.cc");
  ExpectClean("failpoint_cascade_arming_clean.cc");

  ExpectFires("wal-confined", "wal_confined_fires.cc");
  ExpectClean("wal_confined_clean.cc");

  ExpectFires("test-access-confined", "test_access_confined_fires.cc");
  ExpectClean("test_access_confined_clean.cc");

  ExpectFires("unchecked-status", "unchecked_status_fires.cc");
  ExpectClean("unchecked_status_clean.cc");

  ExpectFires("relaxed-rationale", "relaxed_rationale_fires.cc");
  ExpectClean("relaxed_rationale_clean.cc");

  ExpectFires("guarded-by", "guarded_by_fires.cc");
  ExpectClean("guarded_by_clean.cc");

  // The interprocedural (v3) families.
  ExpectFires("static-lock-cycle", "static_lock_cycle_fires.cc");
  ExpectClean("static_lock_cycle_clean.cc");

  ExpectFires("blocking-while-locked-static",
              "blocking_while_locked_static_fires.cc");
  ExpectClean("blocking_while_locked_static_clean.cc");

  ExpectFires("epoch-escape", "epoch_escape_fires.cc");
  ExpectClean("epoch_escape_clean.cc");

  ExpectFires("status-flow", "status_flow_fires.cc");
  ExpectClean("status_flow_clean.cc");
}

TEST(SnbLintIpa, LockCycleReportsBothCallChains) {
  // The A->B / B->A inversion hides each edge behind a helper; the single
  // cycle finding must carry the static call chain for *both* sides.
  RunResult r = RunLint("--check static-lock-cycle --fixture " +
                        Fixture("static_lock_cycle_fires.cc"));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("'demo.a' -> 'demo.b' -> 'demo.a'"),
            std::string::npos)
      << r.output;
  for (const char* chain_part :
       {"Pair::AThenB", "Pair::HelpLockB", "Pair::BThenA",
        "Pair::HelpLockA"}) {
    EXPECT_NE(r.output.find(chain_part), std::string::npos)
        << "missing chain element " << chain_part << " in:\n"
        << r.output;
  }
  EXPECT_NE(r.output.find("acquires 'demo.b'"), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("acquires 'demo.a'"), std::string::npos)
      << r.output;
}

TEST(SnbLintIpa, BlockingFindingCarriesInterproceduralChain) {
  // The fsync hides behind SyncToDisk: the finding must name the helper
  // hop, proving the hazard came through a summary, not a same-function
  // scan.
  RunResult r = RunLint("--check blocking-while-locked-static --fixture " +
                        Fixture("blocking_while_locked_static_fires.cc"));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("calls Cache::SyncToDisk"), std::string::npos)
      << r.output;
}

TEST(SnbLintIpa, StatusFlowCrossesCallBoundary) {
  RunResult r = RunLint("--check status-flow --fixture " +
                        Fixture("status_flow_fires.cc"));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("handed to 'LogOutcome'"), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("unnamed Status parameter"), std::string::npos)
      << r.output;
}

TEST(SnbLintFixtures, UncheckedStatusFlagsBothDiscardForms) {
  // One bare discard plus one (void) discard without an allow: two
  // findings, with the (void) form asking for the rationale.
  RunResult r = RunLint("--check unchecked-status --fixture " +
                        Fixture("unchecked_status_fires.cc"));
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("is discarded"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("(void)-discarded"), std::string::npos)
      << r.output;
}

TEST(SnbLintFixtures, CancelPollDistinguishesMissingFromUnreachable) {
  RunResult missing = RunLint("--check cancel-poll --fixture " +
                              Fixture("cancel_poll_fires.cc"));
  RunResult unreachable = RunLint("--check cancel-poll --fixture " +
                                  Fixture("cancel_poll_unreachable_fires.cc"));
  EXPECT_EQ(missing.exit_code, 1);
  EXPECT_EQ(unreachable.exit_code, 1);
  EXPECT_NE(missing.output, unreachable.output);
}

TEST(SnbLintSuppression, MalformedAllowsAreFindings) {
  RunResult r = RunLint("--check suppression --fixture " +
                        Fixture("suppression_fires.cc"));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  // Unknown check name and missing reason each produce a diagnostic.
  EXPECT_NE(r.output.find("no-such-check"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("reason"), std::string::npos) << r.output;
}

TEST(SnbLintSuppression, WellFormedAllowSuppresses) {
  // Full suite: the allow kills the no-raw-assert finding and produces no
  // suppression diagnostics of its own.
  ExpectClean("suppression_clean.cc");
}

TEST(SnbLintLexer, MultilineBlockCommentIsNotCode) {
  // Regression for the old sed pipeline, which stripped /* */ pairs only
  // when both ends shared a line — the body of a multi-line block comment
  // leaked into the greps as live code.
  ExpectClean("lexer_multiline_comment_clean.cc");
}

TEST(SnbLintLexer, BlockCommentsDoNotNest) {
  // `/* outer /* inner */ assert(...)` — the first */ ends the comment,
  // so the assert is live and must fire.
  ExpectFires("no-raw-assert", "lexer_nonnesting_comment_fires.cc");
}

TEST(SnbLintLexer, RawStringsAndEscapedQuotesAreContent) {
  ExpectClean("lexer_raw_string_clean.cc");
}

TEST(SnbLintLexer, RawStringsInsideMacroBodiesAreNotCode) {
  // #define bodies (including backslash continuations) are preprocessor
  // text, not tokens — a raw string full of forbidden spellings inside one
  // must not leak into the checks.
  ExpectClean("lexer_raw_string_in_macro_clean.cc");
}

TEST(SnbLintLexer, AdjacentStringConcatenationStaysStringContent) {
  // "assert(" "x)" lexes as two string tokens; neither half may be
  // mistaken for an identifier or call.
  ExpectClean("lexer_adjacent_concat_clean.cc");
}

TEST(SnbLintCli, JsonFormatReportsSuppressedFindings) {
  // Text mode hides allow-suppressed findings entirely; JSON keeps them
  // with "suppressed": true so reporting tools can count them — and they
  // still don't affect the exit code.
  RunResult r = RunLint("--format=json --fixture " +
                        Fixture("suppression_clean.cc"));
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("\"suppressed\": true"), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("\"check\": \"no-raw-assert\""), std::string::npos)
      << r.output;
}

TEST(SnbLintCli, JsonFormatEmitsUnsuppressedWithExitOne) {
  RunResult r = RunLint("--format=json --check no-raw-random --fixture " +
                        Fixture("no_raw_random_fires.cc"));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("\"check\": \"no-raw-random\""), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("\"suppressed\": false"), std::string::npos)
      << r.output;
}

TEST(SnbLintCli, ListChecksNamesEveryFamily) {
  RunResult r = RunLint("--list-checks");
  EXPECT_EQ(r.exit_code, 0);
  for (const char* name :
       {"no-raw-random", "no-wall-clock", "no-raw-sync", "condvar-confined",
        "fuzz-public-parser", "cancel-poll", "topk-bound", "no-raw-atomic",
        "no-raw-assert", "failpoint-site-confined",
        "failpoint-arming-confined", "failpoint-site-unique", "wal-confined",
        "test-access-confined", "unchecked-status", "relaxed-rationale",
        "guarded-by", "static-lock-cycle", "blocking-while-locked-static",
        "epoch-escape", "status-flow", "suppression"}) {
    EXPECT_NE(r.output.find(name), std::string::npos) << name;
  }
}

TEST(SnbLintCli, UnknownCheckIsUsageError) {
  RunResult r = RunLint("--check not-a-check --fixture " +
                        Fixture("no_raw_random_clean.cc"));
  EXPECT_EQ(r.exit_code, 2);
}

TEST(SnbLintCli, MissingFixtureIsIoError) {
  RunResult r = RunLint("--fixture " + Fixture("does_not_exist.cc"));
  EXPECT_EQ(r.exit_code, 2);
}

}  // namespace

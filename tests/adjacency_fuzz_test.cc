// Property-based fuzz test for AdjacencyList against a reference model:
// random build + append + node-growth sequences must agree on degrees,
// contents, order (sorted base by (target, date) before overflow in append
// order), and payloads.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "storage/adjacency.h"
#include "util/rng.h"

namespace snb::storage {
namespace {

struct ReferenceModel {
  // node → (target, date) in the adjacency's documented order: the base
  // sorted by (target, date), then appends in arrival order.
  std::vector<std::vector<std::pair<uint32_t, core::DateTime>>> lists;

  void EnsureNodes(size_t n) {
    if (lists.size() < n) lists.resize(n);
  }
};

class AdjacencyFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AdjacencyFuzzTest, MatchesReferenceModel) {
  util::Rng rng(GetParam());
  for (int trial = 0; trial < 30; ++trial) {
    size_t nodes = static_cast<size_t>(rng.UniformInt(1, 40));
    size_t build_edges = static_cast<size_t>(rng.UniformInt(0, 200));

    // Build phase.
    std::vector<EdgeInput> edges;
    ReferenceModel model;
    model.EnsureNodes(nodes);
    for (size_t e = 0; e < build_edges; ++e) {
      uint32_t src = static_cast<uint32_t>(
          rng.UniformInt(0, static_cast<int64_t>(nodes) - 1));
      uint32_t dst = static_cast<uint32_t>(
          rng.UniformInt(0, static_cast<int64_t>(nodes) - 1));
      core::DateTime date = rng.UniformInt(0, 1 << 20);
      edges.push_back({src, dst, date});
    }
    AdjacencyList adj;
    adj.Build(nodes, edges, /*with_dates=*/true);
    // The CSR build sorts every node's base span by (target, date) — the
    // adjacency-sorted invariant the validator checks.
    for (const EdgeInput& e : edges) {
      model.lists[e.src].emplace_back(e.dst, e.date);
    }
    for (auto& list : model.lists) std::sort(list.begin(), list.end());

    // Mutation phase: interleaved appends and node growth.
    size_t ops = static_cast<size_t>(rng.UniformInt(0, 100));
    for (size_t op = 0; op < ops; ++op) {
      if (rng.Bernoulli(0.15)) {
        size_t grow = static_cast<size_t>(rng.UniformInt(1, 5));
        adj.AddNodes(grow);
        model.EnsureNodes(model.lists.size() + grow);
      } else {
        uint32_t src = static_cast<uint32_t>(rng.UniformInt(
            0, static_cast<int64_t>(model.lists.size()) - 1));
        uint32_t dst = static_cast<uint32_t>(rng.UniformInt(
            0, static_cast<int64_t>(model.lists.size()) - 1));
        core::DateTime date = rng.UniformInt(0, 1 << 20);
        adj.Append(src, dst, date);
        model.lists[src].emplace_back(dst, date);
      }
    }

    // Verification.
    ASSERT_EQ(adj.num_nodes(), model.lists.size());
    size_t total_edges = 0;
    for (uint32_t node = 0; node < model.lists.size(); ++node) {
      total_edges += model.lists[node].size();
      ASSERT_EQ(adj.Degree(node), model.lists[node].size())
          << "node " << node << " trial " << trial;
      std::vector<std::pair<uint32_t, core::DateTime>> seen;
      adj.ForEachDated(node, [&](uint32_t t, core::DateTime d) {
        seen.emplace_back(t, d);
      });
      EXPECT_EQ(seen, model.lists[node]) << "node " << node;
      // ForEach agrees with ForEachDated on targets.
      std::vector<uint32_t> targets;
      adj.ForEach(node, [&](uint32_t t) { targets.push_back(t); });
      ASSERT_EQ(targets.size(), seen.size());
      for (size_t i = 0; i < targets.size(); ++i) {
        EXPECT_EQ(targets[i], seen[i].first);
      }
      EXPECT_EQ(adj.Collect(node), targets);
      // Contains agrees with the model.
      if (!model.lists[node].empty()) {
        EXPECT_TRUE(adj.Contains(node, model.lists[node].front().first));
      }
    }
    EXPECT_EQ(adj.num_edges(), total_edges);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AdjacencyFuzzTest,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace snb::storage

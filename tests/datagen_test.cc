// Datagen tests: determinism, referential integrity, temporal ordering,
// bulk/update-stream split, correlation (homophily), degree distribution,
// flashmob time correlation, and scaling behaviour.

#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "datagen/datagen.h"
#include "datagen/person_generator.h"
#include "datagen/statistics.h"

namespace snb::datagen {
namespace {

using core::SocialNetwork;

DatagenConfig SmallConfig(uint64_t seed = 42) {
  DatagenConfig cfg;
  cfg.seed = seed;
  cfg.num_persons = 300;
  cfg.activity_scale = 0.5;
  return cfg;
}

class DatagenFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data_ = new GeneratedData(Generate(SmallConfig()));
  }
  static void TearDownTestSuite() {
    delete data_;
    data_ = nullptr;
  }
  static const GeneratedData& data() { return *data_; }

 private:
  static GeneratedData* data_;
};

GeneratedData* DatagenFixture::data_ = nullptr;

TEST_F(DatagenFixture, ProducesNonTrivialNetwork) {
  const SocialNetwork& net = data().network;
  EXPECT_GT(net.persons.size(), 200u);
  EXPECT_GT(net.knows.size(), 100u);
  EXPECT_GT(net.forums.size(), net.persons.size());  // wall per person +
  EXPECT_GT(net.posts.size(), net.persons.size());
  EXPECT_GT(net.comments.size(), 0u);
  EXPECT_GT(net.likes.size(), 0u);
  EXPECT_FALSE(net.places.empty());
  EXPECT_FALSE(net.tags.empty());
  EXPECT_FALSE(net.organisations.empty());
}

TEST_F(DatagenFixture, IsDeterministic) {
  GeneratedData again = Generate(SmallConfig());
  const SocialNetwork& a = data().network;
  const SocialNetwork& b = again.network;
  ASSERT_EQ(a.persons.size(), b.persons.size());
  ASSERT_EQ(a.posts.size(), b.posts.size());
  ASSERT_EQ(a.comments.size(), b.comments.size());
  ASSERT_EQ(a.knows.size(), b.knows.size());
  ASSERT_EQ(a.likes.size(), b.likes.size());
  ASSERT_EQ(data().updates.size(), again.updates.size());
  for (size_t i = 0; i < a.persons.size(); ++i) {
    EXPECT_EQ(a.persons[i].first_name, b.persons[i].first_name);
    EXPECT_EQ(a.persons[i].creation_date, b.persons[i].creation_date);
  }
  for (size_t i = 0; i < a.posts.size(); ++i) {
    EXPECT_EQ(a.posts[i].creation_date, b.posts[i].creation_date);
    EXPECT_EQ(a.posts[i].content, b.posts[i].content);
  }
}

TEST_F(DatagenFixture, DifferentSeedsDiffer) {
  GeneratedData other = Generate(SmallConfig(/*seed=*/1234));
  // Same sizes are possible, identical contents are not.
  bool any_difference =
      other.network.posts.size() != data().network.posts.size();
  if (!any_difference) {
    for (size_t i = 0; i < other.network.persons.size(); ++i) {
      if (other.network.persons[i].first_name !=
          data().network.persons[i].first_name) {
        any_difference = true;
        break;
      }
    }
  }
  EXPECT_TRUE(any_difference);
}

TEST_F(DatagenFixture, ReferentialIntegrity) {
  const SocialNetwork& net = data().network;
  std::unordered_set<core::Id> persons, forums, posts, comments, tags, places;
  for (const auto& p : net.persons) persons.insert(p.id);
  for (const auto& f : net.forums) forums.insert(f.id);
  for (const auto& p : net.posts) posts.insert(p.id);
  for (const auto& c : net.comments) comments.insert(c.id);
  for (const auto& t : net.tags) tags.insert(t.id);
  for (const auto& p : net.places) places.insert(p.id);

  for (const auto& k : net.knows) {
    EXPECT_TRUE(persons.contains(k.person1));
    EXPECT_TRUE(persons.contains(k.person2));
    EXPECT_NE(k.person1, k.person2);
  }
  for (const auto& f : net.forums) {
    EXPECT_TRUE(persons.contains(f.moderator));
    for (core::Id t : f.tags) EXPECT_TRUE(tags.contains(t));
  }
  for (const auto& m : net.memberships) {
    EXPECT_TRUE(forums.contains(m.forum));
    EXPECT_TRUE(persons.contains(m.person));
  }
  for (const auto& p : net.posts) {
    EXPECT_TRUE(persons.contains(p.creator));
    EXPECT_TRUE(forums.contains(p.forum));
    EXPECT_TRUE(places.contains(p.country));
    for (core::Id t : p.tags) EXPECT_TRUE(tags.contains(t));
  }
  for (const auto& c : net.comments) {
    EXPECT_TRUE(persons.contains(c.creator));
    // Exactly one reply target.
    EXPECT_NE(c.reply_of_post == core::kNoId,
              c.reply_of_comment == core::kNoId);
    if (c.reply_of_post != core::kNoId) {
      EXPECT_TRUE(posts.contains(c.reply_of_post));
    } else {
      EXPECT_TRUE(comments.contains(c.reply_of_comment));
    }
  }
  for (const auto& l : net.likes) {
    EXPECT_TRUE(persons.contains(l.person));
    EXPECT_TRUE(l.is_post ? posts.contains(l.message)
                          : comments.contains(l.message));
  }
}

TEST_F(DatagenFixture, PostsHaveContentXorImage) {
  for (const auto& p : data().network.posts) {
    EXPECT_NE(p.content.empty(), p.image_file.empty()) << "post " << p.id;
    if (!p.content.empty()) {
      EXPECT_EQ(static_cast<int32_t>(p.content.size()), p.length);
    } else {
      EXPECT_EQ(p.length, 0);
    }
  }
}

TEST_F(DatagenFixture, CommentLengthsMatchContent) {
  for (const auto& c : data().network.comments) {
    EXPECT_FALSE(c.content.empty());
    EXPECT_EQ(static_cast<int32_t>(c.content.size()), c.length);
  }
}

TEST_F(DatagenFixture, TemporalOrdering) {
  const SocialNetwork& net = data().network;
  std::unordered_map<core::Id, core::DateTime> person_created, forum_created,
      post_created, comment_created;
  for (const auto& p : net.persons) person_created[p.id] = p.creation_date;
  for (const auto& f : net.forums) forum_created[f.id] = f.creation_date;
  for (const auto& p : net.posts) post_created[p.id] = p.creation_date;
  for (const auto& c : net.comments) comment_created[c.id] = c.creation_date;

  for (const auto& k : net.knows) {
    EXPECT_GE(k.creation_date, person_created[k.person1]);
    EXPECT_GE(k.creation_date, person_created[k.person2]);
  }
  for (const auto& f : net.forums) {
    EXPECT_GE(f.creation_date, person_created[f.moderator]);
  }
  for (const auto& m : net.memberships) {
    EXPECT_GE(m.join_date, forum_created[m.forum]);
    EXPECT_GE(m.join_date, person_created[m.person]);
  }
  for (const auto& p : net.posts) {
    EXPECT_GE(p.creation_date, person_created[p.creator]);
    EXPECT_GE(p.creation_date, forum_created[p.forum]);
  }
  for (const auto& c : net.comments) {
    EXPECT_GE(c.creation_date, person_created[c.creator]);
    if (c.reply_of_post != core::kNoId) {
      EXPECT_GT(c.creation_date, post_created[c.reply_of_post]);
    } else {
      EXPECT_GT(c.creation_date, comment_created[c.reply_of_comment]);
    }
  }
  for (const auto& l : net.likes) {
    EXPECT_GT(l.creation_date,
              l.is_post ? post_created[l.message] : comment_created[l.message]);
    EXPECT_GE(l.creation_date, person_created[l.person]);
  }
}

TEST_F(DatagenFixture, MessageIdsAreCreationOrdered) {
  // Ids are assigned in creation-date order (CP-3.2 dimensional clustering).
  const SocialNetwork& net = data().network;
  for (size_t i = 1; i < net.posts.size(); ++i) {
    EXPECT_LE(net.posts[i - 1].creation_date, net.posts[i].creation_date);
    EXPECT_LT(net.posts[i - 1].id, net.posts[i].id);
  }
  for (size_t i = 1; i < net.comments.size(); ++i) {
    EXPECT_LE(net.comments[i - 1].creation_date,
              net.comments[i].creation_date);
  }
}

TEST_F(DatagenFixture, BulkAndUpdatesSplitByTime) {
  const core::DateTime split = data().split_time;
  const SocialNetwork& net = data().network;
  for (const auto& p : net.persons) EXPECT_LT(p.creation_date, split);
  for (const auto& k : net.knows) EXPECT_LT(k.creation_date, split);
  for (const auto& p : net.posts) EXPECT_LT(p.creation_date, split);
  for (const auto& c : net.comments) EXPECT_LT(c.creation_date, split);
  for (const auto& l : net.likes) EXPECT_LT(l.creation_date, split);
  for (const auto& m : net.memberships) EXPECT_LT(m.join_date, split);

  EXPECT_FALSE(data().updates.empty());
  core::DateTime previous = 0;
  for (const UpdateEvent& e : data().updates) {
    EXPECT_GE(e.timestamp, split);
    EXPECT_GE(e.timestamp, previous);  // sorted
    EXPECT_LE(e.dependency, e.timestamp);
    previous = e.timestamp;
  }
}

TEST_F(DatagenFixture, UpdateStreamCarriesRoughlyTenPercent) {
  // The update stream holds the last 10 % of simulated time; activity is
  // roughly uniform, so expect 4–25 % of all messages there.
  size_t update_messages = 0;
  for (const UpdateEvent& e : data().updates) {
    if (e.kind == UpdateKind::kAddPost || e.kind == UpdateKind::kAddComment) {
      ++update_messages;
    }
  }
  size_t total =
      data().total_posts + data().total_comments;
  double fraction = static_cast<double>(update_messages) /
                    static_cast<double>(total);
  EXPECT_GT(fraction, 0.05);
  EXPECT_LT(fraction, 0.18);
}

TEST_F(DatagenFixture, KnowsGraphIsHomophilous) {
  DatasetStatistics s = ComputeStatistics(data().network);
  // Correlated dimensions must beat random pairing by a clear margin
  // (spec §2.3.3.2 homophily requirement).
  EXPECT_GT(s.frac_same_country, s.random_same_country * 1.5);
  EXPECT_GT(s.frac_common_interest, s.random_common_interest * 1.5);
  EXPECT_GT(s.frac_same_university, s.random_same_university * 2.0);
}

TEST_F(DatagenFixture, DegreeDistributionHasHeavyTail) {
  DatasetStatistics s = ComputeStatistics(data().network);
  EXPECT_GT(s.avg_degree, 2.0);
  EXPECT_GT(s.max_degree, static_cast<uint32_t>(3 * s.avg_degree));
}

TEST_F(DatagenFixture, ActivityIsTimeCorrelated) {
  DatasetStatistics s = ComputeStatistics(data().network);
  ASSERT_FALSE(s.posts_per_day.empty());
  // Flashmob events concentrate posts: the busiest day must clearly exceed
  // the median day.
  std::vector<size_t> daily;
  for (const auto& [day, count] : s.posts_per_day) daily.push_back(count);
  std::sort(daily.begin(), daily.end());
  size_t median = daily[daily.size() / 2];
  size_t peak = daily.back();
  EXPECT_GE(peak, 3 * std::max<size_t>(median, 1));
}

TEST(MeanDegreeTest, GrowsSublinearly) {
  double d1k = MeanDegreeForNetworkSize(1000);
  double d10k = MeanDegreeForNetworkSize(10'000);
  double d100k = MeanDegreeForNetworkSize(100'000);
  EXPECT_GT(d10k, d1k);
  EXPECT_GT(d100k, d10k);
  EXPECT_LT(d100k / d1k, 100.0 / 2);  // clearly sublinear in n
}

TEST(DatagenScalingTest, VolumesScaleWithPersons) {
  DatagenConfig small = SmallConfig();
  small.num_persons = 150;
  DatagenConfig big = SmallConfig();
  big.num_persons = 600;
  GeneratedData a = Generate(small);
  GeneratedData b = Generate(big);
  EXPECT_GT(b.total_posts, a.total_posts * 2);
  EXPECT_GT(b.total_knows, a.total_knows * 2);
  // Average degree also grows (Facebook densification).
  double deg_a = 2.0 * static_cast<double>(a.total_knows) / 150.0;
  double deg_b = 2.0 * static_cast<double>(b.total_knows) / 600.0;
  EXPECT_GT(deg_b, deg_a);
}

TEST(DatagenActivityScaleTest, ScalesMessageVolume) {
  DatagenConfig lo = SmallConfig();
  lo.activity_scale = 0.25;
  DatagenConfig hi = SmallConfig();
  hi.activity_scale = 1.0;
  GeneratedData a = Generate(lo);
  GeneratedData b = Generate(hi);
  EXPECT_GT(b.total_posts, a.total_posts * 2);
}

TEST(DatagenUpdateFractionTest, ZeroishFractionPutsEverythingInBulk) {
  DatagenConfig cfg = SmallConfig();
  cfg.update_fraction = 1e-9;
  GeneratedData data = Generate(cfg);
  EXPECT_TRUE(data.updates.empty());
  EXPECT_EQ(data.network.persons.size(), data.total_persons);
}

}  // namespace
}  // namespace snb::datagen

// Tests for the lock-order deadlock analyzer (src/analysis/lock_graph.h).
//
// The analyzer's whole point is reporting *potential* deadlocks without the
// fatal interleaving ever executing, so the positive tests construct
// A→B / B→A inversions that run to completion — single-threaded or with the
// two threads serialized — and assert the report fires anyway. Abort-mode
// behaviour (print + _Exit(DeadlockExitCode())) is asserted through forked
// children, the same pattern failpoint_test uses for crash mode. The
// negative tests run the repo's real concurrency machinery (thread pool
// fan-out, morsel execution, GraphHandle swaps under readers) and assert
// zero reports — the in-binary shadow of the SNB_DEADLOCK_DETECT=ON ctest
// run that scripts/check.sh uses as the full no-false-positive gate.
//
// Everything is compiled out without SNB_DEADLOCK_DETECT; the suite then
// only covers the always-on primitives (CondVar::WaitFor semantics).

#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "engine/morsel.h"
#include "util/latch.h"
#include "util/mutex.h"
#include "util/thread_pool.h"

#ifdef SNB_DEADLOCK_DETECT
#include "analysis/lock_graph.h"
#endif

namespace snb {
namespace {

using util::CondVar;
using util::Mutex;
using util::MutexLock;

TEST(CondVarTest, WaitForTimesOutWhenNeverNotified) {
  Mutex mu{SNB_LOCK_SITE("test.waitfor_timeout.mu")};
  CondVar cv;
  MutexLock lock(mu);
  EXPECT_FALSE(cv.WaitFor(mu, std::chrono::milliseconds(5)));
}

TEST(CondVarTest, WaitForReturnsTrueOnNotifyAndCallerRechecksPredicate) {
  Mutex mu{SNB_LOCK_SITE("test.waitfor_notify.mu")};
  CondVar cv;
  bool ready = false;
  std::thread notifier([&] {
    MutexLock lock(mu);
    ready = true;
    cv.NotifyAll();
  });
  {
    MutexLock lock(mu);
    // The contract: loop until the predicate holds, re-checking after
    // every return — spurious wakeups and timeouts are both absorbed.
    while (!ready) {
      cv.WaitFor(mu, std::chrono::milliseconds(50));
    }
    EXPECT_TRUE(ready);
  }
  notifier.join();
}

#ifdef SNB_DEADLOCK_DETECT

class DeadlockDetectTest : public ::testing::Test {
 protected:
  void SetUp() override {
    analysis::ResetForTest();
    analysis::SetReportMode(analysis::ReportMode::kCount);
  }
  void TearDown() override {
    analysis::SetReportMode(analysis::ReportMode::kAbort);
    analysis::ResetForTest();
  }
};

TEST_F(DeadlockDetectTest, ReportsLockOrderCycleWithoutDeadlocking) {
  Mutex a{SNB_LOCK_SITE("test.cycle.a")};
  Mutex b{SNB_LOCK_SITE("test.cycle.b")};
  {
    MutexLock la(a);
    MutexLock lb(b);  // records a → b
  }
  EXPECT_EQ(analysis::ReportCount(), 0u);
  {
    MutexLock lb(b);
    MutexLock la(a);  // would record b → a: closes the cycle
  }
  EXPECT_EQ(analysis::ReportCount(), 1u);
}

TEST_F(DeadlockDetectTest, ReportsCycleAcrossTwoSerializedThreads) {
  Mutex a{SNB_LOCK_SITE("test.cycle2.a")};
  Mutex b{SNB_LOCK_SITE("test.cycle2.b")};
  // The threads never overlap (t1 joins before t2 starts), so this run
  // cannot deadlock — the analyzer must still see the inverted order.
  std::thread t1([&] {
    MutexLock la(a);
    MutexLock lb(b);
  });
  t1.join();
  std::thread t2([&] {
    MutexLock lb(b);
    MutexLock la(a);
  });
  t2.join();
  EXPECT_EQ(analysis::ReportCount(), 1u);
}

TEST_F(DeadlockDetectTest, ReportsLongerCycleThroughIntermediateSite) {
  Mutex a{SNB_LOCK_SITE("test.cycle3.a")};
  Mutex b{SNB_LOCK_SITE("test.cycle3.b")};
  Mutex c{SNB_LOCK_SITE("test.cycle3.c")};
  {
    MutexLock la(a);
    MutexLock lb(b);  // a → b
  }
  {
    MutexLock lb(b);
    MutexLock lc(c);  // b → c
  }
  EXPECT_EQ(analysis::ReportCount(), 0u);
  {
    MutexLock lc(c);
    MutexLock la(a);  // c → a closes a → b → c → a
  }
  EXPECT_EQ(analysis::ReportCount(), 1u);
}

TEST_F(DeadlockDetectTest, ConsistentOrderAcrossManyThreadsIsSilent) {
  Mutex a{SNB_LOCK_SITE("test.order.a")};
  Mutex b{SNB_LOCK_SITE("test.order.b")};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 100; ++i) {
        MutexLock la(a);
        MutexLock lb(b);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(analysis::ReportCount(), 0u);
}

TEST_F(DeadlockDetectTest, SameSiteDifferentInstancesMayNest) {
  // Per-element locks born at one site legitimately nest (the graph keys
  // on sites, so this must not self-loop into a report).
  static const analysis::LockSiteInfo* site =
      SNB_LOCK_SITE("test.same_site.mu");
  Mutex m1{site}, m2{site};
  MutexLock l1(m1);
  MutexLock l2(m2);
  EXPECT_EQ(analysis::ReportCount(), 0u);
}

TEST_F(DeadlockDetectTest, TryLockRecordsNoEdgeButOrdersLaterLocks) {
  Mutex a{SNB_LOCK_SITE("test.trylock.a")};
  Mutex b{SNB_LOCK_SITE("test.trylock.b")};
  {
    MutexLock la(a);
    ASSERT_TRUE(b.TryLock());  // no a → b edge (try-lock cannot block)
    b.Unlock();
  }
  {
    MutexLock lb(b);
    MutexLock la(a);  // b → a — no cycle, the try-lock left no reverse edge
  }
  EXPECT_EQ(analysis::ReportCount(), 0u);
  {
    ASSERT_TRUE(a.TryLock());
    MutexLock lb(b);  // a held (via try-lock) → b: NOW records a → b
    a.Unlock();
  }
  EXPECT_EQ(analysis::ReportCount(), 1u);  // cycle with the earlier b → a
}

TEST_F(DeadlockDetectTest, LevelViolationReported) {
  Mutex low{SNB_LOCK_LEVEL("test.level.low", 10)};
  Mutex high{SNB_LOCK_LEVEL("test.level.high", 20)};
  {
    MutexLock l1(low);
    MutexLock l2(high);  // upward: fine
  }
  EXPECT_EQ(analysis::ReportCount(), 0u);
  {
    MutexLock l2(high);
    MutexLock l1(low);  // downward: level violation (and a cycle) — both
                        // fire, one report each
  }
  EXPECT_GE(analysis::ReportCount(), 1u);
}

TEST_F(DeadlockDetectTest, CondVarWaitWhileHoldingUnrelatedMutexReported) {
  Mutex held{SNB_LOCK_SITE("test.bwl.held")};
  Mutex waited{SNB_LOCK_SITE("test.bwl.waited")};
  CondVar cv;
  MutexLock lh(held);
  MutexLock lw(waited);
  cv.WaitFor(waited, std::chrono::milliseconds(1));  // audit fires
  EXPECT_EQ(analysis::ReportCount(), 1u);
}

TEST_F(DeadlockDetectTest, CondVarWaitAllowedByDeclaredLevels) {
  // The scheduler → pool escape hatch: holding a strictly lower level
  // across a wait on a higher level is a declared, audited ordering.
  Mutex held{SNB_LOCK_LEVEL("test.bwl_level.held", 1)};
  Mutex waited{SNB_LOCK_LEVEL("test.bwl_level.waited", 2)};
  CondVar cv;
  MutexLock lh(held);
  MutexLock lw(waited);
  cv.WaitFor(waited, std::chrono::milliseconds(1));
  EXPECT_EQ(analysis::ReportCount(), 0u);
}

TEST_F(DeadlockDetectTest, CondVarWaitAllowedByPairAllowlist) {
  Mutex held{SNB_LOCK_SITE("test.bwl_allow.held")};
  Mutex waited{SNB_LOCK_SITE("test.bwl_allow.waited")};
  analysis::AllowWaitWhileHolding("test.bwl_allow.held",
                                  "test.bwl_allow.waited");
  CondVar cv;
  MutexLock lh(held);
  MutexLock lw(waited);
  cv.WaitFor(waited, std::chrono::milliseconds(1));
  EXPECT_EQ(analysis::ReportCount(), 0u);
}

TEST_F(DeadlockDetectTest, HeldStackTracksAcquisitionAndRelease) {
  Mutex a{SNB_LOCK_SITE("test.stack.a")};
  EXPECT_EQ(analysis::HeldLockCountForTest(), 0u);
  {
    MutexLock la(a);
    EXPECT_EQ(analysis::HeldLockCountForTest(), 1u);
  }
  EXPECT_EQ(analysis::HeldLockCountForTest(), 0u);
}

// ---------------------------------------------------------------------------
// Abort-mode reports, asserted through forked children (the production
// default: a report kills the process with the marker exit code).
// ---------------------------------------------------------------------------

/// Forks, runs `child` (which should end with the analyzer killing the
/// process), and expects the deadlock exit code plus `expect_stderr` in the
/// child's captured stderr.
template <typename Fn>
void ExpectChildReports(const char* expect_stderr, Fn child) {
  int fds[2];
  ASSERT_EQ(pipe(fds), 0);
  pid_t pid = fork();
  ASSERT_GE(pid, 0) << "fork failed";
  if (pid == 0) {
    close(fds[0]);
    dup2(fds[1], 2);  // capture the report
    close(fds[1]);
    analysis::SetReportMode(analysis::ReportMode::kAbort);
    child();
    _exit(1);  // unreachable if the analyzer fired — fails the parent
  }
  close(fds[1]);
  std::string err;
  char buf[4096];
  ssize_t n;
  while ((n = read(fds[0], buf, sizeof(buf))) > 0) {
    err.append(buf, static_cast<size_t>(n));
  }
  close(fds[0]);
  int wstatus = 0;
  ASSERT_EQ(waitpid(pid, &wstatus, 0), pid);
  ASSERT_TRUE(WIFEXITED(wstatus)) << err;
  EXPECT_EQ(WEXITSTATUS(wstatus), analysis::DeadlockExitCode()) << err;
  EXPECT_NE(err.find(expect_stderr), std::string::npos) << err;
}

TEST_F(DeadlockDetectTest, AbortModeKillsProcessOnCycleAcrossTwoThreads) {
  ExpectChildReports("lock-order cycle", [] {
    Mutex a{SNB_LOCK_SITE("test.fork_cycle.a")};
    Mutex b{SNB_LOCK_SITE("test.fork_cycle.b")};
    std::thread t1([&] {
      MutexLock la(a);
      MutexLock lb(b);
    });
    t1.join();
    // Second thread inverts the order; the report fires on edge insertion,
    // before this thread could ever block on `a`.
    std::thread t2([&] {
      MutexLock lb(b);
      MutexLock la(a);
    });
    t2.join();
  });
}

TEST_F(DeadlockDetectTest, AbortModeKillsProcessOnRecursiveAcquisition) {
  ExpectChildReports("self-deadlock", [] {
    Mutex a{SNB_LOCK_SITE("test.fork_recursive.a")};
    a.Lock();
    a.Lock();  // reported (and aborted) before the hang
  });
}

TEST_F(DeadlockDetectTest, AbortModeKillsProcessOnBlockingWhileLocked) {
  ExpectChildReports("blocking-while-locked", [] {
    Mutex held{SNB_LOCK_SITE("test.fork_bwl.held")};
    Mutex waited{SNB_LOCK_SITE("test.fork_bwl.waited")};
    CondVar cv;
    MutexLock lh(held);
    MutexLock lw(waited);
    cv.WaitFor(waited, std::chrono::milliseconds(1));
  });
}

// ---------------------------------------------------------------------------
// No-false-positive runs over the real concurrency machinery. The full
// gate is `ctest` in a SNB_DEADLOCK_DETECT=ON build (scripts/check.sh);
// these in-binary versions pin the three riskiest patterns directly.
// ---------------------------------------------------------------------------

TEST_F(DeadlockDetectTest, ThreadPoolFanOutIsSilent) {
  util::ThreadPool pool(4);
  std::atomic<int> sum{0};
  pool.ParallelFor(1000, [&](size_t i) {
    sum.fetch_add(static_cast<int>(i % 7), std::memory_order_relaxed);
  });
  // Nested submits from workers (the scheduler's admission pattern).
  for (int i = 0; i < 16; ++i) {
    pool.Submit([&pool, &sum] {
      pool.Submit([&sum] { sum.fetch_add(1, std::memory_order_relaxed); });
    });
  }
  pool.Wait();
  EXPECT_EQ(analysis::ReportCount(), 0u);
}

TEST_F(DeadlockDetectTest, MorselExecutionOnSharedPoolIsSilent) {
  util::ThreadPool pool(4);
  std::vector<int> per_slot(4, 0);
  engine::internal::RunMorsels(pool, 64, 4, [&](size_t, size_t slot) {
    ++per_slot[slot];
  });
  EXPECT_EQ(analysis::ReportCount(), 0u);
}

TEST_F(DeadlockDetectTest, BlockingCounterFanInIsSilent) {
  util::ThreadPool pool(4);
  util::BlockingCounter done(8);
  for (int i = 0; i < 8; ++i) {
    pool.Submit([&done] { done.DecrementCount(); });
  }
  done.Wait();
  pool.Wait();
  EXPECT_EQ(analysis::ReportCount(), 0u);
}

#endif  // SNB_DEADLOCK_DETECT

}  // namespace
}  // namespace snb

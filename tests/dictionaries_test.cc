// Tests for the property-dictionary model (spec §2.3.3.1): the D/R/F
// structure, per-country ranking functions, correlation resources, and the
// static entities built from the resource data.

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "datagen/dictionaries.h"
#include "util/rng.h"

namespace snb::datagen {
namespace {

class DictionariesFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { dicts_ = new Dictionaries(42); }
  static void TearDownTestSuite() { delete dicts_; }
  static const Dictionaries& dicts() { return *dicts_; }

 private:
  static Dictionaries* dicts_;
};

Dictionaries* DictionariesFixture::dicts_ = nullptr;

TEST_F(DictionariesFixture, StaticEntitiesWellFormed) {
  EXPECT_GT(dicts().num_countries(), 20u);
  EXPECT_GT(dicts().places().size(), dicts().num_countries());
  EXPECT_GT(dicts().tags().size(), 100u);
  EXPECT_GT(dicts().tag_classes().size(), 10u);
  EXPECT_GT(dicts().organisations().size(), 100u);

  // Unique ids within each entity type.
  std::set<core::Id> ids;
  for (const core::Place& p : dicts().places()) {
    EXPECT_TRUE(ids.insert(p.id).second);
    EXPECT_FALSE(p.name.empty());
    EXPECT_FALSE(p.url.empty());
  }
}

TEST_F(DictionariesFixture, PlaceHierarchyIsThreeLevels) {
  std::map<core::Id, const core::Place*> by_id;
  for (const core::Place& p : dicts().places()) by_id[p.id] = &p;
  for (const core::Place& p : dicts().places()) {
    switch (p.type) {
      case core::PlaceType::kContinent:
        EXPECT_EQ(p.part_of, core::kNoId);
        break;
      case core::PlaceType::kCountry:
        ASSERT_NE(p.part_of, core::kNoId);
        EXPECT_EQ(by_id[p.part_of]->type, core::PlaceType::kContinent);
        break;
      case core::PlaceType::kCity:
        ASSERT_NE(p.part_of, core::kNoId);
        EXPECT_EQ(by_id[p.part_of]->type, core::PlaceType::kCountry);
        break;
    }
  }
}

TEST_F(DictionariesFixture, EveryCountryHasCitiesOrgsAndLanguages) {
  for (size_t c = 0; c < dicts().num_countries(); ++c) {
    EXPECT_FALSE(dicts().CitiesOfCountry(c).empty()) << c;
    EXPECT_FALSE(dicts().UniversitiesOfCountry(c).empty()) << c;
    EXPECT_FALSE(dicts().CompaniesOfCountry(c).empty()) << c;
    EXPECT_FALSE(dicts().LanguagesOfCountry(c).empty()) << c;
    for (size_t city : dicts().CitiesOfCountry(c)) {
      EXPECT_EQ(dicts().CountryOfCity(city), c);
    }
  }
}

TEST_F(DictionariesFixture, TagClassHierarchyIsRootedAndAcyclic) {
  size_t roots = 0;
  for (const core::TagClass& tc : dicts().tag_classes()) {
    if (tc.parent == core::kNoId) ++roots;
  }
  EXPECT_EQ(roots, 1u);
  // Descendant closure of the root covers all classes (acyclic + connected).
  std::vector<size_t> closure = dicts().TagClassDescendants(0);
  EXPECT_EQ(closure.size(), dicts().tag_classes().size());
  std::set<size_t> unique(closure.begin(), closure.end());
  EXPECT_EQ(unique.size(), closure.size());
}

TEST_F(DictionariesFixture, SamplersAreDeterministicPerStream) {
  util::Rng a(42, 7, 1);
  util::Rng b(42, 7, 1);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(dicts().SampleCountry(a), dicts().SampleCountry(b));
  }
}

TEST_F(DictionariesFixture, CountrySamplingFollowsPopulation) {
  util::Rng rng(42, 8);
  std::map<size_t, int> counts;
  for (int i = 0; i < 50000; ++i) ++counts[dicts().SampleCountry(rng)];
  // China (index 0) and India (1) dominate any small country.
  size_t small_country = dicts().num_countries() - 1;  // New Zealand
  EXPECT_GT(counts[0], counts[small_country] * 20);
  EXPECT_GT(counts[1], counts[small_country] * 20);
}

TEST_F(DictionariesFixture, NameRankingIsCountryParameterized) {
  // The R function gives different countries different name popularity
  // heads: the most common female name must differ for at least one pair
  // of countries (with overwhelming probability under distinct
  // permutations).
  auto top_name = [&](size_t country) {
    util::Rng rng(42, 9, country);
    std::map<std::string, int> counts;
    for (int i = 0; i < 3000; ++i) {
      ++counts[dicts().SampleFirstName(rng, country, true)];
    }
    std::string best;
    int best_count = 0;
    for (const auto& [name, count] : counts) {
      if (count > best_count) {
        best = name;
        best_count = count;
      }
    }
    return best;
  };
  std::set<std::string> tops;
  for (size_t c = 0; c < 8; ++c) tops.insert(top_name(c));
  EXPECT_GT(tops.size(), 1u);
}

TEST_F(DictionariesFixture, InterestTagsAreZipfSkewed) {
  util::Rng rng(42, 10);
  std::map<size_t, int> counts;
  const int kSamples = 30000;
  for (int i = 0; i < kSamples; ++i) {
    ++counts[dicts().SampleInterestTag(rng, 0)];
  }
  int max_count = 0;
  for (const auto& [tag, count] : counts) max_count = std::max(max_count, count);
  // The head tag of a Zipf(1.0) over ~200 tags takes >> uniform share.
  EXPECT_GT(max_count, 5 * kSamples / static_cast<int>(dicts().tags().size()));
}

TEST_F(DictionariesFixture, CorrelatedTagsPreferSameClass) {
  util::Rng rng(42, 11);
  size_t same_class = 0, total = 0;
  for (size_t t = 0; t < dicts().tags().size(); t += 7) {
    for (size_t trial = 0; trial < 20; ++trial) {
      for (size_t other : dicts().SampleCorrelatedTags(rng, t, 2)) {
        ++total;
        if (dicts().tags()[other].tag_class == dicts().tags()[t].tag_class) {
          ++same_class;
        }
        EXPECT_NE(other, t);
      }
    }
  }
  ASSERT_GT(total, 0u);
  EXPECT_GT(static_cast<double>(same_class) / static_cast<double>(total),
            0.5);
}

TEST_F(DictionariesFixture, MakeTextHitsExactLength) {
  util::Rng rng(42, 12);
  for (int length : {10, 40, 80, 160, 500, 2000}) {
    std::string text = dicts().MakeText(rng, 3, length);
    EXPECT_EQ(static_cast<int>(text.size()), length);
    EXPECT_NE(text.back(), ' ');
  }
}

TEST_F(DictionariesFixture, IpAddressesAreCountryBlocked) {
  util::Rng rng(42, 13);
  std::string ip1 = dicts().SampleIp(rng, 3);
  std::string ip2 = dicts().SampleIp(rng, 3);
  // Same /16 block per country.
  EXPECT_EQ(ip1.substr(0, ip1.find('.', ip1.find('.') + 1)),
            ip2.substr(0, ip2.find('.', ip2.find('.') + 1)));
  // Four octets.
  EXPECT_EQ(std::count(ip1.begin(), ip1.end(), '.'), 3);
}

TEST_F(DictionariesFixture, EmailsEmbedNameAndProvider) {
  util::Rng rng(42, 14);
  std::string email = dicts().MakeEmail(rng, "Mary Jane", "O Neil", 2);
  EXPECT_NE(email.find("mary_jane.o_neil2@"), std::string::npos);
  EXPECT_NE(email.find('@'), std::string::npos);
}

TEST(DictionariesSeedTest, DifferentSeedsPermuteDifferently) {
  Dictionaries a(1);
  Dictionaries b(2);
  util::Rng ra(9), rb(9);
  int differences = 0;
  for (int i = 0; i < 40; ++i) {
    if (a.SampleFirstName(ra, 0, false) != b.SampleFirstName(rb, 0, false)) {
      ++differences;
    }
  }
  EXPECT_GT(differences, 0);
}

}  // namespace
}  // namespace snb::datagen

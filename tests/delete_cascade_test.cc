// Deep-delete cascade semantics (DEL 1–8, Interactive v2 dialect):
//
//   - a cascade kills the whole downstream subtree (forums moderated by the
//     person, their messages, every reply under a dead message, incident
//     edges) and nothing else, and the tombstoned graph passes the
//     tombstone-* validator invariants;
//   - a delete-heavy refresh publishes a graph whose BI 1/6/12 results are
//     bit-identical to loading the post-delete dataset from scratch, under
//     1/2/4/8-thread pools, and identical whether the published snapshot is
//     compacted or still carries tombstones (scan-path bit-identity);
//   - a torn cascade (fail-point mid-stage) returns non-OK, leaves the
//     tombstone epoch unbumped, and the torn graph is *detectable* — the
//     new validator invariants name the damage;
//   - the refresh driver treats a torn cascade as transient: it discards
//     the shadow, retries, and converges to the reference result;
//   - readers holding a pre-cascade snapshot observe zero cascade effects
//     while the refresh runs; the post-swap snapshot shows the complete
//     cascade (run under TSan in CI);
//   - deletes are idempotent: re-applying an already-applied delete (the
//     recovery-replay and resume_after_day case) is a no-op before and
//     after compaction.

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bi/bi.h"
#include "bi/parallel.h"
#include "core/date_time.h"
#include "datagen/datagen.h"
#include "datagen/delete_stream.h"
#include "datagen/serializer.h"
#include "driver/refresh.h"
#include "interactive/updates.h"
#include "storage/export.h"
#include "storage/graph.h"
#include "storage/loader.h"
#include "storage/recovery.h"
#include "util/check.h"
#include "util/failpoint.h"
#include "util/thread_pool.h"
#include "validate/validator.h"

namespace snb {
namespace {

using driver::GraphHandle;
using driver::RefreshConfig;
using driver::RunBatchedRefresh;
using storage::Graph;

struct SharedData {
  core::SocialNetwork network;
  std::vector<datagen::UpdateEvent> deletes;  // the delete-only stream
  core::Date first_day = 0;
};

const SharedData& Fixture() {
  static SharedData* data = [] {
    datagen::DatagenConfig cfg;
    cfg.num_persons = 120;
    cfg.activity_scale = 0.3;
    auto* d = new SharedData();
    d->network = datagen::Generate(cfg).network;
    datagen::DeleteStreamOptions options;
    options.seed = 11;
    options.days = 6;
    // Heavier than the tool defaults: this suite is *about* deletes.
    options.person_fraction = 0.05;
    options.forum_fraction = 0.05;
    options.post_fraction = 0.03;
    options.comment_fraction = 0.03;
    options.like_fraction = 0.03;
    options.membership_fraction = 0.03;
    options.knows_fraction = 0.03;
    d->deletes = datagen::DeriveDeleteStream(d->network, options);
    SNB_CHECK(!d->deletes.empty());
    d->first_day = core::DateFromDateTime(d->deletes.front().timestamp);
    return d;
  }();
  return *data;
}

core::SocialNetwork CopyNetwork(const core::SocialNetwork& net) {
  return net;
}

struct BiProbeResults {
  std::vector<bi::Bi1Row> bi1;
  std::vector<bi::Bi6Row> bi6;
  std::vector<bi::Bi12Row> bi12;

  bool operator==(const BiProbeResults&) const = default;
};

bi::Bi1Params Probe1() { return {core::DateFromCivil(2030, 1, 1)}; }

bi::Bi6Params Probe6() {
  bi::Bi6Params p;
  p.tag = Fixture().network.tags.front().name;
  return p;
}

bi::Bi12Params Probe12() {
  bi::Bi12Params p;
  p.date = core::DateFromCivil(2000, 1, 1);
  p.like_threshold = 0;
  return p;
}

BiProbeResults RunProbes(const Graph& graph) {
  return {bi::RunBi1(graph, Probe1()), bi::RunBi6(graph, Probe6()),
          bi::RunBi12(graph, Probe12())};
}

BiProbeResults RunProbes(const Graph& graph, util::ThreadPool& pool) {
  return {bi::parallel::RunBi1(graph, Probe1(), pool),
          bi::parallel::RunBi6(graph, Probe6(), pool),
          bi::parallel::RunBi12(graph, Probe12(), pool)};
}

std::string FreshDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "/snb_delcas_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

/// Applies every fixture delete to a private copy of the fixture network.
std::unique_ptr<Graph> TombstonedGraph() {
  auto graph = std::make_unique<Graph>(CopyNetwork(Fixture().network));
  for (const datagen::UpdateEvent& event : Fixture().deletes) {
    SNB_CHECK(interactive::ApplyUpdate(*graph, event).ok());
  }
  return graph;
}

class DeleteCascadeTest : public ::testing::Test {
 protected:
  void TearDown() override { util::failpoint::DisarmAll(); }
};

// ---------------------------------------------------------------------------
// Cascade semantics on the graph itself.
// ---------------------------------------------------------------------------

TEST_F(DeleteCascadeTest, CascadeKillsWholeSubtreeAndValidatorHolds) {
  std::unique_ptr<Graph> owned = TombstonedGraph();
  Graph& graph = *owned;
  EXPECT_TRUE(graph.HasTombstones());
  EXPECT_GT(graph.TombstoneEpoch(), 0u);
  EXPECT_LT(graph.NumLivePersons(), graph.NumPersons());
  EXPECT_LT(graph.NumLivePosts(), graph.NumPosts());

  // The cascade left no half-dead subtree: every tombstone-* invariant
  // (and every pre-existing one) holds on the *uncompacted* graph.
  validate::ValidationReport report = validate::ValidateGraph(graph);
  EXPECT_TRUE(report.ok()) << report.ToString();
}

TEST_F(DeleteCascadeTest, DeletesAreIdempotentBeforeAndAfterCompaction) {
  std::unique_ptr<Graph> owned = TombstonedGraph();
  Graph& graph = *owned;
  const uint32_t epoch = graph.TombstoneEpoch();
  const size_t live_posts = graph.NumLivePosts();
  const BiProbeResults before = RunProbes(graph);

  // Recovery replay re-runs delete batches against state that may already
  // contain them: every re-applied delete must be a complete no-op.
  for (const datagen::UpdateEvent& event : Fixture().deletes) {
    ASSERT_TRUE(interactive::ApplyUpdate(graph, event).ok());
  }
  EXPECT_EQ(graph.TombstoneEpoch(), epoch);
  EXPECT_EQ(graph.NumLivePosts(), live_posts);
  EXPECT_EQ(RunProbes(graph), before);

  // After compaction the targets are *gone*, not tombstoned — replaying
  // the same deletes must still no-op (the resume_after_day case where a
  // checkpoint already contains the batch).
  Graph compacted(ExportNetwork(graph), graph.CompactionEpoch() + 1);
  EXPECT_FALSE(compacted.HasTombstones());
  const BiProbeResults compact_before = RunProbes(compacted);
  for (const datagen::UpdateEvent& event : Fixture().deletes) {
    ASSERT_TRUE(interactive::ApplyUpdate(compacted, event).ok());
  }
  EXPECT_FALSE(compacted.HasTombstones());
  EXPECT_EQ(RunProbes(compacted), compact_before);
}

// ---------------------------------------------------------------------------
// Recompute oracle: tombstoned reads == compacted reads == from-scratch
// load of the post-delete dataset, across thread-pool widths.
// ---------------------------------------------------------------------------

TEST_F(DeleteCascadeTest, BiResultsMatchFromScratchLoadAcrossPools) {
  std::unique_ptr<Graph> owned = TombstonedGraph();
  Graph& tombstoned = *owned;

  // Oracle: serialize the live subgraph and load it back from scratch —
  // the post-delete dataset as a bulk load that never saw a delete.
  std::string dir = FreshDir("oracle");
  ASSERT_TRUE(
      datagen::WriteCsvBasic(ExportNetwork(tombstoned), dir).ok());
  auto loaded = storage::LoadCsvBasic(dir);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  Graph oracle(std::move(loaded).value());
  ASSERT_FALSE(oracle.HasTombstones());

  const BiProbeResults expected = RunProbes(oracle);
  EXPECT_EQ(RunProbes(tombstoned), expected)
      << "tombstone-filtered scans diverge from a clean load";

  for (size_t threads : {1u, 2u, 4u, 8u}) {
    util::ThreadPool pool(threads);
    EXPECT_EQ(RunProbes(tombstoned, pool), expected)
        << "tombstoned graph, " << threads << " threads";
    EXPECT_EQ(RunProbes(oracle, pool), expected)
        << "oracle graph, " << threads << " threads";
  }
}

// ---------------------------------------------------------------------------
// Torn cascades: detectable, unbumped epoch, retried as transient.
// ---------------------------------------------------------------------------

TEST_F(DeleteCascadeTest, TornCascadeLeavesDetectableDanglingState) {
  const SharedData& data = Fixture();
  Graph graph(CopyNetwork(data.network));
  // The moderator of forum 0 — guaranteed to dangle that forum when the
  // cascade dies between the person stage and the forum stage.
  const core::Id moderator = data.network.forums.front().moderator;

  util::failpoint::Spec spec;  // error mode
  util::failpoint::Arm("graph.delete.forums", spec);
  util::Status st = graph.DeletePerson(moderator);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(graph.TombstoneEpoch(), 0u) << "torn cascade published an epoch";
  util::failpoint::DisarmAll();

  validate::ValidationReport report = validate::ValidateGraph(graph);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.Has("tombstone-dangling")) << report.ToString();
}

TEST_F(DeleteCascadeTest, TornCascadeLeavesDetectableIndexState) {
  const SharedData& data = Fixture();
  Graph graph(CopyNetwork(data.network));
  // The creator of post 0 has a non-sentinel message-date zone, so dying
  // right before the index stage leaves it uncollapsed.
  const core::Id creator =
      data.network.persons[graph.PostCreator(0)].id;

  util::failpoint::Spec spec;
  util::failpoint::Arm("graph.delete.index", spec);
  util::Status st = graph.DeletePerson(creator);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(graph.TombstoneEpoch(), 0u);
  util::failpoint::DisarmAll();

  validate::ValidationReport report = validate::ValidateGraph(graph);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.Has("tombstone-index-agreement")) << report.ToString();
}

TEST_F(DeleteCascadeTest, RefreshRetriesTornCascadeAsTransient) {
  const SharedData& data = Fixture();
  RefreshConfig config;
  config.batch_days = 2;
  config.retry.initial_backoff_ms = 0.1;

  // Reference: same stream, no fault.
  std::string ref_dir = FreshDir("torn_ref");
  ASSERT_TRUE(
      storage::InitStore(ref_dir, data.network, data.first_day - 1).ok());
  GraphHandle ref_handle(
      std::make_shared<Graph>(CopyNetwork(data.network)));
  auto ref_or = RunBatchedRefresh(ref_dir, ref_handle, data.deletes, config);
  ASSERT_TRUE(ref_or.ok()) << ref_or.status().ToString();
  const BiProbeResults reference = RunProbes(*ref_handle.Current());

  // Fault run: the first cascade to reach the likes stage dies there once.
  // The driver must discard the torn shadow, retry, and converge.
  std::string dir = FreshDir("torn_retry");
  ASSERT_TRUE(
      storage::InitStore(dir, data.network, data.first_day - 1).ok());
  GraphHandle handle(std::make_shared<Graph>(CopyNetwork(data.network)));
  util::failpoint::Spec spec;
  spec.max_fires = 1;
  util::failpoint::Arm("graph.delete.likes", spec);
  auto report_or = RunBatchedRefresh(dir, handle, data.deletes, config);
  ASSERT_TRUE(report_or.ok()) << report_or.status().ToString();
  EXPECT_GE(report_or.value().retries, 1u);
  EXPECT_EQ(RunProbes(*handle.Current()), reference);
}

// ---------------------------------------------------------------------------
// Snapshot stability: pre-cascade readers see zero cascade effects; the
// post-swap snapshot shows the complete cascade.
// ---------------------------------------------------------------------------

TEST_F(DeleteCascadeTest, PreCascadeSnapshotIsStableUnderConcurrentRefresh) {
  const SharedData& data = Fixture();
  RefreshConfig config;
  config.batch_days = 2;

  std::string dir = FreshDir("snapshot");
  ASSERT_TRUE(
      storage::InitStore(dir, data.network, data.first_day - 1).ok());
  GraphHandle handle(std::make_shared<Graph>(CopyNetwork(data.network)));

  std::shared_ptr<const Graph> pre = handle.Current();
  const std::vector<bi::Bi1Row> pre_rows = bi::RunBi1(*pre, Probe1());

  std::atomic<bool> done{false};
  std::atomic<bool> stable{true};
  std::atomic<size_t> reads{0};
  std::thread reader([&] {
    while (!done.load(std::memory_order_acquire)) {
      if (bi::RunBi1(*pre, Probe1()) != pre_rows) {
        stable.store(false, std::memory_order_release);
      }
      ++reads;
    }
  });

  auto report_or = RunBatchedRefresh(dir, handle, data.deletes, config);
  done.store(true, std::memory_order_release);
  reader.join();
  ASSERT_TRUE(report_or.ok()) << report_or.status().ToString();

  EXPECT_GT(reads.load(), 0u);
  EXPECT_TRUE(stable.load())
      << "a pre-cascade snapshot changed while cascades ran";
  EXPECT_FALSE(pre->HasTombstones());
  EXPECT_EQ(pre->TombstoneEpoch(), 0u);
  EXPECT_EQ(bi::RunBi1(*pre, Probe1()), pre_rows);

  // Post-swap: the published snapshot carries the *complete* cascade —
  // compacted, physically smaller, equal to the from-scratch oracle.
  std::shared_ptr<const Graph> post = handle.Current();
  EXPECT_FALSE(post->HasTombstones());
  EXPECT_GE(post->CompactionEpoch(), 1u);
  EXPECT_LT(post->NumPersons(), pre->NumPersons());
  EXPECT_EQ(RunProbes(*post), RunProbes(*TombstonedGraph()));
}

// ---------------------------------------------------------------------------
// Crash-interrupted cascade: recover, resume, nothing double-applied.
// ---------------------------------------------------------------------------

TEST_F(DeleteCascadeTest, ResumeAfterRecoveryIsIdempotentAcrossDeletes) {
  const SharedData& data = Fixture();
  RefreshConfig config;
  config.batch_days = 2;
  config.checkpoint_every_batches = 1;

  std::string dir = FreshDir("resume");
  ASSERT_TRUE(
      storage::InitStore(dir, data.network, data.first_day - 1).ok());
  GraphHandle handle(std::make_shared<Graph>(CopyNetwork(data.network)));
  auto first_or = RunBatchedRefresh(dir, handle, data.deletes, config);
  ASSERT_TRUE(first_or.ok()) << first_or.status().ToString();
  ASSERT_GT(first_or.value().batches_applied, 1u);
  const BiProbeResults reference = RunProbes(*handle.Current());

  // Recovery replays any delete batches newer than the last checkpoint and
  // must land on the same state (validated behind its own gate).
  auto recovered_or = storage::RecoveryManager(dir).Recover();
  ASSERT_TRUE(recovered_or.ok()) << recovered_or.status().ToString();
  EXPECT_EQ(RunProbes(*recovered_or.value().graph), reference);

  // Resuming past the last committed day applies nothing.
  GraphHandle resumed(std::shared_ptr<const Graph>(
      std::move(recovered_or.value().graph)));
  RefreshConfig resume = config;
  resume.resume_after_day = recovered_or.value().last_committed_day;
  auto second_or = RunBatchedRefresh(dir, resumed, data.deletes, resume);
  ASSERT_TRUE(second_or.ok()) << second_or.status().ToString();
  EXPECT_EQ(second_or.value().batches_applied, 0u);
  EXPECT_EQ(second_or.value().events_skipped, data.deletes.size());
  EXPECT_EQ(RunProbes(*resumed.Current()), reference);
}

}  // namespace
}  // namespace snb

// Unit tests for the columnar storage subsystem: bit-packing, the shared
// dictionary, encoded column blocks (round-trip, zone metadata, the strict
// Status-returning decoder), zoned columns, the compressed CSR, and the
// Graph memory-accounting API.

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <vector>

#include "datagen/datagen.h"
#include "storage/adjacency.h"
#include "storage/columnar/bitpack.h"
#include "storage/columnar/column_block.h"
#include "storage/columnar/csr.h"
#include "storage/columnar/dictionary.h"
#include "storage/graph.h"

namespace snb::storage::columnar {
namespace {

TEST(BitpackTest, BitWidth) {
  EXPECT_EQ(BitWidth(0), 0u);
  EXPECT_EQ(BitWidth(1), 1u);
  EXPECT_EQ(BitWidth(2), 2u);
  EXPECT_EQ(BitWidth(255), 8u);
  EXPECT_EQ(BitWidth(256), 9u);
  EXPECT_EQ(BitWidth(UINT64_MAX), 64u);
}

TEST(BitpackTest, RoundTripAllWidths) {
  std::mt19937_64 rng(7);
  for (unsigned bits = 0; bits <= 64; ++bits) {
    const uint64_t mask = bits >= 64 ? ~0ull : ((1ull << bits) - 1);
    std::vector<uint64_t> values(137);
    for (uint64_t& v : values) v = rng() & mask;
    PackedArray packed(values, bits);
    ASSERT_EQ(packed.size(), values.size());
    for (size_t i = 0; i < values.size(); ++i) {
      ASSERT_EQ(packed.At(i), values[i]) << "bits=" << bits << " i=" << i;
    }
  }
}

TEST(BitpackTest, SetRewritesOneSlot) {
  std::vector<uint64_t> values = {3, 5, 7, 1, 6};
  PackedArray packed(values, 3);
  packed.Set(2, 0);
  EXPECT_EQ(packed.At(1), 5u);
  EXPECT_EQ(packed.At(2), 0u);
  EXPECT_EQ(packed.At(3), 1u);
}

TEST(DictionaryTest, StableDenseCodes) {
  Dictionary dict;
  const uint32_t female = dict.GetOrAdd("female");
  const uint32_t male = dict.GetOrAdd("male");
  EXPECT_EQ(female, 0u);
  EXPECT_EQ(male, 1u);
  EXPECT_EQ(dict.GetOrAdd("female"), female);  // idempotent
  EXPECT_EQ(dict.size(), 2u);
  EXPECT_EQ(dict.Decode(female), "female");
  EXPECT_EQ(dict.Decode(male), "male");
  EXPECT_EQ(dict.Find("male"), male);
  EXPECT_EQ(dict.Find("absent"), Dictionary::kNoCode);
}

TEST(DictionaryTest, DecodedReferenceStaysValidAcrossGrowth) {
  Dictionary dict;
  const uint32_t code = dict.GetOrAdd("Chrome");
  const std::string& ref = dict.Decode(code);
  for (int i = 0; i < 1000; ++i) dict.GetOrAdd("browser" + std::to_string(i));
  EXPECT_EQ(ref, "Chrome");  // deque storage: no reallocation moves
}

std::vector<uint64_t> RandomSorted(size_t n, uint64_t base, uint64_t step,
                                   uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<uint64_t> v(n);
  uint64_t cur = base;
  for (size_t i = 0; i < n; ++i) {
    cur += rng() % step;
    v[i] = cur;
  }
  return v;
}

TEST(ColumnBlockTest, ForRoundTripAndZones) {
  std::mt19937_64 rng(11);
  std::vector<uint64_t> values(500);
  for (uint64_t& v : values) v = 1'000'000 + rng() % 5000;
  ColumnBlock block = ColumnBlock::EncodeFor(values);
  ASSERT_EQ(block.size(), values.size());
  uint64_t mn = UINT64_MAX, mx = 0;
  for (size_t i = 0; i < values.size(); ++i) {
    ASSERT_EQ(block.At(i), values[i]);
    mn = std::min(mn, values[i]);
    mx = std::max(mx, values[i]);
  }
  EXPECT_EQ(block.zone_min(), mn);
  EXPECT_EQ(block.zone_max(), mx);
  EXPECT_LE(block.bits(), 13u);  // range 5000 → ≤ 13 bits, not 64
}

TEST(ColumnBlockTest, DeltaRoundTrip) {
  auto values = RandomSorted(777, 1'288'834'974'657ull, 90'000, 13);
  ColumnBlock block = ColumnBlock::EncodeDelta(values);
  std::vector<uint64_t> decoded;
  block.DecodeAll(&decoded);
  EXPECT_EQ(decoded, values);
  EXPECT_EQ(block.zone_min(), values.front());
  EXPECT_EQ(block.zone_max(), values.back());
  EXPECT_LE(block.bits(), 17u);  // deltas < 90'000, not 41-bit absolutes
}

TEST(ColumnBlockTest, SerializeDecodeFixedPoint) {
  for (bool delta : {false, true}) {
    auto values = RandomSorted(300, 500, 1000, delta ? 2 : 3);
    ColumnBlock block = delta ? ColumnBlock::EncodeDelta(values)
                              : ColumnBlock::EncodeFor(values);
    std::string bytes;
    block.SerializeTo(&bytes);
    ColumnBlock back;
    size_t consumed = 0;
    util::Status s = DecodeColumnBlock(
        {reinterpret_cast<const uint8_t*>(bytes.data()), bytes.size()}, &back,
        &consumed);
    ASSERT_TRUE(s.ok()) << s.ToString();
    EXPECT_EQ(consumed, bytes.size());
    std::vector<uint64_t> decoded;
    back.DecodeAll(&decoded);
    EXPECT_EQ(decoded, values);
    // Fixed point: re-serializing the decoded block yields the same bytes.
    std::string again;
    back.SerializeTo(&again);
    EXPECT_EQ(again, bytes);
  }
}

TEST(ColumnBlockTest, DecoderRejectsDamageWithStatus) {
  auto values = RandomSorted(64, 10, 50, 5);
  ColumnBlock block = ColumnBlock::EncodeDelta(values);
  std::string bytes;
  block.SerializeTo(&bytes);
  // Truncations at every length must fail cleanly.
  for (size_t len = 0; len < bytes.size(); ++len) {
    ColumnBlock out;
    util::Status s = DecodeColumnBlock(
        {reinterpret_cast<const uint8_t*>(bytes.data()), len}, &out, nullptr);
    EXPECT_FALSE(s.ok()) << "truncation to " << len << " accepted";
  }
  // Single-byte flips must either fail or decode to the identical block
  // (flips in the padding bits of the last word can be unreachable).
  for (size_t i = 0; i < bytes.size(); ++i) {
    std::string damaged = bytes;
    damaged[i] = static_cast<char>(damaged[i] ^ 0x40);
    ColumnBlock out;
    util::Status s = DecodeColumnBlock(
        {reinterpret_cast<const uint8_t*>(damaged.data()), damaged.size()},
        &out, nullptr);
    if (s.ok()) {
      std::string round;
      out.SerializeTo(&round);
      EXPECT_EQ(round, damaged) << "byte " << i
                                << ": accepted bytes that do not round-trip";
    }
  }
}

TEST(ZonedColumnTest, AtAcrossBlocks) {
  std::mt19937_64 rng(17);
  std::vector<uint64_t> values(3 * ColumnBlock::kMaxValues + 321);
  for (uint64_t& v : values) v = rng() % 100'000;
  ZonedColumn col = ZonedColumn::BuildFor(values);
  ASSERT_EQ(col.size(), values.size());
  for (size_t i = 0; i < values.size(); i += 7) {
    ASSERT_EQ(col.At(i), values[i]);
  }
  EXPECT_EQ(col.num_blocks(), 4u);
}

TEST(ZonedColumnTest, LowerBoundMatchesStdLowerBound) {
  auto values = RandomSorted(5 * ColumnBlock::kMaxValues + 11, 0, 37, 23);
  ZonedColumn col = ZonedColumn::BuildDelta(values);
  std::mt19937_64 rng(29);
  for (int trial = 0; trial < 500; ++trial) {
    const uint64_t probe = rng() % (values.back() + 100);
    const size_t want = static_cast<size_t>(
        std::lower_bound(values.begin(), values.end(), probe) -
        values.begin());
    ASSERT_EQ(col.LowerBound(probe), want) << "probe=" << probe;
  }
  EXPECT_EQ(col.LowerBound(values.back() + 1), values.size());
  EXPECT_EQ(col.LowerBound(0), 0u);
}

TEST(CompressedCsrTest, MatchesReferenceAdjacency) {
  std::mt19937_64 rng(31);
  const size_t nodes = 300;
  std::vector<EdgeInput> edges;
  for (int i = 0; i < 5000; ++i) {
    edges.push_back({static_cast<uint32_t>(rng() % nodes),
                     static_cast<uint32_t>(rng() % nodes),
                     static_cast<core::DateTime>(1'000'000 + rng() % 99'999)});
  }
  // Reference: sort the same way and bucket per node.
  auto ref_edges = edges;
  std::sort(ref_edges.begin(), ref_edges.end(),
            [](const EdgeInput& a, const EdgeInput& b) {
              if (a.src != b.src) return a.src < b.src;
              if (a.dst != b.dst) return a.dst < b.dst;
              return a.date < b.date;
            });
  CompressedCsr csr;
  csr.Build(nodes, edges, /*with_dates=*/true);
  ASSERT_EQ(csr.num_edges(), ref_edges.size());
  size_t k = 0;
  for (uint32_t n = 0; n < nodes; ++n) {
    for (uint64_t e = csr.EdgeBegin(n); e < csr.EdgeEnd(n); ++e, ++k) {
      ASSERT_EQ(ref_edges[k].src, n);
      ASSERT_EQ(csr.TargetAt(e), ref_edges[k].dst);
      ASSERT_EQ(csr.DateAt(e), ref_edges[k].date);
    }
  }
  EXPECT_EQ(k, ref_edges.size());
  EXPECT_LT(csr.ByteSize(), csr.RawByteSize());
}

TEST(AdjacencyTest, OverflowArenaPreservesAppendOrder) {
  AdjacencyList adj;
  adj.Build(4, {{0, 3, 10}, {0, 1, 11}, {2, 2, 12}}, /*with_dates=*/true);
  adj.Append(0, 9, 100);
  adj.Append(2, 8, 101);
  adj.Append(0, 7, 102);
  adj.AddNodes(1);  // node 4 exists only post-load
  adj.Append(4, 6, 103);
  EXPECT_EQ(adj.num_nodes(), 5u);
  EXPECT_EQ(adj.num_edges(), 7u);
  EXPECT_EQ(adj.Degree(0), 4u);
  EXPECT_EQ(adj.Degree(4), 1u);
  std::vector<std::pair<uint32_t, core::DateTime>> seen;
  adj.ForEachDated(0, [&](uint32_t t, core::DateTime d) {
    seen.push_back({t, d});
  });
  // Base sorted by target, then overflow in append order.
  const std::vector<std::pair<uint32_t, core::DateTime>> want = {
      {1, 11}, {3, 10}, {9, 100}, {7, 102}};
  EXPECT_EQ(seen, want);
  EXPECT_TRUE(adj.Contains(4, 6));
  EXPECT_FALSE(adj.Contains(1, 6));
}

TEST(GraphMemoryTest, CompressedStoreBeatsSeedLayout) {
  datagen::DatagenConfig cfg;
  cfg.num_persons = 300;
  Graph graph(std::move(datagen::Generate(cfg).network));
  const MemoryBreakdown mb = graph.Memory();
  ASSERT_GT(mb.num_edges, 0u);
  ASSERT_GT(mb.num_messages, 0u);
  EXPECT_GT(mb.BytesPerEdge(), 0.0);
  // The headline claim BENCH_storage.json tracks: packed columns beat the
  // raw arrays. The ≥2× criterion is asserted at bench scale; here we
  // require a strict win even at a tiny SF.
  EXPECT_LT(mb.BytesPerEdge(), mb.RawBytesPerEdge());
  EXPECT_LT(mb.BytesPerMessage(), mb.RawBytesPerMessage());
  EXPECT_FALSE(mb.ToString().empty());
  // Dictionary holds the shared low-cardinality families.
  EXPECT_GT(graph.Dict().size(), 0u);
  EXPECT_LT(graph.Dict().size(), 2000u);
}

}  // namespace
}  // namespace snb::storage::columnar

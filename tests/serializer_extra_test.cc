// Tests for the CsvComposite / CsvCompositeMergeForeign serializers
// (Tables 2.15/2.16), the Turtle serializer, the update-stream
// write→read roundtrip, and the driver results log.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>

#include "datagen/datagen.h"
#include "datagen/serializer.h"
#include "datagen/update_stream.h"
#include "driver/driver.h"
#include "params/parameter_curation.h"
#include "storage/graph.h"
#include "interactive/updates.h"
#include "util/csv.h"

namespace snb::datagen {
namespace {

namespace fs = std::filesystem;

DatagenConfig TinyConfig() {
  DatagenConfig cfg;
  cfg.num_persons = 150;
  cfg.activity_scale = 0.3;
  return cfg;
}

class ExtraSerializerFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data_ = new GeneratedData(Generate(TinyConfig()));
    dir_ = new std::string(::testing::TempDir() + "/snb_serializer_extra");
    fs::remove_all(*dir_);
  }
  static void TearDownTestSuite() {
    delete data_;
    delete dir_;
  }
  static const GeneratedData& data() { return *data_; }
  static const std::string& dir() { return *dir_; }

 private:
  static GeneratedData* data_;
  static std::string* dir_;
};

GeneratedData* ExtraSerializerFixture::data_ = nullptr;
std::string* ExtraSerializerFixture::dir_ = nullptr;

std::set<std::string> CollectStems(const std::string& root) {
  std::set<std::string> stems;
  for (const auto& entry : fs::recursive_directory_iterator(root)) {
    if (!entry.is_regular_file()) continue;
    std::string name = entry.path().filename().string();
    size_t pos = name.find("_0_0.csv");
    if (pos != std::string::npos) stems.insert(name.substr(0, pos));
  }
  return stems;
}

TEST_F(ExtraSerializerFixture, CsvCompositeEmitsExactlyTable215Files) {
  ASSERT_TRUE(WriteCsvComposite(data().network, dir() + "/composite").ok());
  std::set<std::string> expected(CsvCompositeFileStems().begin(),
                                 CsvCompositeFileStems().end());
  EXPECT_EQ(expected.size(), 31u);  // Table 2.15: 31 files
  EXPECT_EQ(CollectStems(dir() + "/composite"), expected);
  EXPECT_FALSE(expected.contains("person_email_emailaddress"));
  EXPECT_FALSE(expected.contains("person_speaks_language"));
}

TEST_F(ExtraSerializerFixture, CsvCompositeMergeForeignEmitsTable216Files) {
  ASSERT_TRUE(WriteCsvCompositeMergeForeign(data().network,
                                            dir() + "/composite_merge")
                  .ok());
  std::set<std::string> expected(CsvCompositeMergeForeignFileStems().begin(),
                                 CsvCompositeMergeForeignFileStems().end());
  EXPECT_EQ(expected.size(), 18u);  // Table 2.16: 18 files
  EXPECT_EQ(CollectStems(dir() + "/composite_merge"), expected);
}

TEST_F(ExtraSerializerFixture, CompositePersonColumnsRoundtrip) {
  ASSERT_TRUE(
      WriteCsvComposite(data().network, dir() + "/composite2").ok());
  auto table_or =
      util::ReadCsv(dir() + "/composite2/dynamic/person_0_0.csv");
  ASSERT_TRUE(table_or.ok());
  const util::CsvTable& table = table_or.value();
  ASSERT_EQ(table.header.back(), "emails");
  ASSERT_EQ(table.header[table.header.size() - 2], "language");
  ASSERT_EQ(table.rows.size(), data().network.persons.size());
  for (size_t i = 0; i < table.rows.size(); ++i) {
    const core::Person& p = data().network.persons[i];
    EXPECT_EQ(util::SplitMultiValued(table.rows[i][table.header.size() - 2]),
              p.speaks);
    EXPECT_EQ(util::SplitMultiValued(table.rows[i].back()), p.emails);
  }
}

TEST_F(ExtraSerializerFixture, TurtleWritesBothFilesWithTriples) {
  ASSERT_TRUE(WriteTurtle(data().network, dir() + "/turtle").ok());
  std::string static_file =
      dir() + "/turtle/0_ldbc_socialnet_static_dbp.ttl";
  std::string dynamic_file = dir() + "/turtle/0_ldbc_socialnet.ttl";
  ASSERT_TRUE(fs::exists(static_file));
  ASSERT_TRUE(fs::exists(dynamic_file));

  auto count_statements = [](const std::string& path, size_t* persons,
                             size_t* prefixes) {
    std::ifstream in(path);
    std::string line;
    size_t statements = 0;
    while (std::getline(in, line)) {
      if (line.rfind("@prefix", 0) == 0) ++*prefixes;
      if (line.find(" a snvoc:Person ") != std::string::npos) ++*persons;
      if (!line.empty() && line.back() == '.') ++statements;
    }
    return statements;
  };
  size_t persons = 0, prefixes = 0;
  size_t static_statements =
      count_statements(static_file, &persons, &prefixes);
  EXPECT_EQ(prefixes, 3u);
  EXPECT_GE(static_statements, data().network.places.size() +
                                   data().network.tags.size());
  persons = 0;
  prefixes = 0;
  size_t dynamic_statements =
      count_statements(dynamic_file, &persons, &prefixes);
  EXPECT_EQ(persons, data().network.persons.size());
  EXPECT_GE(dynamic_statements,
            data().network.persons.size() + data().network.posts.size() +
                data().network.comments.size() + data().network.likes.size());
}

TEST_F(ExtraSerializerFixture, UpdateStreamWriteReadRoundtrip) {
  ASSERT_TRUE(WriteUpdateStreams(data().updates, dir() + "/streams").ok());
  auto read_or = ReadUpdateStreams(dir() + "/streams");
  ASSERT_TRUE(read_or.ok()) << read_or.status().ToString();
  const std::vector<UpdateEvent>& read = read_or.value();
  ASSERT_EQ(read.size(), data().updates.size());
  for (size_t i = 0; i < read.size(); ++i) {
    const UpdateEvent& a = read[i];
    const UpdateEvent& b = data().updates[i];
    EXPECT_EQ(a.kind, b.kind) << i;
    EXPECT_EQ(a.timestamp, b.timestamp) << i;
    EXPECT_EQ(a.dependency, b.dependency) << i;
    // Serialized fields must match exactly (the text round-trip check).
    EXPECT_EQ(UpdateEventFields(a), UpdateEventFields(b)) << i;
  }
}

TEST_F(ExtraSerializerFixture, ReadUpdateStreamsFailsOnMissingDir) {
  auto result = ReadUpdateStreams("/nonexistent/streams");
  EXPECT_FALSE(result.ok());
}

TEST_F(ExtraSerializerFixture, ReplayedStreamEventsApplyCleanly) {
  ASSERT_TRUE(WriteUpdateStreams(data().updates, dir() + "/streams2").ok());
  auto read_or = ReadUpdateStreams(dir() + "/streams2");
  ASSERT_TRUE(read_or.ok());
  core::SocialNetwork copy = data().network;
  storage::Graph graph(std::move(copy));
  for (const UpdateEvent& e : read_or.value()) {
    ASSERT_TRUE(interactive::ApplyUpdate(graph, e).ok());
  }
  EXPECT_EQ(graph.NumPersons(), data().total_persons);
  EXPECT_EQ(graph.NumPosts(), data().total_posts);
  EXPECT_EQ(graph.NumComments(), data().total_comments);
}

}  // namespace
}  // namespace snb::datagen

namespace snb::driver {
namespace {

TEST(ResultsLogTest, DriverProducesCompleteLog) {
  datagen::DatagenConfig cfg;
  cfg.num_persons = 200;
  cfg.activity_scale = 0.3;
  datagen::GeneratedData data = datagen::Generate(cfg);
  storage::Graph graph(std::move(data.network));
  params::CurationConfig pc;
  pc.per_query = 4;
  params::WorkloadParameters params = params::CurateParameters(graph, pc);

  DriverConfig dc;
  dc.max_updates = 500;
  DriverReport report =
      RunInteractiveWorkload(graph, data.updates, params, dc);
  EXPECT_EQ(report.results_log.size(), report.total_operations);

  std::string path = ::testing::TempDir() + "/snb_results_log.csv";
  ASSERT_TRUE(WriteResultsLog(report.results_log, path).ok());

  std::ifstream in(path);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line,
            "operation|scheduled_start_time|actual_start_time|duration|"
            "result_rows");
  size_t rows = 0;
  while (std::getline(in, line)) ++rows;
  EXPECT_EQ(rows, report.total_operations);
}

}  // namespace
}  // namespace snb::driver

// Cross-validation of the optimized BI engine against the naive baseline:
// every query, multiple curated parameter bindings, multiple generated
// networks. This is the repository's equivalent of the official validation
// datasets (spec §6.2).

#include <gtest/gtest.h>

#include <map>

#include "bi/bi.h"
#include "bi/naive.h"
#include "datagen/datagen.h"
#include "params/parameter_curation.h"
#include "storage/graph.h"

namespace snb::bi {
namespace {

struct Workbench {
  storage::Graph graph;
  params::WorkloadParameters params;
};

Workbench* MakeWorkbench(uint64_t seed) {
  datagen::DatagenConfig cfg;
  cfg.seed = seed;
  cfg.num_persons = 280;
  cfg.activity_scale = 0.5;
  datagen::GeneratedData data = datagen::Generate(cfg);
  auto* bench = new Workbench{storage::Graph(std::move(data.network)), {}};
  params::CurationConfig pc;
  pc.seed = seed;
  pc.per_query = 6;
  bench->params = params::CurateParameters(bench->graph, pc);
  return bench;
}

class BiCrossValTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  static void SetUpTestSuite() {
    if (benches_ == nullptr) {
      benches_ = new std::map<uint64_t, Workbench*>();
    }
  }
  Workbench& bench() {
    Workbench*& b = (*benches_)[GetParam()];
    if (b == nullptr) b = MakeWorkbench(GetParam());
    return *b;
  }

 private:
  static std::map<uint64_t, Workbench*>* benches_;
};

std::map<uint64_t, Workbench*>* BiCrossValTest::benches_ = nullptr;

#define SNB_CROSSVAL(N)                                             \
  TEST_P(BiCrossValTest, Bi##N##MatchesNaive) {                     \
    Workbench& wb = bench();                                        \
    ASSERT_FALSE(wb.params.bi##N.empty());                          \
    for (size_t i = 0; i < wb.params.bi##N.size() && i < 4; ++i) {  \
      auto optimized = RunBi##N(wb.graph, wb.params.bi##N[i]);      \
      auto baseline = naive::RunBi##N(wb.graph, wb.params.bi##N[i]); \
      EXPECT_EQ(optimized, baseline) << "binding " << i;            \
    }                                                               \
  }

SNB_CROSSVAL(1)
SNB_CROSSVAL(2)
SNB_CROSSVAL(3)
SNB_CROSSVAL(4)
SNB_CROSSVAL(5)
SNB_CROSSVAL(6)
SNB_CROSSVAL(7)
SNB_CROSSVAL(8)
SNB_CROSSVAL(9)
SNB_CROSSVAL(10)
SNB_CROSSVAL(11)
SNB_CROSSVAL(12)
SNB_CROSSVAL(13)
SNB_CROSSVAL(14)
SNB_CROSSVAL(15)
SNB_CROSSVAL(16)
SNB_CROSSVAL(17)
SNB_CROSSVAL(18)
SNB_CROSSVAL(19)
SNB_CROSSVAL(20)
SNB_CROSSVAL(21)
SNB_CROSSVAL(22)
SNB_CROSSVAL(23)
SNB_CROSSVAL(24)
SNB_CROSSVAL(25)

#undef SNB_CROSSVAL

INSTANTIATE_TEST_SUITE_P(Seeds, BiCrossValTest,
                         ::testing::Values(42, 1337, 20260705));

}  // namespace
}  // namespace snb::bi

// A small hand-built social network with hand-computable query answers,
// shared by the BI and Interactive semantics tests.
//
// Persons: alice(0) Berlin/DE, bob(1) Berlin/DE, carol(2) Paris/FR,
//          dave(3) Berlin/DE.
// Knows:   alice–bob, bob–carol, bob–dave, alice–dave
//          (triangle {alice, bob, dave} inside Germany).
// Forum 0: "Wall of Alice" (moderator alice, tag Mozart);
//          members bob, dave, carol.
// Posts:   post 0 by alice (tag Mozart, len 50, DE, lang de),
//          post 1 by bob   (tag Bach,   len 100, FR, lang en).
// Comments: c0 by bob replying post 0 (tag Bach, len 80, DE),
//           c1 by carol replying c0   (tag Mozart, len 20, FR).
// Likes:   bob→post0, carol→post0, alice→post1, dave→c0.

#ifndef SNB_TESTS_FIXTURE_GRAPH_H_
#define SNB_TESTS_FIXTURE_GRAPH_H_

#include "core/date_time.h"
#include "core/schema.h"

namespace snb::testfixture {

using core::DateTimeFromCivil;

// Entity ids used by the tests.
constexpr core::Id kAlice = 0, kBob = 1, kCarol = 2, kDave = 3;
constexpr core::Id kEurope = 0, kGermany = 1, kBerlin = 2, kFrance = 3,
                   kParis = 4;
constexpr core::Id kThing = 0, kPersonClass = 1, kMusician = 2;
constexpr core::Id kMozart = 0, kBach = 1;
constexpr core::Id kWall = 0;
constexpr core::Id kPost0 = 0, kPost1 = 1;
constexpr core::Id kComment0 = 0, kComment1 = 1;

inline core::SocialNetwork MakeFixtureNetwork() {
  core::SocialNetwork net;

  net.places.push_back(
      {kEurope, "Europe", "u", core::PlaceType::kContinent, core::kNoId});
  net.places.push_back(
      {kGermany, "Germany", "u", core::PlaceType::kCountry, kEurope});
  net.places.push_back(
      {kBerlin, "Berlin", "u", core::PlaceType::kCity, kGermany});
  net.places.push_back(
      {kFrance, "France", "u", core::PlaceType::kCountry, kEurope});
  net.places.push_back(
      {kParis, "Paris", "u", core::PlaceType::kCity, kFrance});

  net.tag_classes.push_back({kThing, "Thing", "u", core::kNoId});
  net.tag_classes.push_back({kPersonClass, "Person", "u", kThing});
  net.tag_classes.push_back({kMusician, "Musician", "u", kPersonClass});

  net.tags.push_back({kMozart, "Mozart", "u", kMusician});
  net.tags.push_back({kBach, "Bach", "u", kMusician});

  net.organisations.push_back({0, core::OrganisationType::kUniversity,
                               "University of Berlin", "u", kBerlin});
  net.organisations.push_back(
      {1, core::OrganisationType::kCompany, "France Telecom", "u", kFrance});

  auto make_person = [](core::Id id, const char* first, const char* last,
                        const char* gender, core::Id city,
                        core::DateTime created, int birth_year,
                        int birth_month, int birth_day) {
    core::Person p;
    p.id = id;
    p.first_name = first;
    p.last_name = last;
    p.gender = gender;
    p.city = city;
    p.creation_date = created;
    p.birthday = core::DateFromCivil(birth_year, birth_month, birth_day);
    p.browser_used = "Firefox";
    p.location_ip = "1.2.3.4";
    p.speaks = {"en"};
    p.emails = {"x@example.org"};
    return p;
  };
  net.persons.push_back(make_person(kAlice, "Alice", "Ant", "female", kBerlin,
                                    DateTimeFromCivil(2010, 1, 5), 1985, 3,
                                    22));
  net.persons.push_back(make_person(kBob, "Bob", "Bee", "male", kBerlin,
                                    DateTimeFromCivil(2010, 1, 10), 1990, 7,
                                    2));
  net.persons.push_back(make_person(kCarol, "Carol", "Cat", "female", kParis,
                                    DateTimeFromCivil(2010, 2, 1), 1988, 12,
                                    21));
  net.persons.push_back(make_person(kDave, "Dave", "Dog", "male", kBerlin,
                                    DateTimeFromCivil(2010, 2, 15), 1979, 5,
                                    30));
  net.persons[0].interests = {kMozart};
  net.persons[1].interests = {kBach};
  net.persons[2].interests = {kMozart, kBach};
  net.persons[0].study_at = {{0, 2006}};
  net.persons[2].work_at = {{1, 2009}};

  net.knows.push_back({kAlice, kBob, DateTimeFromCivil(2010, 3, 1)});
  net.knows.push_back({kBob, kCarol, DateTimeFromCivil(2010, 3, 5)});
  net.knows.push_back({kBob, kDave, DateTimeFromCivil(2010, 3, 10)});
  net.knows.push_back({kAlice, kDave, DateTimeFromCivil(2010, 3, 15)});

  core::Forum wall;
  wall.id = kWall;
  wall.title = "Wall of Alice Ant";
  wall.creation_date = DateTimeFromCivil(2010, 1, 6);
  wall.moderator = kAlice;
  wall.tags = {kMozart};
  wall.kind = core::ForumKind::kWall;
  net.forums.push_back(wall);
  net.memberships.push_back({kWall, kBob, DateTimeFromCivil(2010, 3, 2)});
  net.memberships.push_back({kWall, kDave, DateTimeFromCivil(2010, 3, 16)});
  net.memberships.push_back({kWall, kCarol, DateTimeFromCivil(2010, 4, 1)});

  core::Post post0;
  post0.id = kPost0;
  post0.creation_date = DateTimeFromCivil(2010, 4, 10);
  post0.creator = kAlice;
  post0.forum = kWall;
  post0.country = kGermany;
  post0.language = "de";
  post0.content = std::string(50, 'a');
  post0.length = 50;
  post0.tags = {kMozart};
  post0.browser_used = "Firefox";
  post0.location_ip = "1.1.1.1";
  net.posts.push_back(post0);

  core::Post post1;
  post1.id = kPost1;
  post1.creation_date = DateTimeFromCivil(2010, 5, 20);
  post1.creator = kBob;
  post1.forum = kWall;
  post1.country = kFrance;
  post1.language = "en";
  post1.content = std::string(100, 'b');
  post1.length = 100;
  post1.tags = {kBach};
  post1.browser_used = "Chrome";
  post1.location_ip = "2.2.2.2";
  net.posts.push_back(post1);

  core::Comment c0;
  c0.id = kComment0;
  c0.creation_date = DateTimeFromCivil(2010, 4, 11);
  c0.creator = kBob;
  c0.country = kGermany;
  c0.content = std::string(80, 'c');
  c0.length = 80;
  c0.reply_of_post = kPost0;
  c0.tags = {kBach};
  c0.browser_used = "Chrome";
  c0.location_ip = "2.2.2.2";
  net.comments.push_back(c0);

  core::Comment c1;
  c1.id = kComment1;
  c1.creation_date = DateTimeFromCivil(2010, 4, 12);
  c1.creator = kCarol;
  c1.country = kFrance;
  c1.content = std::string(20, 'd');
  c1.length = 20;
  c1.reply_of_comment = kComment0;
  c1.tags = {kMozart};
  c1.browser_used = "Safari";
  c1.location_ip = "3.3.3.3";
  net.comments.push_back(c1);

  net.likes.push_back({kBob, kPost0, true, DateTimeFromCivil(2010, 4, 13)});
  net.likes.push_back({kCarol, kPost0, true, DateTimeFromCivil(2010, 4, 14)});
  net.likes.push_back({kAlice, kPost1, true, DateTimeFromCivil(2010, 5, 21)});
  net.likes.push_back(
      {kDave, kComment0, false, DateTimeFromCivil(2010, 4, 15)});

  return net;
}

}  // namespace snb::testfixture

#endif  // SNB_TESTS_FIXTURE_GRAPH_H_

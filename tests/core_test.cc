// Unit tests for scale factors (Table 2.12 / B.1) and the choke-point
// registry (Table A.1).

#include <gtest/gtest.h>

#include <set>

#include "core/choke_points.h"
#include "core/scale_factors.h"
#include "core/schema.h"

namespace snb::core {
namespace {

TEST(ScaleFactorsTest, PaperRowsPresent) {
  auto sf1 = FindScaleFactor("1");
  ASSERT_TRUE(sf1.has_value());
  EXPECT_EQ(sf1->num_persons, 11'000u);
  EXPECT_EQ(sf1->paper_nodes, 3'200'000u);
  EXPECT_EQ(sf1->paper_edges, 17'300'000u);

  auto sf1000 = FindScaleFactor("1000");
  ASSERT_TRUE(sf1000.has_value());
  EXPECT_EQ(sf1000->num_persons, 3'600'000u);
}

TEST(ScaleFactorsTest, PersonCountsIncreaseWithSf) {
  const auto& all = AllScaleFactors();
  for (size_t i = 1; i < all.size(); ++i) {
    EXPECT_LT(all[i - 1].num_persons, all[i].num_persons)
        << all[i - 1].name << " vs " << all[i].name;
    EXPECT_LT(all[i - 1].sf, all[i].sf);
  }
}

TEST(ScaleFactorsTest, UnknownNameIsEmpty) {
  EXPECT_FALSE(FindScaleFactor("17").has_value());
}

TEST(FrequenciesTest, Sf1MatchesTable31) {
  InteractiveFrequencies f = FrequenciesForScaleFactor("1");
  // Spec Table 3.1 row by row.
  const int32_t expected[14] = {26, 37, 69, 36, 57, 129, 87,
                                45, 157, 30, 16, 44, 19, 49};
  for (int i = 0; i < 14; ++i) EXPECT_EQ(f.freq[i], expected[i]) << "IC " << i + 1;
}

TEST(FrequenciesTest, ConstantQueriesStayConstantAcrossSfs) {
  // Spec Table B.1: IC 1, 2, 4, 12, 13, 14 have SF-independent frequencies.
  for (const auto& row : AllInteractiveFrequencies()) {
    EXPECT_EQ(row.freq[0], 26) << row.sf_name;
    EXPECT_EQ(row.freq[1], 37) << row.sf_name;
    EXPECT_EQ(row.freq[3], 36) << row.sf_name;
    EXPECT_EQ(row.freq[11], 44) << row.sf_name;
    EXPECT_EQ(row.freq[12], 19) << row.sf_name;
    EXPECT_EQ(row.freq[13], 49) << row.sf_name;
  }
}

TEST(FrequenciesTest, Ic9GrowsAndIc8ShrinksWithSf) {
  // Per Table B.1: IC 9 gets rarer relative to updates as data grows
  // (frequency grows), IC 8 more frequent (frequency shrinks).
  const auto& all = AllInteractiveFrequencies();
  for (size_t i = 1; i < all.size(); ++i) {
    EXPECT_GT(all[i].freq[8], all[i - 1].freq[8]);
    EXPECT_LE(all[i].freq[7], all[i - 1].freq[7]);
  }
}

TEST(FrequenciesTest, MicroSfFallsBackToSf1) {
  InteractiveFrequencies f = FrequenciesForScaleFactor("0.01");
  EXPECT_EQ(f.freq[0], 26);
  EXPECT_EQ(f.sf_name, "0.01");
}

TEST(ChokePointsTest, RegistryHasAll29ChokePoints) {
  // Appendix A defines 29 choke points across 8 groups (CP-1.1 … CP-8.6).
  EXPECT_EQ(AllChokePoints().size(), 29u);
  std::set<std::pair<int, int>> ids;
  for (const ChokePointInfo& cp : AllChokePoints()) {
    ids.insert({cp.id.group, cp.id.item});
    EXPECT_GE(cp.id.group, 1);
    EXPECT_LE(cp.id.group, 8);
    EXPECT_FALSE(cp.title.empty());
    EXPECT_TRUE(cp.area == "QOPT" || cp.area == "QEXE" ||
                cp.area == "STORAGE" || cp.area == "LANG")
        << cp.area;
  }
  EXPECT_EQ(ids.size(), 29u);  // unique
}

TEST(ChokePointsTest, All39ReadQueriesRegistered) {
  size_t bi = 0, ic = 0;
  for (const QueryChokePoints& q : AllQueryChokePoints()) {
    if (q.workload == QueryWorkload::kBi) ++bi;
    if (q.workload == QueryWorkload::kInteractiveComplex) ++ic;
    EXPECT_FALSE(q.choke_points.empty())
        << QueryName(q.workload, q.number);
  }
  EXPECT_EQ(bi, 25u);
  EXPECT_EQ(ic, 14u);
}

TEST(ChokePointsTest, QueryCpListsReferenceKnownChokePoints) {
  std::set<std::pair<int, int>> known;
  for (const ChokePointInfo& cp : AllChokePoints()) {
    known.insert({cp.id.group, cp.id.item});
  }
  for (const QueryChokePoints& q : AllQueryChokePoints()) {
    std::set<std::pair<int, int>> seen;
    for (const ChokePointId& id : q.choke_points) {
      EXPECT_TRUE(known.contains({id.group, id.item}))
          << QueryName(q.workload, q.number) << " references CP-" << id.group
          << "." << id.item;
      EXPECT_TRUE(seen.insert({id.group, id.item}).second)
          << "duplicate CP in " << QueryName(q.workload, q.number);
    }
  }
}

TEST(ChokePointsTest, SpecSpotChecks) {
  // CP-7.4 is covered by exactly BI 14 and BI 19 (Appendix A).
  std::vector<std::string> cp74 = QueriesCovering({7, 4});
  EXPECT_EQ(cp74, (std::vector<std::string>{"BI 14", "BI 19"}));
  // CP-4.4 (string matching) has no covering queries in the spec.
  EXPECT_TRUE(QueriesCovering({4, 4}).empty());
  // IC 13's CPs per its card: 3.3, 7.2, 7.3, 8.1, 8.6.
  for (const QueryChokePoints& q : AllQueryChokePoints()) {
    if (q.workload == QueryWorkload::kInteractiveComplex && q.number == 13) {
      EXPECT_EQ(q.choke_points.size(), 5u);
    }
  }
}

TEST(ChokePointsTest, EveryChokePointButStringMatchingIsCovered) {
  for (const ChokePointInfo& cp : AllChokePoints()) {
    if (cp.id == ChokePointId{4, 4}) continue;
    EXPECT_FALSE(QueriesCovering(cp.id).empty())
        << "CP-" << cp.id.group << "." << cp.id.item << " uncovered";
  }
}

TEST(SchemaTest, NumEdgesCountsAllRelations) {
  SocialNetwork net;
  net.places.push_back({0, "X", "u", PlaceType::kContinent, kNoId});
  net.places.push_back({1, "Y", "u", PlaceType::kCountry, 0});
  net.tag_classes.push_back({0, "Thing", "u", kNoId});
  net.tag_classes.push_back({1, "Person", "u", 0});
  net.tags.push_back({0, "t", "u", 1});
  net.organisations.push_back(
      {0, OrganisationType::kCompany, "c", "u", 1});
  Person p;
  p.id = 0;
  p.city = 1;
  p.interests = {0};
  p.work_at.push_back({0, 2000});
  net.persons.push_back(p);
  // Edges: place isPartOf (1) + tagclass subclass (1) + tag hasType (1) +
  // org isLocatedIn (1) + person isLocatedIn (1) + interest (1) + workAt (1).
  EXPECT_EQ(net.NumEdges(), 7u);
  EXPECT_EQ(net.NumNodes(), 7u);
}

}  // namespace
}  // namespace snb::core

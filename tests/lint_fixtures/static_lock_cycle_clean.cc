// snb-lint-path: src/sched/order_demo.cc
// Fixture: every path takes the locks in the same declared order — a
// consistent A->B edge (direct and through a helper) is not a cycle, and
// acquiring upward through declared levels is not an inversion.
#define SNB_LOCK_LEVEL(name, level) name
#define SNB_GUARDED_BY(x)

namespace util {
struct Mutex {};
struct MutexLock {
  explicit MutexLock(Mutex& m);
};
}  // namespace util

class Ordered {
 public:
  void Direct();
  void ViaHelper();

 private:
  void HelpLockHigh();
  util::Mutex low_{SNB_LOCK_LEVEL("demo.low", 10)};
  util::Mutex high_{SNB_LOCK_LEVEL("demo.high", 20)};
};

void Ordered::HelpLockHigh() { util::MutexLock l(high_); }

void Ordered::Direct() {
  util::MutexLock l(low_);
  util::MutexLock l2(high_);
}

void Ordered::ViaHelper() {
  util::MutexLock l(low_);
  HelpLockHigh();
}

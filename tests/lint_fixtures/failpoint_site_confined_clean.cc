// snb-lint-path: src/storage/wal_write.cc
// Fixture: sites belong in production code under src/.
#define SNB_FAILPOINT(name) (void)(name)
void Write() { SNB_FAILPOINT("storage.wal.append"); }

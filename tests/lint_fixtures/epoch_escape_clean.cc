// snb-lint-path: src/driver/snapshot_demo.cc
// Fixture: the sanctioned snapshot idioms — a named shared_ptr snapshot
// with raw views confined to its scope, inline full-expression use of
// *handle.Current() as a call argument, returning the shared_ptr itself,
// and capturing the shared_ptr (not a raw view) into a deferred task.
#include <memory>

namespace storage {
struct Graph {
  int n = 0;
};
}  // namespace storage

struct GraphHandle {
  std::shared_ptr<const storage::Graph> Current() const;
};

struct ThreadPool {
  template <typename F>
  void Submit(F f);
};

void Consume(const storage::Graph& g);
int Export(const storage::Graph& g);

void Report(GraphHandle& handle) {
  auto snap = handle.Current();       // named, refcounted snapshot
  const storage::Graph& g = *snap;    // view scoped to the snapshot
  Consume(g);
  (void)Export(*handle.Current());    // lives for the full expression
}

std::shared_ptr<const storage::Graph> Acquire(GraphHandle& handle) {
  return handle.Current();  // returning the shared_ptr keeps the epoch
}

void Defer(GraphHandle& handle, ThreadPool& pool) {
  auto snap = handle.Current();
  pool.Submit([snap] { Consume(*snap); });  // by-value capture pins it
}

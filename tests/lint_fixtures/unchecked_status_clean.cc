// snb-lint-path: src/storage/tidy.cc
// Fixture: checked, returned, or (void) with the documented reason.
struct Status { bool ok(); };
Status FlushIndex();
Status Tick() {
  Status st = FlushIndex();
  if (!st.ok()) return st;
  // snb-lint-allow(unchecked-status): best-effort flush on shutdown path
  (void)FlushIndex();
  return FlushIndex();
}

// snb-lint-path: src/driver/refresh_boot.cc
// Fixture: shipping refresh code that arms a cascade stage injects torn
// cascades into production — arming is reserved for tests and the
// SNB_FAILPOINTS env hook.
namespace failpoint { void Arm(const char* name, int spec); }
void Boot() { failpoint::Arm("graph.cascade.forums", 1); }

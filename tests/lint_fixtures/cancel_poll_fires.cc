// snb-lint-path: src/bi/bi02.cc
// Fixture: a BI kernel whose hot loop never polls for cancellation can
// stall a whole stream past its time budget.
int RunBi2(int n) {
  int acc = 0;
  for (int i = 0; i < n; ++i) acc += i;
  return acc;
}

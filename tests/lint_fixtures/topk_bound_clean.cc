// snb-lint-path: src/bi/bi06.cc
// Fixture: prunes through the shared BoundRef before placing candidates.
struct CancelPoller { bool Tick(); };
struct BoundRef { bool CannotPlace(long score); };
int RunBi6(int n, CancelPoller& poll, BoundRef& bound) {
  int acc = 0;
  for (int i = 0; i < n; ++i) {
    if (poll.Tick()) break;
    if (bound.CannotPlace(i)) continue;
    acc += i;
  }
  return acc;
}

// snb-lint-path: src/storage/wal.cc
// Fixture: the one file allowed to spell the redo log's name.
const char* WalPath() { return "state/wal.log"; }

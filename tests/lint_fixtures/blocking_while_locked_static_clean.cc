// snb-lint-path: src/util/sanctioned_demo.cc
// Fixture: the sanctioned shapes. Waiting on the *held* mutex is the
// CondVar contract (the wait releases it); submitting to a pool whose
// queue mutex sits at a strictly higher declared level than the held lock
// follows the declared order — the scheduler's Admit-under-stream_mu
// pattern in miniature.
#define SNB_LOCK_LEVEL(name, level) name
#define SNB_GUARDED_BY(x)

namespace util {
struct Mutex {};
struct MutexLock {
  explicit MutexLock(Mutex& m);
};
struct CondVar {
  void Wait(Mutex& m);
};
}  // namespace util

class ThreadPool {
 public:
  void Submit() { util::MutexLock l(mu_); }

 private:
  util::Mutex mu_{SNB_LOCK_LEVEL("demo.pool.mu", 20)};
};

class Sched {
 public:
  void Admit(ThreadPool& pool) {
    util::MutexLock l(mu_);
    pool.Submit();  // level 10 held, blocks on level 20: sanctioned
  }
  void WaitIdle() {
    util::MutexLock l(mu_);
    idle_.Wait(mu_);  // waiting on the held mutex releases it
  }

 private:
  util::Mutex mu_{SNB_LOCK_LEVEL("demo.sched.mu", 10)};
  util::CondVar idle_;
};

// snb-lint-path: src/storage/blocky.cc
// Fixture: assert( in a comment and "abort()" in a string are not calls.
int Check(int x) {
  const char* doc = "never call abort() from storage code";
  return doc[0] + x;  // assert(x > 0) used to live here
}

// snb-lint-path: src/driver/epoch_demo.cc
// Fixture: raw Graph views escaping their GraphHandle snapshot — stored
// into a field, bound to the temporary shared_ptr, returned past the
// handle's scope, and captured by a deferred task lambda. Each is the
// use-after-snapshot-swap shape a serving-tier plan/result cache invites.
#include <memory>

namespace storage {
struct Graph {
  int n = 0;
};
}  // namespace storage

struct GraphHandle {
  std::shared_ptr<const storage::Graph> Current() const;
};

struct ThreadPool {
  template <typename F>
  void Submit(F f);
};

class PlanCache {
 public:
  void Warm(GraphHandle& handle);
  const storage::Graph& Leak(GraphHandle& handle);
  void Defer(GraphHandle& handle, ThreadPool& pool);

 private:
  const storage::Graph* graph_ = nullptr;
};

void PlanCache::Warm(GraphHandle& handle) {
  graph_ = handle.Current().get();  // field outlives the snapshot
  const storage::Graph& g = *handle.Current();  // binds to a temporary
  (void)g;
}

const storage::Graph& PlanCache::Leak(GraphHandle& handle) {
  return *handle.Current();  // the shared_ptr dies with the return
}

void PlanCache::Defer(GraphHandle& handle, ThreadPool& pool) {
  auto snap = handle.Current();
  const storage::Graph& g = *snap;
  pool.Submit([&g] { (void)g.n; });  // raw view outlives this frame
}

// snb-lint-path: tools/prober.cc
// Fixture: a site macro outside src/ means fault injection leaked out of
// the product path.
#define SNB_FAILPOINT(name) (void)(name)
void Probe() { SNB_FAILPOINT("tools.probe"); }

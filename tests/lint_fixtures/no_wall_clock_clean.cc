// snb-lint-path: src/engine/when.cc
// Fixture: prose may *mention* std::time — only the call is a finding.
// The old sed|grep gate flagged the mention in this comment: std::time.
long Now() { return 42; }

// snb-lint-path: src/analysis/audit.cc
// Fixture: src/analysis/ is exempt — the deadlock analyzer audits CondVar
// waits and names them in its reports.
struct CondVar {};
CondVar MakeOne() { return CondVar{}; }

// snb-lint-path: src/engine/counterbox.cc
// Fixture: the adjacent note explains why relaxed ordering is enough, and
// a wrapped statement is covered by a note above its *first* line.
#include <atomic>
std::atomic<int> g_hits{0};
int Load() {
  // relaxed: diagnostic counter, no payload is published through it.
  return g_hits.load(
      std::memory_order_relaxed);
}

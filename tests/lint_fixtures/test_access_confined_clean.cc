// snb-lint-path: src/storage/no_peeker.cc
// Fixture: mentioning test_access.h in prose or a string is fine.
const char* Doc() { return "see storage/test_access.h for the test hooks"; }

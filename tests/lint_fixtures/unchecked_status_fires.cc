// snb-lint-path: src/storage/dropsy.cc
// Fixture: both a silently discarded Status call and a bare (void) discard
// (the cast silences the compiler; the analyzer still wants the reason).
struct Status { bool ok(); };
Status FlushIndex();
void Tick() {
  FlushIndex();
  (void)FlushIndex();
}

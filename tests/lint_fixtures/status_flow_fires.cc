// snb-lint-path: src/driver/status_demo.cc
// Fixture: interprocedural Status drops. LogOutcome never reads its
// Status parameter, Note cannot (unnamed) — and handing a Status to such
// a helper silently swallows the caller's error, which the per-file
// unchecked-status check can never see.
namespace util {
class Status {
 public:
  bool ok() const;
};
}  // namespace util

util::Status Step();

void LogOutcome(util::Status st) {}  // never examines st

void Note(util::Status) {}  // cannot examine an unnamed parameter

util::Status Run() {
  util::Status st = Step();
  LogOutcome(st);  // the error is dropped across the call boundary
  util::Status last = Step();  // assigned, never consulted
  return Step();
}

// snb-lint-path: src/storage/dup_sites.cc
// Fixture: two sites sharing a name — crash-at-every-site loops enumerate
// the registry, and a duplicate name halves the coverage silently.
#define SNB_FAILPOINT(name) (void)(name)
void A() { SNB_FAILPOINT("storage.dup.site"); }
void B() { SNB_FAILPOINT("storage.dup.site"); }

// snb-lint-path: src/storage/peeker.cc
// Fixture: TestAccess pierces every encapsulation boundary by design; an
// include from shipping code mutates guarded internals without locks.
#include "storage/test_access.h"
int Peek() { return 0; }

// snb-lint-path: src/bi/bi03.cc
// Fixture: the poll exists but sits outside every loop and lambda — it
// runs once, not per iteration, so cancellation still cannot interrupt.
struct CancelPoller { bool Tick(); };
int RunBi3(int n, CancelPoller& poll) {
  (bool)poll.Tick();
  int acc = 0;
  for (int i = 0; i < n; ++i) acc += i;
  return acc;
}

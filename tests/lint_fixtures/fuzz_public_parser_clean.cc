// snb-lint-path: fuzz/fuzz_wal_record_ok.cc
// Fixture: exercises a real public Status-returning parser entry point.
namespace snb { namespace storage { int ScanWal(const char* p); } }
int Drive(const char* path) { return snb::storage::ScanWal(path); }

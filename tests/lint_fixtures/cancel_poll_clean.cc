// snb-lint-path: src/bi/bi04.cc
// Fixture: polls inside a ForEach-style lambda — the lambda body IS the
// hot loop body, which is why lambda scopes count as reachable.
struct CancelPoller { bool Tick(); };
template <typename F> void ForEach(int n, F f) { for (int i = 0; i < n; ++i) f(i); }
int RunBi4(int n, CancelPoller& poll) {
  int acc = 0;
  ForEach(n, [&](int i) {
    if (poll.Tick()) return;
    acc += i;
  });
  return acc;
}

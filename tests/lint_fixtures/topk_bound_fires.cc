// snb-lint-path: src/bi/bi06.cc
// Fixture: a top-k kernel that sorts first and prunes never regressed to
// the sort-everything plan — it must consult the shared bound.
struct CancelPoller { bool Tick(); };
int RunBi6(int n, CancelPoller& poll) {
  int acc = 0;
  for (int i = 0; i < n; ++i) {
    if (poll.Tick()) break;
    acc += i;
  }
  return acc;
}

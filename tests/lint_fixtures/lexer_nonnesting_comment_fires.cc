// snb-lint-path: src/storage/nested_trap.cc
// Fixture: C++ block comments do not nest — the first */ below re-opens
// code, so the assert IS live and must fire.
#include <cassert>
int Trap(int x) {
  /* outer /* inner */ assert(x > 0);
  return x;
}

// snb-lint-path: src/storage/cascade_stages.cc
// Fixture: every cascade stage owns a distinct fail-point site, so the
// crash-at-every-site fork loop kills the cascade at each stage exactly
// once and recovery is exercised against every torn prefix.
#define SNB_FAILPOINT_STATUS(name) (void)(name)
int StagePersons() { SNB_FAILPOINT_STATUS("graph.cascade.persons"); return 0; }
int StageForums() { SNB_FAILPOINT_STATUS("graph.cascade.forums"); return 0; }
int StageMessages() { SNB_FAILPOINT_STATUS("graph.cascade.messages"); return 0; }
int StageLikes() { SNB_FAILPOINT_STATUS("graph.cascade.likes"); return 0; }
int StageIndex() { SNB_FAILPOINT_STATUS("graph.cascade.index"); return 0; }

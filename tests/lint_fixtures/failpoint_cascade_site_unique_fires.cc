// snb-lint-path: src/storage/cascade_dup.cc
// Fixture: a copy-pasted cascade stage reuses another stage's site name.
// The crash-at-every-site loop enumerates the registry by name, so the
// duplicate silently halves torn-cascade coverage — two stages, one crash.
#define SNB_FAILPOINT_STATUS(name) (void)(name)
int StageForums() { SNB_FAILPOINT_STATUS("graph.cascade.forums"); return 0; }
int StageMessages() { SNB_FAILPOINT_STATUS("graph.cascade.forums"); return 0; }

// snb-lint-path: src/util/raw_macro_demo.cc
// Fixture: raw strings inside #define bodies. The preprocessor line
// (including its backslash continuation) absorbs the whole macro body, so
// the forbidden spellings inside these raw strings must never surface as
// live tokens — the old sed|grep gate tripped on exactly this.
#define DEMO_PATTERN R"(assert(x) && rand() && std::mutex)"
#define DEMO_MULTI                                  \
  R"(time(nullptr) inside a continued macro body    \
     with a second line of std::condition_variable)"

inline const char* DemoPattern() { return DEMO_PATTERN; }
inline const char* DemoMulti() { return DEMO_MULTI; }

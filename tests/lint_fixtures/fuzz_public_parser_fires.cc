// snb-lint-path: fuzz/fuzz_private_helper.cc
// Fixture: drives no public entry point and reaches past the API.
#include "storage/wal.cc"
namespace snb { namespace internal { int Tweak(int x); } }
int Drive(const unsigned char* data, unsigned long n) {
  return snb::internal::Tweak(static_cast<int>(n));
}

// snb-lint-path: src/engine/counterbox.cc
// Fixture: memory_order_relaxed outside the reviewed homes with no note.
#include <atomic>
std::atomic<int> g_hits{0};
int Load() { return g_hits.load(std::memory_order_relaxed); }

// snb-lint-path: tests/crash_test.cc
// Fixture: tests inject through the arming API — that is the design.
namespace failpoint { void Arm(const char* name, int spec); }
void SetUp() { failpoint::Arm("storage.wal.append", 1); }

// snb-lint-path: src/util/concat_demo.cc
// Fixture: adjacent string-literal concatenation. Each piece lexes as its
// own string token; the forbidden spellings that appear when a reader (or
// a regex) glues the pieces together must not surface as identifiers.
inline const char* Banner() {
  return "assert("
         "x) && std::mutex "
         "and rand()";
}

inline const char* Mixed() {
  return R"(time()" "(nullptr)) and " R"(std::condition_variable)";
}

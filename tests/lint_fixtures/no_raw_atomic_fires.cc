// snb-lint-path: src/bi/bi05.cc
// Fixture: cross-slot state in a kernel goes through engine/ helpers whose
// memory-order story is reviewed in one place — not a raw std::atomic.
#include <atomic>
std::atomic<int> g_count{0};

// snb-lint-path: src/sched/bare_fields.h
// Fixture: a mutex-owning class with an unannotated mutable field.
#define SNB_GUARDED_BY(x)
struct Mutex {};
class Pool {
 public:
  void Set(int v);
 private:
  Mutex mu_;
  int jobs_ SNB_GUARDED_BY(mu_);
  int racy_count_;
};

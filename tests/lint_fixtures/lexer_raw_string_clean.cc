// snb-lint-path: src/engine/rawstr.cc
// Fixture: raw strings and escaped quotes are content, not code. Every
// forbidden spelling below lives inside a literal.
const char* Sql() {
  return R"sql(
    assert(x > 0); std::mutex guard; rand(); std::time(nullptr);
  )sql";
}
const char* Quoted() { return "she wrote \"assert(1)\" and \\"; }

// snb-lint-path: src/bi/bi_helper.cc
// Fixture: raw randomness in query code — Power@SF runs must be seeded.
#include <cstdlib>
int PickSeedless() { return rand() % 7; }

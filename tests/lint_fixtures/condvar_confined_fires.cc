// snb-lint-path: src/engine/waiter.cc
// Fixture: a CondVar outside src/util/ re-opens the hand-rolled-wait bug.
struct W { int CondVar; };
void Wait(W& w) { w.CondVar = 1; }

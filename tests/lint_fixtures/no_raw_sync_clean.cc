// snb-lint-path: src/sched/safe.h
// Fixture: util::Mutex carries the clang capability annotations.
struct Safe {
  // std::mutex would be wrong here — the mention in this comment and the
  // string below must not trip the check.
  const char* doc = "never use std::mutex directly";
  int x = 0;
};

// snb-lint-path: src/engine/proper_allow.cc
// Fixture: a well-formed allow — known check, colon, non-empty reason —
// suppresses the finding on the next line and produces none of its own.
#include <cassert>
// snb-lint-allow(no-raw-assert): fixture demonstrating the allow syntax
int Check(int x) { assert(x > 0); return x; }

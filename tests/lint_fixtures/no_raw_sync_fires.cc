// snb-lint-path: src/sched/racy.h
// Fixture: a raw std::mutex member is invisible to -Wthread-safety.
#include <mutex>
struct Racy {
  std::mutex mu;
  int x = 0;
};

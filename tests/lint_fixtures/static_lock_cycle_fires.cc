// snb-lint-path: src/sched/cycle_demo.cc
// Fixture: a deliberate A->B / B->A lock-order inversion, each side hidden
// behind a helper function — only the interprocedural summary sees both
// edges, and the finding must carry the full static call chain for each.
#define SNB_LOCK_SITE(name) name
#define SNB_GUARDED_BY(x)

namespace util {
struct Mutex {};
struct MutexLock {
  explicit MutexLock(Mutex& m);
};
}  // namespace util

class Pair {
 public:
  void AThenB();
  void BThenA();

 private:
  void HelpLockA();
  void HelpLockB();
  util::Mutex a_{SNB_LOCK_SITE("demo.a")};
  util::Mutex b_{SNB_LOCK_SITE("demo.b")};
};

void Pair::HelpLockA() { util::MutexLock l(a_); }
void Pair::HelpLockB() { util::MutexLock l(b_); }

void Pair::AThenB() {
  util::MutexLock l(a_);
  HelpLockB();  // demo.a -> demo.b
}

void Pair::BThenA() {
  util::MutexLock l(b_);
  HelpLockA();  // demo.b -> demo.a: closes the cycle
}

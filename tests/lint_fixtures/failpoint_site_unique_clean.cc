// snb-lint-path: src/storage/uniq_sites.cc
// Fixture: every site name is distinct.
#define SNB_FAILPOINT(name) (void)(name)
void A() { SNB_FAILPOINT("storage.uniq.a"); }
void B() { SNB_FAILPOINT("storage.uniq.b"); }

// snb-lint-path: src/engine/sloppy_allows.cc
// Fixture: a malformed allow is never silent — unknown check names and
// missing reasons are findings themselves.
// snb-lint-allow(no-such-check): reason for a check that does not exist
// snb-lint-allow(no-raw-assert)
int Nothing() { return 0; }

// snb-lint-path: tests/cascade_crash_test.cc
// Fixture: the torn-cascade tests arm each stage site and disarm on exit —
// that is the sanctioned path for failure injection.
namespace failpoint {
void Arm(const char* name, int spec);
void DisarmAll();
}  // namespace failpoint
void SetUp() { failpoint::Arm("graph.cascade.likes", 1); }
void TearDown() { failpoint::DisarmAll(); }

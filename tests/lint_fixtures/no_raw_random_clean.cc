// snb-lint-path: src/datagen/rng_home.cc
// Fixture: datagen owns its own seeding policy, so rand() is allowed here.
#include <cstdlib>
int PickDatagen() { return rand() % 7; }

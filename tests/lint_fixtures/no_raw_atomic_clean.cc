// snb-lint-path: src/bi/cancel.h
// Fixture: cancel.h owns the one sanctioned std::atomic in src/bi/.
#include <atomic>
std::atomic<bool> g_cancelled{false};

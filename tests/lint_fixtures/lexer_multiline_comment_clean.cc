// snb-lint-path: src/engine/commented_out.cc
// Fixture: the regression that motivated the analyzer. The old lint gate
// stripped /* */ only when both ends sat on one line, so the body of this
// multi-line block comment looked like live code to the greps:
/*
std::mutex leftover_mutex;
assert(leftover);
std::atomic<int> leftover_count;
*/
int Live() { return 1; }

// snb-lint-path: src/sched/annotated_fields.h
// Fixture: every mutable field is annotated, const, or carries an allow
// with its synchronization story; operator=(const Mutex&) = delete below
// must not read as a Mutex-typed field (that once made util::Mutex flag
// its own members).
#define SNB_GUARDED_BY(x)
struct Mutex {
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;
};
class Pool {
 public:
  void Set(int v);
 private:
  Mutex mu_;
  int jobs_ SNB_GUARDED_BY(mu_);
  const int capacity_ = 8;
  // snb-lint-allow(guarded-by): immutable after construction
  int worker_count_ = 0;
};

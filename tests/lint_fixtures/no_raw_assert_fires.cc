// snb-lint-path: src/storage/blocky.cc
// Fixture: raw assert loses the SNB_CHECK diagnostics and NDEBUG policy.
#include <cassert>
int Check(int x) {
  assert(x > 0);
  return x;
}

// snb-lint-path: src/engine/when.cc
// Fixture: wall-clock time in engine code makes results run-dependent.
#include <ctime>
long Now() { return std::time(nullptr); }

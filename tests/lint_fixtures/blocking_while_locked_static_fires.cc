// snb-lint-path: src/util/blocking_demo.cc
// Fixture: blocking operations reachable while a lock is held and the
// (held, blocking) pair is not sanctioned by declared levels — a CondVar
// wait on a *different* mutex, and file I/O (never sanctioned), one of
// them hidden behind a helper so only the summary sees it.
#define SNB_LOCK_SITE(name) name
#define SNB_GUARDED_BY(x)

namespace util {
struct Mutex {};
struct MutexLock {
  explicit MutexLock(Mutex& m);
};
struct CondVar {
  void Wait(Mutex& m);
};
}  // namespace util

class Cache {
 public:
  void Publish();
  void Flush();

 private:
  void SyncToDisk();
  util::Mutex mu_{SNB_LOCK_SITE("demo.cache.mu")};
  util::Mutex io_mu_{SNB_LOCK_SITE("demo.io.mu")};
  util::CondVar ready_;
};

void Cache::SyncToDisk() { fsync(0); }

void Cache::Publish() {
  util::MutexLock l(mu_);
  ready_.Wait(io_mu_);  // waits on demo.io.mu while demo.cache.mu is held
}

void Cache::Flush() {
  util::MutexLock l(mu_);
  SyncToDisk();  // file I/O while demo.cache.mu is held, via the helper
}

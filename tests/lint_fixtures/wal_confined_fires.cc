// snb-lint-path: src/storage/sidedoor.cc
// Fixture: a second code path that opens wal.log by name could break the
// framing or the torn-tail truncation invariant unnoticed.
const char* SideDoor() { return "state/wal.log"; }

// snb-lint-path: src/driver/status_flow_demo.cc
// Fixture: the sanctioned Status flows — a helper that examines its
// parameter, accumulator locals whose last write is always followed by a
// read, and branch-assigned Status returned afterwards (the check is
// branch-insensitive on purpose: only a *final* unread write fires).
namespace util {
class Status {
 public:
  bool ok() const;
};
}  // namespace util

util::Status Step();
void Record(bool ok);

void LogOutcome(util::Status st) { Record(st.ok()); }

util::Status Forward() {
  util::Status st = Step();
  if (!st.ok()) return st;
  st = Step();
  return st;
}

util::Status Choose(bool a) {
  util::Status st;
  if (a) {
    st = Step();
  } else {
    st = Step();
  }
  return st;
}

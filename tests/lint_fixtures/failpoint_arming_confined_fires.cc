// snb-lint-path: src/storage/self_harm.cc
// Fixture: a shipped binary that arms its own failure injection is a
// latent outage — arming is reserved for tests.
namespace failpoint { void Arm(const char* name, int spec); }
void Boot() { failpoint::Arm("storage.wal.append", 1); }

// Unit tests for Date / DateTime arithmetic and serialization (spec
// Table 2.1 formats).

#include <gtest/gtest.h>

#include "core/date_time.h"

namespace snb::core {
namespace {

TEST(DateTest, EpochIsZero) {
  EXPECT_EQ(DateFromCivil(1970, 1, 1), 0);
  CivilDate c = CivilFromDate(0);
  EXPECT_EQ(c.year, 1970);
  EXPECT_EQ(c.month, 1);
  EXPECT_EQ(c.day, 1);
}

TEST(DateTest, KnownDates) {
  EXPECT_EQ(DateFromCivil(2010, 1, 1), 14610);
  EXPECT_EQ(DateFromCivil(1969, 12, 31), -1);
}

TEST(DateTest, LeapYearHandling) {
  Date feb29 = DateFromCivil(2012, 2, 29);
  Date mar1 = DateFromCivil(2012, 3, 1);
  EXPECT_EQ(mar1 - feb29, 1);
  // 2011 is not a leap year: Feb 28 → Mar 1 is one day.
  EXPECT_EQ(DateFromCivil(2011, 3, 1) - DateFromCivil(2011, 2, 28), 1);
}

class CivilRoundtripTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(CivilRoundtripTest, Roundtrips) {
  auto [y, m, d] = GetParam();
  Date date = DateFromCivil(y, m, d);
  CivilDate c = CivilFromDate(date);
  EXPECT_EQ(c.year, y);
  EXPECT_EQ(c.month, m);
  EXPECT_EQ(c.day, d);
}

INSTANTIATE_TEST_SUITE_P(
    Dates, CivilRoundtripTest,
    ::testing::Values(std::make_tuple(1970, 1, 1),
                      std::make_tuple(2000, 2, 29),
                      std::make_tuple(2010, 12, 31),
                      std::make_tuple(2013, 6, 15),
                      std::make_tuple(1900, 3, 1),
                      std::make_tuple(2100, 7, 4),
                      std::make_tuple(1969, 12, 31)));

TEST(DateTimeTest, ComponentsExtract) {
  DateTime dt = DateTimeFromCivil(2012, 7, 14, 13, 45, 59, 123);
  EXPECT_EQ(Year(dt), 2012);
  EXPECT_EQ(Month(dt), 7);
  EXPECT_EQ(DayOfMonth(dt), 14);
}

TEST(DateTimeTest, DateConversionIsMidnight) {
  Date d = DateFromCivil(2011, 3, 5);
  DateTime dt = DateTimeFromDate(d);
  EXPECT_EQ(FormatDateTime(dt), "2011-03-05T00:00:00.000+0000");
  EXPECT_EQ(DateFromDateTime(dt), d);
  EXPECT_EQ(DateFromDateTime(dt + kMillisPerDay - 1), d);
  EXPECT_EQ(DateFromDateTime(dt + kMillisPerDay), d + 1);
}

TEST(DateTimeTest, NegativeFloorDivision) {
  // One millisecond before the epoch is still 1969-12-31.
  EXPECT_EQ(DateFromDateTime(-1), -1);
}

TEST(FormatTest, DateFormat) {
  EXPECT_EQ(FormatDate(DateFromCivil(2010, 1, 1)), "2010-01-01");
  EXPECT_EQ(FormatDate(DateFromCivil(1995, 11, 23)), "1995-11-23");
}

TEST(FormatTest, DateTimeFormat) {
  DateTime dt = DateTimeFromCivil(2012, 2, 29, 23, 59, 59, 999);
  EXPECT_EQ(FormatDateTime(dt), "2012-02-29T23:59:59.999+0000");
}

TEST(ParseTest, DateRoundtrip) {
  Date d;
  ASSERT_TRUE(ParseDate("2012-02-29", &d));
  EXPECT_EQ(d, DateFromCivil(2012, 2, 29));
  EXPECT_EQ(FormatDate(d), "2012-02-29");
}

TEST(ParseTest, DateRejectsMalformed) {
  Date d;
  EXPECT_FALSE(ParseDate("2012/02/29", &d));
  EXPECT_FALSE(ParseDate("2012-2-29", &d));
  EXPECT_FALSE(ParseDate("2012-13-01", &d));
  EXPECT_FALSE(ParseDate("2012-00-01", &d));
  EXPECT_FALSE(ParseDate("", &d));
  EXPECT_FALSE(ParseDate("abcd-ef-gh", &d));
}

TEST(ParseTest, DateTimeRoundtrip) {
  DateTime dt = DateTimeFromCivil(2011, 8, 17, 4, 5, 6, 78);
  DateTime parsed;
  ASSERT_TRUE(ParseDateTime(FormatDateTime(dt), &parsed));
  EXPECT_EQ(parsed, dt);
}

TEST(ParseTest, DateTimeWithoutTimezoneSuffix) {
  DateTime dt;
  ASSERT_TRUE(ParseDateTime("2010-05-06T07:08:09.010", &dt));
  EXPECT_EQ(dt, DateTimeFromCivil(2010, 5, 6, 7, 8, 9, 10));
}

TEST(ParseTest, DateTimeRejectsMalformed) {
  DateTime dt;
  EXPECT_FALSE(ParseDateTime("2010-05-06 07:08:09.010", &dt));
  EXPECT_FALSE(ParseDateTime("2010-05-06T25:08:09.010", &dt));
  EXPECT_FALSE(ParseDateTime("2010-05-06T07:68:09.010", &dt));
  EXPECT_FALSE(ParseDateTime("short", &dt));
}

TEST(MonthsSpanTest, SpecExample) {
  // Spec BI 21: creationDate Jan 31, endDate Mar 1 → 3 months.
  DateTime from = DateTimeFromCivil(2011, 1, 31);
  DateTime to = DateTimeFromCivil(2011, 3, 1);
  EXPECT_EQ(MonthsSpanInclusive(from, to), 3);
}

TEST(MonthsSpanTest, SameMonthIsOne) {
  EXPECT_EQ(MonthsSpanInclusive(DateTimeFromCivil(2011, 5, 1),
                                DateTimeFromCivil(2011, 5, 31)),
            1);
}

TEST(MonthsSpanTest, AcrossYearBoundary) {
  EXPECT_EQ(MonthsSpanInclusive(DateTimeFromCivil(2010, 12, 15),
                                DateTimeFromCivil(2011, 1, 15)),
            2);
  EXPECT_EQ(MonthsSpanInclusive(DateTimeFromCivil(2010, 1, 1),
                                DateTimeFromCivil(2012, 12, 31)),
            36);
}

TEST(MinutesBetweenTest, WholeMinutes) {
  DateTime a = DateTimeFromCivil(2011, 1, 1, 10, 0, 0, 0);
  DateTime b = DateTimeFromCivil(2011, 1, 1, 10, 42, 30, 0);
  EXPECT_EQ(MinutesBetween(a, b), 42);  // truncated
}

}  // namespace
}  // namespace snb::core

// Crash-recovery audit for the batched refresh path (LDBC auditing rule:
// a system must survive a crash mid-refresh and recover to the last
// committed batch).
//
// The core test rehearses the refresh path once to register every
// fail-point site, then loops "crash here" over each wal.* / refresh.* /
// checkpoint.* / csv.* site in a forked child (simulated power loss via
// _Exit — no buffers flushed), recovers the store in the parent, resumes
// the refresh, and requires BI 1/6/12 results bit-equal to an uncrashed
// reference run. Also covers: WAL round-trip, torn-tail truncation,
// transient-error retry with concurrent readers on the published snapshot.

#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bi/bi.h"
#include "core/date_time.h"
#include "datagen/datagen.h"
#include "datagen/delete_stream.h"
#include "driver/refresh.h"
#include "interactive/updates.h"
#include "storage/export.h"
#include "storage/graph.h"
#include "storage/recovery.h"
#include "storage/wal.h"
#include "util/check.h"
#include "util/failpoint.h"
#include "validate/validator.h"

namespace snb {
namespace {

using driver::GraphHandle;
using driver::RefreshConfig;
using driver::RunBatchedRefresh;

// ---------------------------------------------------------------------------
// Shared fixture data (generated once per process).
// ---------------------------------------------------------------------------

struct SharedData {
  core::SocialNetwork network;
  std::vector<datagen::UpdateEvent> updates;
  core::Date first_day = 0;
};

const SharedData& Fixture() {
  static SharedData* data = [] {
    datagen::DatagenConfig cfg;
    cfg.num_persons = 100;
    cfg.activity_scale = 0.3;
    datagen::GeneratedData gen = datagen::Generate(cfg);
    auto* d = new SharedData();
    d->network = std::move(gen.network);
    // A bounded slice keeps the ~30 forked crash runs fast; every run
    // (reference, crashed, resumed) uses the same slice, so comparisons
    // stay exact.
    size_t n = std::min<size_t>(gen.updates.size(), 400);
    d->updates.assign(gen.updates.begin(), gen.updates.begin() + n);
    d->first_day = core::DateFromDateTime(d->updates.front().timestamp);
    // Derived deep deletes ride at the tail of the stream so the refresh
    // path runs real cascades (registering the graph.delete.* fail-point
    // sites). Every DEL targets a bulk-loaded entity; shifting their
    // timestamps past the last insert keeps them in their own trailing
    // batches, so no insert ever references an entity a cascade removed.
    datagen::DeleteStreamOptions del_options;
    del_options.seed = 7;
    std::vector<datagen::UpdateEvent> deletes =
        datagen::DeriveDeleteStream(d->network, del_options);
    SNB_CHECK(!deletes.empty());
    core::DateTime offset =
        d->updates.back().timestamp + core::kMillisPerDay -
        deletes.front().timestamp;
    if (offset > 0) {
      for (datagen::UpdateEvent& event : deletes) event.timestamp += offset;
    }
    d->updates.insert(d->updates.end(), deletes.begin(), deletes.end());
    return d;
  }();
  return *data;
}

core::SocialNetwork CopyNetwork(const core::SocialNetwork& net) {
  return net;
}

// BI 1 / 6 / 12 digests — the "bit-equal results" probe set.
struct BiProbeResults {
  std::vector<bi::Bi1Row> bi1;
  std::vector<bi::Bi6Row> bi6;
  std::vector<bi::Bi12Row> bi12;

  bool operator==(const BiProbeResults&) const = default;
};

BiProbeResults RunProbes(const storage::Graph& graph) {
  BiProbeResults r;
  r.bi1 = bi::RunBi1(graph, {core::DateFromCivil(2030, 1, 1)});
  bi::Bi6Params p6;
  p6.tag = Fixture().network.tags.front().name;
  r.bi6 = bi::RunBi6(graph, p6);
  bi::Bi12Params p12;
  p12.date = core::DateFromCivil(2000, 1, 1);
  p12.like_threshold = 0;
  r.bi12 = bi::RunBi12(graph, p12);
  return r;
}

std::string FreshDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "/snb_walrec_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

// Applies `updates` batch-by-batch (same whole-day grouping as the refresh
// driver) and returns the BI 1 digest after every published batch, plus the
// initial state — the exact set of states an atomic-publication reader may
// legally observe.
std::vector<std::vector<bi::Bi1Row>> ReferenceSnapshots(
    const core::SocialNetwork& net,
    const std::vector<datagen::UpdateEvent>& updates, int batch_days) {
  storage::Graph graph(CopyNetwork(net));
  bi::Bi1Params probe{core::DateFromCivil(2030, 1, 1)};
  std::vector<std::vector<bi::Bi1Row>> snapshots;
  snapshots.push_back(bi::RunBi1(graph, probe));
  int64_t current_group = std::numeric_limits<int64_t>::min();
  for (const datagen::UpdateEvent& event : updates) {
    int64_t group = core::DateFromDateTime(event.timestamp) / batch_days;
    if (group != current_group && current_group != std::numeric_limits<int64_t>::min()) {
      snapshots.push_back(bi::RunBi1(graph, probe));
    }
    current_group = group;
    SNB_CHECK(interactive::ApplyUpdate(graph, event).ok());
  }
  snapshots.push_back(bi::RunBi1(graph, probe));
  return snapshots;
}

class WalRecoveryTest : public ::testing::Test {
 protected:
  void TearDown() override { util::failpoint::DisarmAll(); }
};

// ---------------------------------------------------------------------------
// WAL format round-trip and torn-tail truncation.
// ---------------------------------------------------------------------------

TEST_F(WalRecoveryTest, WalRoundTripPreservesBatches) {
  const SharedData& data = Fixture();
  ASSERT_GE(data.updates.size(), 6u);
  std::string dir = FreshDir("roundtrip");
  std::filesystem::create_directories(dir);
  std::string path = storage::WalPath(dir);

  storage::Wal wal;
  ASSERT_TRUE(wal.Open(path).ok());
  ASSERT_TRUE(wal.BatchBegin(100).ok());
  ASSERT_TRUE(wal.NoteDeleteBatch(100, 3).ok());
  for (size_t i = 0; i < 3; ++i) {
    ASSERT_TRUE(wal.Append(data.updates[i]).ok());
  }
  ASSERT_TRUE(wal.BatchCommit(100).ok());
  ASSERT_TRUE(wal.BatchBegin(101).ok());
  for (size_t i = 3; i < 6; ++i) {
    ASSERT_TRUE(wal.Append(data.updates[i]).ok());
  }
  ASSERT_TRUE(wal.BatchCommit(101).ok());
  ASSERT_TRUE(wal.Close().ok());

  auto scan_or = storage::ScanWal(path);
  ASSERT_TRUE(scan_or.ok()) << scan_or.status().ToString();
  const storage::WalScan& scan = scan_or.value();
  EXPECT_FALSE(scan.torn_tail) << scan.tail_reason;
  EXPECT_EQ(scan.valid_bytes, scan.total_bytes);
  ASSERT_EQ(scan.batches.size(), 2u);
  EXPECT_EQ(scan.batches[0].day, 100);
  EXPECT_EQ(scan.batches[1].day, 101);
  ASSERT_EQ(scan.batches[0].events.size(), 3u);
  ASSERT_EQ(scan.batches[1].events.size(), 3u);
  EXPECT_EQ(scan.batches[0].delete_count, 3u);
  EXPECT_EQ(scan.batches[1].delete_count, 0u);
  for (size_t i = 0; i < 6; ++i) {
    const datagen::UpdateEvent& got =
        scan.batches[i / 3].events[i % 3];
    EXPECT_EQ(got.kind, data.updates[i].kind) << "event " << i;
    EXPECT_EQ(got.timestamp, data.updates[i].timestamp) << "event " << i;
  }
}

TEST_F(WalRecoveryTest, UncommittedBatchBecomesTornTail) {
  const SharedData& data = Fixture();
  std::string dir = FreshDir("uncommitted");
  std::filesystem::create_directories(dir);
  std::string path = storage::WalPath(dir);

  storage::Wal wal;
  ASSERT_TRUE(wal.Open(path).ok());
  ASSERT_TRUE(wal.BatchBegin(7).ok());
  ASSERT_TRUE(wal.Append(data.updates[0]).ok());
  ASSERT_TRUE(wal.BatchCommit(7).ok());
  uint64_t committed_bytes = wal.bytes_written();
  // Batch 8 never commits — simulating a crash between append and commit.
  ASSERT_TRUE(wal.BatchBegin(8).ok());
  ASSERT_TRUE(wal.Append(data.updates[1]).ok());
  ASSERT_TRUE(wal.Close().ok());

  auto scan_or = storage::ScanWal(path);
  ASSERT_TRUE(scan_or.ok());
  EXPECT_TRUE(scan_or.value().torn_tail);
  EXPECT_EQ(scan_or.value().valid_bytes, committed_bytes);
  ASSERT_EQ(scan_or.value().batches.size(), 1u);

  // Truncation makes the next scan clean.
  ASSERT_TRUE(storage::TruncateWal(path, scan_or.value().valid_bytes).ok());
  auto rescan_or = storage::ScanWal(path);
  ASSERT_TRUE(rescan_or.ok());
  EXPECT_FALSE(rescan_or.value().torn_tail);
  EXPECT_EQ(rescan_or.value().batches.size(), 1u);
}

TEST_F(WalRecoveryTest, GarbageTailIsDetectedAndCut) {
  const SharedData& data = Fixture();
  std::string dir = FreshDir("garbage");
  std::filesystem::create_directories(dir);
  std::string path = storage::WalPath(dir);

  storage::Wal wal;
  ASSERT_TRUE(wal.Open(path).ok());
  ASSERT_TRUE(wal.BatchBegin(1).ok());
  ASSERT_TRUE(wal.Append(data.updates[0]).ok());
  ASSERT_TRUE(wal.BatchCommit(1).ok());
  uint64_t committed_bytes = wal.bytes_written();
  ASSERT_TRUE(wal.Close().ok());

  // Half a record header of garbage — a torn write from a dying kernel.
  std::FILE* f = std::fopen(path.c_str(), "ab");
  ASSERT_NE(f, nullptr);
  std::fputs("\x03\x00", f);
  std::fclose(f);

  auto scan_or = storage::ScanWal(path);
  ASSERT_TRUE(scan_or.ok());
  EXPECT_TRUE(scan_or.value().torn_tail);
  EXPECT_EQ(scan_or.value().valid_bytes, committed_bytes);
  EXPECT_EQ(scan_or.value().batches.size(), 1u);
}

TEST_F(WalRecoveryTest, AbortBatchCutsAFailedBegin) {
  const SharedData& data = Fixture();
  std::string dir = FreshDir("abortbegin");
  std::filesystem::create_directories(dir);
  std::string path = storage::WalPath(dir);

  storage::Wal wal;
  ASSERT_TRUE(wal.Open(path).ok());
  ASSERT_TRUE(wal.BatchBegin(1).ok());
  ASSERT_TRUE(wal.Append(data.updates[0]).ok());
  ASSERT_TRUE(wal.BatchCommit(1).ok());
  uint64_t committed_bytes = wal.bytes_written();

  // Tear the *BatchBegin record itself* (error mode leaves the torn prefix
  // behind), then abort: the log must shrink back to the committed prefix.
  util::failpoint::Spec spec;
  spec.max_fires = 1;
  util::failpoint::Arm("wal.append.short_write", spec);
  EXPECT_FALSE(wal.BatchBegin(2).ok());
  EXPECT_GT(wal.bytes_written(), committed_bytes);
  ASSERT_TRUE(wal.AbortBatch().ok());
  ASSERT_TRUE(wal.Close().ok());

  auto scan_or = storage::ScanWal(path);
  ASSERT_TRUE(scan_or.ok());
  EXPECT_FALSE(scan_or.value().torn_tail) << scan_or.value().tail_reason;
  EXPECT_EQ(scan_or.value().valid_bytes, committed_bytes);
}

// ---------------------------------------------------------------------------
// Crash at every site → recover → resume → bit-equal results.
// ---------------------------------------------------------------------------

TEST_F(WalRecoveryTest, CrashAtEverySiteRecoversToReferenceResults) {
  const SharedData& data = Fixture();
  RefreshConfig config;
  config.batch_days = 7;
  config.checkpoint_every_batches = 2;

  // Reference (uncrashed) run. Doubles as the rehearsal that registers
  // every fail-point site on the refresh path.
  std::string ref_dir = FreshDir("reference");
  ASSERT_TRUE(
      storage::InitStore(ref_dir, data.network, data.first_day - 1).ok());
  GraphHandle ref_handle(
      std::make_shared<storage::Graph>(CopyNetwork(data.network)));
  auto ref_report_or =
      RunBatchedRefresh(ref_dir, ref_handle, data.updates, config);
  ASSERT_TRUE(ref_report_or.ok()) << ref_report_or.status().ToString();
  ASSERT_GT(ref_report_or.value().batches_applied, 2u);
  ASSERT_GT(ref_report_or.value().checkpoints_written, 0u);
  const BiProbeResults reference = RunProbes(*ref_handle.Current());

  // Enumerate the rehearsed sites on the durability path.
  std::vector<std::string> sites;
  for (const std::string& site : util::failpoint::RegisteredSites()) {
    if (site.rfind("wal.", 0) == 0 || site.rfind("refresh.", 0) == 0 ||
        site.rfind("checkpoint.", 0) == 0 || site.rfind("csv.", 0) == 0 ||
        site.rfind("graph.", 0) == 0) {
      sites.push_back(site);
    }
  }
  ASSERT_GE(sites.size(), 8u)
      << "refresh path should expose >= 8 crash sites";
  // The rehearsal ran real cascades, so every cascade stage must be here.
  for (const char* required :
       {"graph.delete.person", "graph.delete.forums",
        "graph.delete.messages", "graph.delete.likes",
        "graph.delete.index"}) {
    ASSERT_NE(std::find(sites.begin(), sites.end(), std::string(required)),
              sites.end())
        << required << " never registered — the fixture stream ran no "
        << "cascade through that stage";
  }

  // Crash on the site's 1st hit (cold state) and 3rd hit (mid-stream, some
  // batches already durable). Single-hit sites simply complete on the 3rd-
  // hit flavor — still a valid recovery case (clean store, full WAL).
  for (const std::string& site : sites) {
    for (int nth : {1, 3}) {
      SCOPED_TRACE(site + " @" + std::to_string(nth));
      std::string dir =
          FreshDir("crash_" + site + "_" + std::to_string(nth));
      ASSERT_TRUE(
          storage::InitStore(dir, data.network, data.first_day - 1).ok());

      pid_t pid = fork();
      ASSERT_GE(pid, 0) << "fork failed";
      if (pid == 0) {
        // Child: simulated process that dies mid-refresh. No gtest here —
        // it reports through its exit status only.
        util::failpoint::Spec spec;
        spec.mode = util::failpoint::Mode::kCrash;
        spec.nth = nth;
        util::failpoint::Arm(site, spec);
        GraphHandle handle(
            std::make_shared<storage::Graph>(CopyNetwork(data.network)));
        auto report_or = RunBatchedRefresh(dir, handle, data.updates, config);
        _exit(report_or.ok() ? 0 : 7);
      }
      int wstatus = 0;
      ASSERT_EQ(waitpid(pid, &wstatus, 0), pid);
      ASSERT_TRUE(WIFEXITED(wstatus));
      int code = WEXITSTATUS(wstatus);
      ASSERT_TRUE(code == util::failpoint::CrashExitCode() || code == 0)
          << "child exited " << code;
      if (nth == 1) {
        // Every rehearsed site is hit at least once, so the cold flavor
        // must actually crash.
        ASSERT_EQ(code, util::failpoint::CrashExitCode());
      }

      // Recover (validates the graph by default), then resume the stream.
      auto recovered_or = storage::RecoveryManager(dir).Recover();
      ASSERT_TRUE(recovered_or.ok()) << recovered_or.status().ToString();
      storage::RecoveryResult recovered = std::move(recovered_or.value());
      ASSERT_NE(recovered.graph, nullptr);

      GraphHandle handle(std::shared_ptr<const storage::Graph>(
          std::move(recovered.graph)));
      RefreshConfig resume = config;
      resume.resume_after_day = recovered.last_committed_day;
      auto resumed_or = RunBatchedRefresh(dir, handle, data.updates, resume);
      ASSERT_TRUE(resumed_or.ok()) << resumed_or.status().ToString();

      EXPECT_EQ(RunProbes(*handle.Current()), reference)
          << "recovered+resumed store diverges from uncrashed reference";
    }
  }
}

// A second recovery of an already-recovered store is a clean no-op load.
TEST_F(WalRecoveryTest, RecoveryIsIdempotent) {
  const SharedData& data = Fixture();
  RefreshConfig config;
  config.batch_days = 7;

  std::string dir = FreshDir("idempotent");
  ASSERT_TRUE(
      storage::InitStore(dir, data.network, data.first_day - 1).ok());
  GraphHandle handle(
      std::make_shared<storage::Graph>(CopyNetwork(data.network)));
  auto report_or = RunBatchedRefresh(dir, handle, data.updates, config);
  ASSERT_TRUE(report_or.ok());
  const BiProbeResults reference = RunProbes(*handle.Current());

  for (int round = 0; round < 2; ++round) {
    auto recovered_or = storage::RecoveryManager(dir).Recover();
    ASSERT_TRUE(recovered_or.ok()) << recovered_or.status().ToString();
    EXPECT_EQ(recovered_or.value().last_committed_day,
              report_or.value().last_committed_day);
    EXPECT_EQ(recovered_or.value().truncated_bytes, 0u);
    EXPECT_EQ(RunProbes(*recovered_or.value().graph), reference);
  }
}

TEST_F(WalRecoveryTest, ResumeSkipsAlreadyCommittedBatches) {
  const SharedData& data = Fixture();
  RefreshConfig config;
  config.batch_days = 7;

  std::string dir = FreshDir("resume");
  ASSERT_TRUE(
      storage::InitStore(dir, data.network, data.first_day - 1).ok());
  GraphHandle handle(
      std::make_shared<storage::Graph>(CopyNetwork(data.network)));
  auto first_or = RunBatchedRefresh(dir, handle, data.updates, config);
  ASSERT_TRUE(first_or.ok());

  RefreshConfig resume = config;
  resume.resume_after_day = first_or.value().last_committed_day;
  auto second_or = RunBatchedRefresh(dir, handle, data.updates, resume);
  ASSERT_TRUE(second_or.ok());
  EXPECT_EQ(second_or.value().batches_applied, 0u);
  EXPECT_EQ(second_or.value().events_skipped, data.updates.size());
}

// ---------------------------------------------------------------------------
// Transient failures: retry with backoff while concurrent readers keep
// serving the pre-batch snapshot (never a half-applied day).
// ---------------------------------------------------------------------------

TEST_F(WalRecoveryTest, TransientApplyFailureRetriesWhileReadersServe) {
  const SharedData& data = Fixture();
  RefreshConfig config;
  config.batch_days = 7;

  const auto legal_states =
      ReferenceSnapshots(data.network, data.updates, config.batch_days);

  std::string dir = FreshDir("transient");
  ASSERT_TRUE(
      storage::InitStore(dir, data.network, data.first_day - 1).ok());
  GraphHandle handle(
      std::make_shared<storage::Graph>(CopyNetwork(data.network)));

  // First two apply attempts of the first batch fail transiently; the
  // third succeeds after backoff.
  util::failpoint::Spec spec;
  spec.max_fires = 2;
  util::failpoint::Arm("refresh.apply", spec);

  std::atomic<bool> done{false};
  std::atomic<size_t> reads{0};
  std::atomic<bool> reader_ok{true};
  std::thread reader([&] {
    bi::Bi1Params probe{core::DateFromCivil(2030, 1, 1)};
    while (!done.load(std::memory_order_acquire)) {
      std::shared_ptr<const storage::Graph> snapshot = handle.Current();
      std::vector<bi::Bi1Row> rows = bi::RunBi1(*snapshot, probe);
      if (std::find(legal_states.begin(), legal_states.end(), rows) ==
          legal_states.end()) {
        reader_ok.store(false, std::memory_order_release);
      }
      ++reads;
    }
  });

  auto report_or = RunBatchedRefresh(dir, handle, data.updates, config);
  done.store(true, std::memory_order_release);
  reader.join();

  ASSERT_TRUE(report_or.ok()) << report_or.status().ToString();
  EXPECT_GE(report_or.value().retries, 2u);
  EXPECT_GT(reads.load(), 0u);
  EXPECT_TRUE(reader_ok.load())
      << "a reader observed a state that no committed batch produces "
         "(half-applied day escaped the shadow swap)";
  EXPECT_EQ(bi::RunBi1(*handle.Current(),
                       {core::DateFromCivil(2030, 1, 1)}),
            legal_states.back());
}

// Transient errors *exhaust* the retry budget and surface; non-transient
// errors surface immediately without retries.
TEST_F(WalRecoveryTest, RetryBudgetAndErrorTaxonomy) {
  const SharedData& data = Fixture();
  std::string dir = FreshDir("budget");
  ASSERT_TRUE(
      storage::InitStore(dir, data.network, data.first_day - 1).ok());

  {
    GraphHandle handle(
        std::make_shared<storage::Graph>(CopyNetwork(data.network)));
    RefreshConfig config;
    config.batch_days = 7;
    config.retry.max_attempts = 3;
    config.retry.initial_backoff_ms = 0.1;
    util::failpoint::Arm("refresh.apply", util::failpoint::Spec{});
    auto report_or = RunBatchedRefresh(dir, handle, data.updates, config);
    ASSERT_FALSE(report_or.ok());
    EXPECT_TRUE(report_or.status().IsTransient());
    util::failpoint::DisarmAll();
  }
  {
    GraphHandle handle(
        std::make_shared<storage::Graph>(CopyNetwork(data.network)));
    RefreshConfig config;
    config.batch_days = 7;
    util::failpoint::Spec spec;
    spec.error_code = util::StatusCode::kCorruption;
    util::failpoint::Arm("wal.append", spec);
    auto report_or = RunBatchedRefresh(dir, handle, data.updates, config);
    ASSERT_FALSE(report_or.ok());
    EXPECT_TRUE(report_or.status().IsCorruption());
  }
}

}  // namespace
}  // namespace snb

// Driver tests: workload composition (frequencies of Table 3.1), update
// replay, short-read sequences, determinism, the §6.2 on-time metric, the
// BI stream, and validation mode.

#include <gtest/gtest.h>

#include "datagen/datagen.h"
#include "driver/driver.h"
#include "driver/validation.h"
#include "params/parameter_curation.h"
#include "storage/graph.h"

namespace snb::driver {
namespace {

struct Workload {
  datagen::GeneratedData data;
  params::WorkloadParameters params;
};

Workload* MakeWorkload() {
  datagen::DatagenConfig cfg;
  cfg.num_persons = 300;
  cfg.activity_scale = 0.5;
  auto* w = new Workload{datagen::Generate(cfg), {}};
  core::SocialNetwork copy = w->data.network;
  storage::Graph graph(std::move(copy));
  params::CurationConfig pc;
  pc.per_query = 8;
  w->params = params::CurateParameters(graph, pc);
  return w;
}

class DriverFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { workload_ = MakeWorkload(); }
  static void TearDownTestSuite() { delete workload_; }
  static const Workload& workload() { return *workload_; }

  static storage::Graph FreshGraph() {
    core::SocialNetwork copy = workload().data.network;
    return storage::Graph(std::move(copy));
  }

 private:
  static Workload* workload_;
};

Workload* DriverFixture::workload_ = nullptr;

TEST_F(DriverFixture, RunsFullInteractiveWorkload) {
  storage::Graph graph = FreshGraph();
  DriverConfig cfg;
  cfg.max_updates = 3000;
  DriverReport report = RunInteractiveWorkload(graph, workload().data.updates,
                                               workload().params, cfg);
  EXPECT_EQ(report.update_operations,
            std::min<size_t>(3000, workload().data.updates.size()));
  EXPECT_GT(report.complex_reads, 0u);
  EXPECT_GT(report.short_reads, 0u);
  EXPECT_EQ(report.total_operations, report.update_operations +
                                         report.complex_reads +
                                         report.short_reads);
  EXPECT_GT(report.throughput_ops_per_sec, 0.0);
  EXPECT_DOUBLE_EQ(report.on_time_fraction, 1.0);  // AFAP mode
}

TEST_F(DriverFixture, ComplexReadMixFollowsFrequencies) {
  storage::Graph graph = FreshGraph();
  DriverConfig cfg;
  cfg.max_updates = 4000;
  cfg.short_read_probability = 0.0;  // isolate the complex-read mix
  DriverReport report = RunInteractiveWorkload(graph, workload().data.updates,
                                               workload().params, cfg);
  const core::InteractiveFrequencies freq =
      core::FrequenciesForScaleFactor(cfg.sf_name);
  size_t updates = report.update_operations;
  for (int q = 0; q < 14; ++q) {
    std::string op = "IC " + std::to_string(q + 1);
    auto it = report.per_operation.find(op);
    size_t expected = updates / static_cast<size_t>(freq.freq[q]);
    size_t actual = it == report.per_operation.end() ? 0 : it->second.count;
    EXPECT_EQ(actual, expected) << op;
  }
}

TEST_F(DriverFixture, DeterministicAcrossRuns) {
  DriverConfig cfg;
  cfg.max_updates = 1500;
  storage::Graph g1 = FreshGraph();
  storage::Graph g2 = FreshGraph();
  DriverReport a = RunInteractiveWorkload(g1, workload().data.updates,
                                          workload().params, cfg);
  DriverReport b = RunInteractiveWorkload(g2, workload().data.updates,
                                          workload().params, cfg);
  EXPECT_EQ(a.total_operations, b.total_operations);
  EXPECT_EQ(a.complex_reads, b.complex_reads);
  EXPECT_EQ(a.short_reads, b.short_reads);
  ASSERT_EQ(a.per_operation.size(), b.per_operation.size());
  for (const auto& [op, stats] : a.per_operation) {
    EXPECT_EQ(stats.count, b.per_operation.at(op).count) << op;
  }
}

TEST_F(DriverFixture, UpdatesAreAppliedToTheGraph) {
  storage::Graph graph = FreshGraph();
  size_t persons_before = graph.NumPersons();
  size_t posts_before = graph.NumPosts();
  DriverConfig cfg;  // all updates
  RunInteractiveWorkload(graph, workload().data.updates, workload().params,
                         cfg);
  EXPECT_EQ(graph.NumPersons(), workload().data.total_persons);
  EXPECT_EQ(graph.NumPosts(), workload().data.total_posts);
  EXPECT_GE(graph.NumPersons(), persons_before);
  EXPECT_GT(graph.NumPosts(), posts_before);
}

TEST_F(DriverFixture, ShortReadProbabilityControlsShortReads) {
  DriverConfig none;
  none.max_updates = 1500;
  none.short_read_probability = 0.0;
  DriverConfig lots;
  lots.max_updates = 1500;
  lots.short_read_probability = 0.9;
  storage::Graph g1 = FreshGraph();
  storage::Graph g2 = FreshGraph();
  DriverReport a = RunInteractiveWorkload(g1, workload().data.updates,
                                          workload().params, none);
  DriverReport b = RunInteractiveWorkload(g2, workload().data.updates,
                                          workload().params, lots);
  EXPECT_EQ(a.short_reads, 0u);
  EXPECT_GT(b.short_reads, b.complex_reads / 2);
}

TEST_F(DriverFixture, ShortReadSequencesFollowSpecStructure) {
  // Spec §3.4: person-centric sequences issue IS 1+2+3 together,
  // message-centric sequences issue IS 4+5+6+7 together.
  storage::Graph graph = FreshGraph();
  DriverConfig cfg;
  cfg.max_updates = 3000;
  cfg.short_read_probability = 0.8;
  DriverReport report = RunInteractiveWorkload(graph, workload().data.updates,
                                               workload().params, cfg);
  auto count = [&](const char* op) {
    auto it = report.per_operation.find(op);
    return it == report.per_operation.end() ? size_t{0} : it->second.count;
  };
  EXPECT_GT(count("IS 1"), 0u);
  EXPECT_EQ(count("IS 1"), count("IS 2"));
  EXPECT_EQ(count("IS 1"), count("IS 3"));
  EXPECT_EQ(count("IS 4"), count("IS 5"));
  EXPECT_EQ(count("IS 4"), count("IS 6"));
  EXPECT_EQ(count("IS 4"), count("IS 7"));
  EXPECT_EQ(report.short_reads,
            3 * count("IS 1") + 4 * count("IS 4"));
}

TEST_F(DriverFixture, PacedModeRespectsSchedule) {
  storage::Graph graph = FreshGraph();
  DriverConfig cfg;
  cfg.max_updates = 200;
  cfg.as_fast_as_possible = false;
  // Very high acceleration → schedule is effectively instantaneous, but the
  // pacing path is exercised.
  cfg.acceleration = 1e9;
  DriverReport report = RunInteractiveWorkload(graph, workload().data.updates,
                                               workload().params, cfg);
  EXPECT_GE(report.on_time_fraction, 0.95);  // §6.2 audit requirement
}

TEST_F(DriverFixture, OperationStatsPercentiles) {
  OperationStats stats;
  for (int i = 1; i <= 100; ++i) {
    stats.Record(static_cast<double>(i));
  }
  EXPECT_EQ(stats.count, 100u);
  EXPECT_DOUBLE_EQ(stats.MeanMs(), 50.5);  // count/total stay exact
  EXPECT_DOUBLE_EQ(stats.max_ms, 100.0);
  // Histogram percentiles are upper bounds within one bucket ratio of the
  // exact rank statistic (exact p95 = 96, p50 = 51 under the floor(p·n)
  // rank convention).
  const double ratio = sched::LatencyHistogram::BucketRatio();
  EXPECT_GE(stats.PercentileMs(0.95), 96.0);
  EXPECT_LE(stats.PercentileMs(0.95), 96.0 * ratio);
  EXPECT_GE(stats.PercentileMs(0.50), 51.0);
  EXPECT_LE(stats.PercentileMs(0.50), 51.0 * ratio);
  EXPECT_EQ(OperationStats{}.PercentileMs(0.99), 0.0);
}

TEST_F(DriverFixture, BiWorkloadRunsEveryQuery) {
  storage::Graph graph = FreshGraph();
  DriverReport report = RunBiWorkload(graph, workload().params, 2);
  EXPECT_EQ(report.per_operation.size(), 25u);
  for (const auto& [op, stats] : report.per_operation) {
    EXPECT_EQ(stats.count, 2u) << op;
  }
  EXPECT_EQ(report.total_operations, 50u);
}

TEST_F(DriverFixture, ValidationModePasses) {
  storage::Graph graph = FreshGraph();
  ValidationReport report =
      ValidateBiImplementations(graph, workload().params, 2);
  EXPECT_EQ(report.queries_checked, 25u);
  EXPECT_EQ(report.bindings_checked, 50u);
  EXPECT_TRUE(report.ok()) << "mismatches: " << [&] {
    std::string s;
    for (const auto& q : report.mismatched_queries) s += q + " ";
    return s;
  }();
}

}  // namespace
}  // namespace snb::driver

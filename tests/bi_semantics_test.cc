// Hand-computed BI query answers on the fixture graph, plus structural
// invariants (sort orders, limits) on a generated network.

#include <gtest/gtest.h>

#include "bi/bi.h"
#include "datagen/datagen.h"
#include "fixture_graph.h"
#include "params/parameter_curation.h"
#include "storage/graph.h"

namespace snb::bi {
namespace {

using namespace snb::testfixture;  // NOLINT: test-local fixture ids

class BiSemanticsTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    graph_ = new storage::Graph(MakeFixtureNetwork());
  }
  static void TearDownTestSuite() { delete graph_; }
  static const storage::Graph& graph() { return *graph_; }

 private:
  static storage::Graph* graph_;
};

storage::Graph* BiSemanticsTest::graph_ = nullptr;

TEST_F(BiSemanticsTest, Bi1GroupsByYearTypeAndLength) {
  Bi1Params params{core::DateFromCivil(2011, 1, 1)};
  std::vector<Bi1Row> rows = RunBi1(graph(), params);
  ASSERT_EQ(rows.size(), 4u);
  // Posts first (isComment false), category ascending.
  EXPECT_EQ(rows[0].year, 2010);
  EXPECT_FALSE(rows[0].is_comment);
  EXPECT_EQ(rows[0].length_category, 1);  // post0, len 50
  EXPECT_EQ(rows[0].message_count, 1);
  EXPECT_EQ(rows[0].sum_message_length, 50);
  EXPECT_DOUBLE_EQ(rows[0].percentage_of_messages, 0.25);

  EXPECT_FALSE(rows[1].is_comment);
  EXPECT_EQ(rows[1].length_category, 2);  // post1, len 100

  EXPECT_TRUE(rows[2].is_comment);
  EXPECT_EQ(rows[2].length_category, 0);  // c1, len 20
  EXPECT_EQ(rows[2].average_message_length, 20.0);

  EXPECT_TRUE(rows[3].is_comment);
  EXPECT_EQ(rows[3].length_category, 2);  // c0, len 80
}

TEST_F(BiSemanticsTest, Bi1CutoffExcludesLaterMessages) {
  Bi1Params params{core::DateFromCivil(2010, 5, 1)};  // before post1
  std::vector<Bi1Row> rows = RunBi1(graph(), params);
  int64_t total = 0;
  for (const Bi1Row& r : rows) total += r.message_count;
  EXPECT_EQ(total, 3);  // post0, c0, c1
}

TEST_F(BiSemanticsTest, Bi3ComparesAdjacentMonths) {
  Bi3Params params{2010, 4};
  std::vector<Bi3Row> rows = RunBi3(graph(), params);
  ASSERT_EQ(rows.size(), 2u);
  // April: Mozart 2 (post0, c1), Bach 1 (c0). May: Bach 1 (post1).
  EXPECT_EQ(rows[0].tag, "Mozart");
  EXPECT_EQ(rows[0].count_month1, 2);
  EXPECT_EQ(rows[0].count_month2, 0);
  EXPECT_EQ(rows[0].diff, 2);
  EXPECT_EQ(rows[1].tag, "Bach");
  EXPECT_EQ(rows[1].count_month1, 1);
  EXPECT_EQ(rows[1].count_month2, 1);
  EXPECT_EQ(rows[1].diff, 0);
}

TEST_F(BiSemanticsTest, Bi4CountsClassTaggedPostsPerForum) {
  Bi4Params params{"Musician", "Germany"};
  std::vector<Bi4Row> rows = RunBi4(graph(), params);
  ASSERT_EQ(rows.size(), 1u);  // alice's wall, moderated from Germany
  EXPECT_EQ(rows[0].forum_id, kWall);
  EXPECT_EQ(rows[0].moderator_id, kAlice);
  EXPECT_EQ(rows[0].post_count, 2);  // both posts carry Musician-class tags
}

TEST_F(BiSemanticsTest, Bi6ScoresTopicActivity) {
  Bi6Params params{"Mozart"};
  std::vector<Bi6Row> rows = RunBi6(graph(), params);
  // Mozart messages: post0 (alice; 2 likes, 1 direct reply) and c1 (carol;
  // 0 likes, 0 replies).
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].person_id, kAlice);
  EXPECT_EQ(rows[0].message_count, 1);
  EXPECT_EQ(rows[0].reply_count, 1);
  EXPECT_EQ(rows[0].like_count, 2);
  EXPECT_EQ(rows[0].score, 1 + 2 * 1 + 10 * 2);
  EXPECT_EQ(rows[1].person_id, kCarol);
  EXPECT_EQ(rows[1].score, 1);
}

TEST_F(BiSemanticsTest, Bi8FindsRelatedTopics) {
  Bi8Params params{"Mozart"};
  std::vector<Bi8Row> rows = RunBi8(graph(), params);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].related_tag, "Bach");  // c0 replies post0
  EXPECT_EQ(rows[0].count, 1);
}

TEST_F(BiSemanticsTest, Bi12FiltersOnLikeThreshold) {
  Bi12Params params{core::DateFromCivil(2010, 1, 1), 1};
  std::vector<Bi12Row> rows = RunBi12(graph(), params);
  ASSERT_EQ(rows.size(), 1u);  // only post0 has > 1 like
  EXPECT_EQ(rows[0].message_id, kPost0);
  EXPECT_EQ(rows[0].like_count, 2);
  EXPECT_EQ(rows[0].creator_first_name, "Alice");
}

TEST_F(BiSemanticsTest, Bi13GroupsTagsByMonth) {
  Bi13Params params{"Germany"};
  std::vector<Bi13Row> rows = RunBi13(graph(), params);
  // German messages: post0 (April, Mozart), c0 (April, Bach).
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].year, 2010);
  EXPECT_EQ(rows[0].month, 4);
  ASSERT_EQ(rows[0].popular_tags.size(), 2u);
  // Equal counts: name ascending.
  EXPECT_EQ(rows[0].popular_tags[0].first, "Bach");
  EXPECT_EQ(rows[0].popular_tags[1].first, "Mozart");
}

TEST_F(BiSemanticsTest, Bi14CountsThreadsAndTreeMessages) {
  Bi14Params params{core::DateFromCivil(2010, 1, 1),
                    core::DateFromCivil(2010, 12, 31)};
  std::vector<Bi14Row> rows = RunBi14(graph(), params);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].person_id, kAlice);
  EXPECT_EQ(rows[0].thread_count, 1);
  EXPECT_EQ(rows[0].message_count, 3);  // post0 + c0 + c1
  EXPECT_EQ(rows[1].person_id, kBob);
  EXPECT_EQ(rows[1].message_count, 1);
}

TEST_F(BiSemanticsTest, Bi16FindsExpertsInCircle) {
  Bi16Params params{kAlice, "Germany", "Musician", 1, 2};
  std::vector<Bi16Row> rows = RunBi16(graph(), params);
  // In-circle Germans: bob (d1), dave (d1). Bob's Musician messages:
  // post1 + c0, both tagged Bach only.
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].person_id, kBob);
  EXPECT_EQ(rows[0].tag, "Bach");
  EXPECT_EQ(rows[0].message_count, 2);
}

TEST_F(BiSemanticsTest, Bi17CountsTriangles) {
  EXPECT_EQ(RunBi17(graph(), {"Germany"})[0].count, 1);
  EXPECT_EQ(RunBi17(graph(), {"France"})[0].count, 0);
  EXPECT_TRUE(RunBi17(graph(), {"Narnia"}).size() == 1 &&
              RunBi17(graph(), {"Narnia"})[0].count == 0);
}

TEST_F(BiSemanticsTest, Bi18CountsPersonsPerMessageCount) {
  // length < 90, after 2010-01-01, languages {de, en}: qualifying messages:
  // post0 (de, 50) by alice; c0 (root post0 → de, 80) by bob; c1 (root
  // post0 → de, 20) by carol. post1 (en, 100) fails the length filter.
  Bi18Params params{core::DateFromCivil(2010, 1, 1), 90, {"de", "en"}};
  std::vector<Bi18Row> rows = RunBi18(graph(), params);
  ASSERT_EQ(rows.size(), 2u);
  // Three persons with exactly 1 message, one person (dave) with 0.
  EXPECT_EQ(rows[0].message_count, 1);
  EXPECT_EQ(rows[0].person_count, 3);
  EXPECT_EQ(rows[1].message_count, 0);
  EXPECT_EQ(rows[1].person_count, 1);
}

TEST_F(BiSemanticsTest, Bi20RollsUpTagClassHierarchy) {
  Bi20Params params{{"Musician", "Person", "Thing"}};
  std::vector<Bi20Row> rows = RunBi20(graph(), params);
  ASSERT_EQ(rows.size(), 3u);
  // All four messages carry Musician-class tags; ancestors roll up the
  // same set. Ties break by name ascending.
  for (const Bi20Row& r : rows) EXPECT_EQ(r.message_count, 4);
  EXPECT_EQ(rows[0].tag_class, "Musician");
  EXPECT_EQ(rows[1].tag_class, "Person");
  EXPECT_EQ(rows[2].tag_class, "Thing");
}

TEST_F(BiSemanticsTest, Bi21ScoresZombies) {
  Bi21Params params{"Germany", core::DateFromCivil(2011, 1, 1)};
  std::vector<Bi21Row> rows = RunBi21(graph(), params);
  // All three Germans are zombies (far fewer messages than months).
  ASSERT_EQ(rows.size(), 3u);
  // alice: 2 likes, both from zombies (bob, carol) → score 1.0.
  EXPECT_EQ(rows[0].zombie_id, kAlice);
  EXPECT_EQ(rows[0].zombie_like_count, 2);
  EXPECT_EQ(rows[0].total_like_count, 2);
  EXPECT_DOUBLE_EQ(rows[0].zombie_score, 1.0);
  EXPECT_EQ(rows[1].zombie_id, kBob);
  EXPECT_DOUBLE_EQ(rows[1].zombie_score, 1.0);
  EXPECT_EQ(rows[2].zombie_id, kDave);
  EXPECT_EQ(rows[2].total_like_count, 0);
  EXPECT_DOUBLE_EQ(rows[2].zombie_score, 0.0);
}

TEST_F(BiSemanticsTest, Bi22ScoresInternationalDialog) {
  Bi22Params params{"Germany", "France"};
  std::vector<Bi22Row> rows = RunBi22(graph(), params);
  ASSERT_EQ(rows.size(), 2u);
  // bob–carol: reply (c1 on c0) 4 + knows 10 = 14.
  EXPECT_EQ(rows[0].person1_id, kBob);
  EXPECT_EQ(rows[0].person2_id, kCarol);
  EXPECT_EQ(rows[0].score, 14);
  EXPECT_EQ(rows[0].city1, "Berlin");
  // alice–carol: carol's like on post0 = 1.
  EXPECT_EQ(rows[1].person1_id, kAlice);
  EXPECT_EQ(rows[1].score, 1);
}

TEST_F(BiSemanticsTest, Bi23FindsHolidayDestinations) {
  // Germans posting from outside Germany: post1 by bob from France (May).
  Bi23Params params{"Germany"};
  std::vector<Bi23Row> rows = RunBi23(graph(), params);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].destination, "France");
  EXPECT_EQ(rows[0].month, 5);
  EXPECT_EQ(rows[0].message_count, 1);
}

TEST_F(BiSemanticsTest, Bi24GroupsByContinent) {
  Bi24Params params{"Musician"};
  std::vector<Bi24Row> rows = RunBi24(graph(), params);
  // All messages are in Europe: April (post0, c0, c1), May (post1).
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].month, 4);
  EXPECT_EQ(rows[0].message_count, 3);
  EXPECT_EQ(rows[0].continent, "Europe");
  EXPECT_EQ(rows[0].like_count, 3);  // 2 on post0 + 1 on c0
  EXPECT_EQ(rows[1].month, 5);
  EXPECT_EQ(rows[1].like_count, 1);
}

TEST_F(BiSemanticsTest, Bi25WeighsTrustedPaths) {
  Bi25Params params{kAlice, kCarol, core::DateFromCivil(2010, 1, 1),
                    core::DateFromCivil(2010, 12, 31)};
  std::vector<Bi25Row> rows = RunBi25(graph(), params);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].person_ids, (std::vector<core::Id>{kAlice, kBob, kCarol}));
  // alice–bob: c0 replies post0 → 1.0; bob–carol: c1 replies c0 → 0.5.
  EXPECT_DOUBLE_EQ(rows[0].weight, 1.5);
}

TEST_F(BiSemanticsTest, Bi25WindowExcludesForums) {
  // The wall was created 2010-01-06; a window after that zeroes the weight.
  Bi25Params params{kAlice, kCarol, core::DateFromCivil(2010, 2, 1),
                    core::DateFromCivil(2010, 12, 31)};
  std::vector<Bi25Row> rows = RunBi25(graph(), params);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_DOUBLE_EQ(rows[0].weight, 0.0);
}

TEST_F(BiSemanticsTest, UnknownParametersYieldEmptyResults) {
  EXPECT_TRUE(RunBi4(graph(), {"NoClass", "Germany"}).empty());
  EXPECT_TRUE(RunBi6(graph(), {"NoTag"}).empty());
  EXPECT_TRUE(RunBi13(graph(), {"Atlantis"}).empty());
  EXPECT_TRUE(RunBi22(graph(), {"Atlantis", "France"}).empty());
  EXPECT_TRUE(RunBi25(graph(), {999, kCarol, 0, 0}).empty());
}

// ---------------------------------------------------------------------------
// Structural invariants on a generated network.
// ---------------------------------------------------------------------------

class BiInvariantsTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    datagen::DatagenConfig cfg;
    cfg.num_persons = 300;
    cfg.activity_scale = 0.5;
    datagen::GeneratedData data = datagen::Generate(cfg);
    graph_ = new storage::Graph(std::move(data.network));
    params::CurationConfig pc;
    pc.per_query = 3;
    params_ = new params::WorkloadParameters(
        params::CurateParameters(*graph_, pc));
  }
  static void TearDownTestSuite() {
    delete params_;
    delete graph_;
  }
  static const storage::Graph& graph() { return *graph_; }
  static const params::WorkloadParameters& params() { return *params_; }

 private:
  static storage::Graph* graph_;
  static params::WorkloadParameters* params_;
};

storage::Graph* BiInvariantsTest::graph_ = nullptr;
params::WorkloadParameters* BiInvariantsTest::params_ = nullptr;

TEST_F(BiInvariantsTest, LimitsRespected) {
  EXPECT_LE(RunBi2(graph(), params().bi2[0]).size(), 100u);
  EXPECT_LE(RunBi3(graph(), params().bi3[0]).size(), 100u);
  EXPECT_LE(RunBi4(graph(), params().bi4[0]).size(), 20u);
  EXPECT_LE(RunBi5(graph(), params().bi5[0]).size(), 100u);
  EXPECT_LE(RunBi12(graph(), params().bi12[0]).size(), 100u);
  EXPECT_LE(RunBi13(graph(), params().bi13[0]).size(), 100u);
  EXPECT_LE(RunBi16(graph(), params().bi16[0]).size(), 100u);
}

TEST_F(BiInvariantsTest, Bi1PercentagesSumToOne) {
  std::vector<Bi1Row> rows = RunBi1(graph(), params().bi1[0]);
  ASSERT_FALSE(rows.empty());
  double total_pct = 0;
  int64_t total_count = 0;
  for (const Bi1Row& r : rows) {
    total_pct += r.percentage_of_messages;
    total_count += r.message_count;
    EXPECT_GT(r.message_count, 0);
    EXPECT_NEAR(r.average_message_length,
                static_cast<double>(r.sum_message_length) /
                    static_cast<double>(r.message_count),
                1e-9);
  }
  EXPECT_NEAR(total_pct, 1.0, 1e-9);
  EXPECT_GT(total_count, 0);
}

TEST_F(BiInvariantsTest, Bi12SortedByLikesThenId) {
  std::vector<Bi12Row> rows =
      RunBi12(graph(), {core::DateFromCivil(2010, 1, 1), 0});
  for (size_t i = 1; i < rows.size(); ++i) {
    EXPECT_GE(rows[i - 1].like_count, rows[i].like_count);
    if (rows[i - 1].like_count == rows[i].like_count) {
      EXPECT_LE(rows[i - 1].message_id, rows[i].message_id);
    }
  }
}

TEST_F(BiInvariantsTest, Bi13TagListsBoundedAndSorted) {
  for (const Bi13Row& row : RunBi13(graph(), params().bi13[0])) {
    EXPECT_LE(row.popular_tags.size(), 5u);
    for (size_t i = 1; i < row.popular_tags.size(); ++i) {
      EXPECT_GE(row.popular_tags[i - 1].second, row.popular_tags[i].second);
    }
  }
}

TEST_F(BiInvariantsTest, Bi17TriangleCountNonNegativeAndBounded) {
  for (const auto& p : params().bi17) {
    auto rows = RunBi17(graph(), p);
    ASSERT_EQ(rows.size(), 1u);
    EXPECT_GE(rows[0].count, 0);
  }
}

TEST_F(BiInvariantsTest, Bi18PersonCountsCoverAllPersons) {
  std::vector<Bi18Row> rows = RunBi18(graph(), params().bi18[0]);
  int64_t persons = 0;
  for (const Bi18Row& r : rows) persons += r.person_count;
  EXPECT_EQ(persons, static_cast<int64_t>(graph().NumPersons()));
}

TEST_F(BiInvariantsTest, Bi21ScoresAreRatios) {
  for (const Bi21Row& r : RunBi21(graph(), params().bi21[0])) {
    EXPECT_GE(r.zombie_like_count, 0);
    EXPECT_LE(r.zombie_like_count, r.total_like_count);
    EXPECT_GE(r.zombie_score, 0.0);
    EXPECT_LE(r.zombie_score, 1.0);
  }
}

}  // namespace
}  // namespace snb::bi

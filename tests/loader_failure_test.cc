// Failure-injection tests for the bulk loader and CSV reader: missing
// files, truncated rows, malformed dates — the loader must fail with a
// descriptive Status, never crash or silently drop data.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "datagen/datagen.h"
#include "datagen/serializer.h"
#include "storage/graph.h"
#include "storage/loader.h"
#include "util/csv.h"
#include "validate/validator.h"

namespace snb::storage {
namespace {

namespace fs = std::filesystem;

class LoaderFailureFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    datagen::DatagenConfig cfg;
    cfg.num_persons = 120;
    cfg.activity_scale = 0.3;
    datagen::GeneratedData data = datagen::Generate(cfg);
    dir_ = ::testing::TempDir() + "/snb_loader_failure";
    fs::remove_all(dir_);
    ASSERT_TRUE(datagen::WriteCsvBasic(data.network, dir_).ok());
  }

  void Corrupt(const std::string& relative,
               const std::string& replacement_content) {
    std::ofstream out(dir_ + "/" + relative, std::ios::trunc);
    out << replacement_content;
  }

  std::string dir_;
};

TEST_F(LoaderFailureFixture, LoadsCleanDataset) {
  auto result = LoadCsvBasic(dir_);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result.value().persons.size(), 0u);
  // A graph built from a cleanly loaded dataset must hold every
  // representation invariant — the loader is the recovery path.
  Graph graph(std::move(result.value()));
  validate::ValidationReport vr = validate::ValidateGraph(graph);
  EXPECT_TRUE(vr.ok()) << vr.ToString();
}

TEST_F(LoaderFailureFixture, MissingDirectoryFails) {
  auto result = LoadCsvBasic("/nonexistent/snb");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kIoError);
}

TEST_F(LoaderFailureFixture, MissingFileFails) {
  fs::remove(dir_ + "/dynamic/person_knows_person_0_0.csv");
  auto result = LoadCsvBasic(dir_);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kIoError);
}

TEST_F(LoaderFailureFixture, RowWidthMismatchFails) {
  Corrupt("dynamic/person_knows_person_0_0.csv",
          "Person.id|Person.id|creationDate\n1|2\n");
  auto result = LoadCsvBasic(dir_);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kCorruption);
}

TEST_F(LoaderFailureFixture, MalformedDateTimeFails) {
  Corrupt("dynamic/person_knows_person_0_0.csv",
          "Person.id|Person.id|creationDate\n1|2|not-a-date\n");
  auto result = LoadCsvBasic(dir_);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kCorruption);
}

TEST_F(LoaderFailureFixture, MalformedBirthdayFails) {
  Corrupt("dynamic/person_0_0.csv",
          "id|firstName|lastName|gender|birthday|creationDate|locationIP|"
          "browserUsed\n"
          "7|A|B|male|1990-13-77|2010-01-01T00:00:00.000+0000|1.1.1.1|"
          "Chrome\n");
  auto result = LoadCsvBasic(dir_);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kCorruption);
}

TEST_F(LoaderFailureFixture, EmptyFileFails) {
  Corrupt("dynamic/post_0_0.csv", "");
  auto result = LoadCsvBasic(dir_);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kCorruption);
}

TEST_F(LoaderFailureFixture, HeaderOnlyFilesAreValid) {
  // A dataset slice with zero likes is legal: header-only file.
  Corrupt("dynamic/person_likes_post_0_0.csv",
          "Person.id|Post.id|creationDate\n");
  Corrupt("dynamic/person_likes_comment_0_0.csv",
          "Person.id|Comment.id|creationDate\n");
  auto result = LoadCsvBasic(dir_);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result.value().likes.empty());
  Graph graph(std::move(result.value()));
  validate::ValidationReport vr = validate::ValidateGraph(graph);
  EXPECT_TRUE(vr.ok()) << vr.ToString();
}

TEST_F(LoaderFailureFixture, FinalLineWithoutNewlineIsRead) {
  std::string path = dir_ + "/dynamic/person_speaks_language_0_0.csv";
  // Rewrite without trailing newline.
  auto table = util::ReadCsv(path);
  ASSERT_TRUE(table.ok());
  std::ofstream out(path, std::ios::trunc);
  out << "Person.id|language\n0|xx\n1|yy";  // no trailing newline
  out.close();
  auto reread = util::ReadCsv(path);
  ASSERT_TRUE(reread.ok());
  EXPECT_EQ(reread.value().rows.size(), 2u);
  EXPECT_EQ(reread.value().rows[1][1], "yy");
}

}  // namespace
}  // namespace snb::storage

// Tests for the graph consistency checker and the mixed BI read/write
// workload: consistency must hold after bulk load, after incremental
// update replay, and throughout the mixed workload.

#include <gtest/gtest.h>

#include "datagen/datagen.h"
#include "driver/driver.h"
#include "interactive/updates.h"
#include "params/parameter_curation.h"
#include "storage/consistency.h"
#include "storage/graph.h"

namespace snb {
namespace {

datagen::GeneratedData MakeData() {
  datagen::DatagenConfig cfg;
  cfg.num_persons = 250;
  cfg.activity_scale = 0.4;
  return datagen::Generate(cfg);
}

std::string Join(const std::vector<std::string>& issues) {
  std::string out;
  for (const std::string& i : issues) out += i + "; ";
  return out;
}

TEST(ConsistencyTest, BulkLoadedGraphIsConsistent) {
  datagen::GeneratedData data = MakeData();
  storage::Graph graph(std::move(data.network));
  auto issues = storage::CheckGraphConsistency(graph);
  EXPECT_TRUE(issues.empty()) << Join(issues);
}

TEST(ConsistencyTest, GraphStaysConsistentAfterUpdateReplay) {
  datagen::GeneratedData data = MakeData();
  storage::Graph graph(std::move(data.network));
  for (const datagen::UpdateEvent& e : data.updates) {
    ASSERT_TRUE(interactive::ApplyUpdate(graph, e).ok());
  }
  auto issues = storage::CheckGraphConsistency(graph);
  EXPECT_TRUE(issues.empty()) << Join(issues);
}

TEST(ConsistencyTest, FixtureOfOnePersonIsConsistent) {
  core::SocialNetwork net;
  net.places.push_back({0, "X", "u", core::PlaceType::kContinent, core::kNoId});
  net.places.push_back({1, "Y", "u", core::PlaceType::kCountry, 0});
  net.places.push_back({2, "Z", "u", core::PlaceType::kCity, 1});
  core::Person p;
  p.id = 7;
  p.city = 2;
  net.persons.push_back(p);
  storage::Graph graph(std::move(net));
  EXPECT_TRUE(storage::CheckGraphConsistency(graph).empty());
}

TEST(BiReadWriteTest, MixedWorkloadRunsReadsAndWrites) {
  datagen::GeneratedData data = MakeData();
  storage::Graph graph(std::move(data.network));
  params::CurationConfig pc;
  pc.per_query = 4;
  params::WorkloadParameters params = params::CurateParameters(graph, pc);

  const size_t limit = std::min<size_t>(1000, data.updates.size());
  driver::DriverReport report = driver::RunBiReadWriteWorkload(
      graph, data.updates, params, /*updates_per_read=*/25,
      /*max_updates=*/1000);
  EXPECT_EQ(report.update_operations, limit);
  EXPECT_EQ(report.complex_reads, limit / 25);
  ASSERT_GE(limit / 25, 25u);  // enough reads for one full round-robin
  EXPECT_EQ(report.total_operations,
            report.update_operations + report.complex_reads);
  // Round-robin over 25 templates: 40 reads → at least one full cycle,
  // so several distinct BI ops must appear.
  size_t distinct_bi = 0;
  for (const auto& [op, stats] : report.per_operation) {
    if (op.rfind("BI ", 0) == 0) ++distinct_bi;
  }
  EXPECT_EQ(distinct_bi, 25u);

  // The graph must still be consistent mid-stream state.
  auto issues = storage::CheckGraphConsistency(graph);
  EXPECT_TRUE(issues.empty()) << Join(issues);
}

TEST(BiReadWriteTest, ReadsSeeFreshlyInsertedData) {
  datagen::GeneratedData data = MakeData();
  storage::Graph graph(std::move(data.network));
  params::CurationConfig pc;
  pc.per_query = 2;
  params::WorkloadParameters params = params::CurateParameters(graph, pc);

  // BI 1 counts messages before a far-future date; replaying updates must
  // strictly grow it.
  bi::Bi1Params far{core::DateFromCivil(2020, 1, 1)};
  auto before = bi::RunBi1(graph, far);
  int64_t count_before = 0;
  for (const auto& r : before) count_before += r.message_count;

  driver::RunBiReadWriteWorkload(graph, data.updates, params, 50);

  auto after = bi::RunBi1(graph, far);
  int64_t count_after = 0;
  for (const auto& r : after) count_after += r.message_count;
  EXPECT_GT(count_after, count_before);
  EXPECT_EQ(static_cast<size_t>(count_after),
            data.total_posts + data.total_comments);
}

}  // namespace
}  // namespace snb

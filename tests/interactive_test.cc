// Interactive workload tests: hand-computed answers for the complex and
// short reads on the fixture graph, plus driver-facing invariants on a
// generated network.

#include <gtest/gtest.h>

#include "datagen/datagen.h"
#include "fixture_graph.h"
#include "interactive/interactive.h"
#include "storage/graph.h"

namespace snb::interactive {
namespace {

using namespace snb::testfixture;  // NOLINT: test-local fixture ids

class InteractiveFixtureTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    graph_ = new storage::Graph(MakeFixtureNetwork());
  }
  static void TearDownTestSuite() { delete graph_; }
  static const storage::Graph& graph() { return *graph_; }

 private:
  static storage::Graph* graph_;
};

storage::Graph* InteractiveFixtureTest::graph_ = nullptr;

TEST_F(InteractiveFixtureTest, Ic1FindsByNameWithinThreeHops) {
  std::vector<Ic1Row> rows = RunIc1(graph(), {kAlice, "Carol"});
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].friend_id, kCarol);
  EXPECT_EQ(rows[0].distance, 2);
  EXPECT_EQ(rows[0].last_name, "Cat");
  EXPECT_EQ(rows[0].city_name, "Paris");
  ASSERT_EQ(rows[0].companies.size(), 1u);
  EXPECT_EQ(std::get<0>(rows[0].companies[0]), "France Telecom");
  EXPECT_EQ(std::get<2>(rows[0].companies[0]), "France");
}

TEST_F(InteractiveFixtureTest, Ic1ExcludesStartPerson) {
  EXPECT_TRUE(RunIc1(graph(), {kAlice, "Alice"}).empty());
}

TEST_F(InteractiveFixtureTest, Ic2ReturnsFriendMessagesBeforeDate) {
  std::vector<Ic2Row> rows =
      RunIc2(graph(), {kAlice, core::DateFromCivil(2010, 5, 1)});
  // Alice's friends: bob, dave. Bob's messages before May: c0 only.
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].person_id, kBob);
  EXPECT_EQ(rows[0].message_id, kComment0);
}

TEST_F(InteractiveFixtureTest, Ic2SortsRecentFirst) {
  std::vector<Ic2Row> rows =
      RunIc2(graph(), {kAlice, core::DateFromCivil(2011, 1, 1)});
  ASSERT_EQ(rows.size(), 2u);  // c0 and post1 by bob
  EXPECT_EQ(rows[0].message_id, kPost1);  // newest first
  EXPECT_EQ(rows[1].message_id, kComment0);
}

TEST_F(InteractiveFixtureTest, Ic7RanksRecentLikers) {
  std::vector<Ic7Row> rows = RunIc7(graph(), {kAlice});
  // Likers of alice's messages (post0): bob (4/13), carol (4/14).
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].person_id, kCarol);  // most recent like first
  EXPECT_TRUE(rows[0].is_new);           // carol is not alice's friend
  EXPECT_EQ(rows[1].person_id, kBob);
  EXPECT_FALSE(rows[1].is_new);  // bob is a friend
}

TEST_F(InteractiveFixtureTest, Ic8ReturnsDirectReplies) {
  std::vector<Ic8Row> rows = RunIc8(graph(), {kAlice});
  // Replies to alice's messages: c0 (on post0). c1 replies c0 (bob's).
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].comment_id, kComment0);
  EXPECT_EQ(rows[0].person_id, kBob);

  std::vector<Ic8Row> bob_rows = RunIc8(graph(), {kBob});
  ASSERT_EQ(bob_rows.size(), 1u);
  EXPECT_EQ(bob_rows[0].comment_id, kComment1);
  EXPECT_EQ(bob_rows[0].person_id, kCarol);
}

TEST_F(InteractiveFixtureTest, Ic9CoversTwoHops) {
  std::vector<Ic9Row> rows =
      RunIc9(graph(), {kDave, core::DateFromCivil(2011, 1, 1)});
  // Dave's 2-hop cohort: alice, bob (d1), carol (d2). All 4 messages.
  EXPECT_EQ(rows.size(), 4u);
}

TEST_F(InteractiveFixtureTest, Ic11FiltersByCountryAndYear) {
  std::vector<Ic11Row> rows = RunIc11(graph(), {kAlice, "France", 2010});
  // Carol (foaf) works at France Telecom since 2009 < 2010.
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].person_id, kCarol);
  EXPECT_EQ(rows[0].company_name, "France Telecom");
  EXPECT_EQ(rows[0].work_from, 2009);
  EXPECT_TRUE(RunIc11(graph(), {kAlice, "France", 2009}).empty());
}

TEST_F(InteractiveFixtureTest, Ic12FindsExpertFriends) {
  std::vector<Ic12Row> rows = RunIc12(graph(), {kAlice, "Musician"});
  // Friends of alice: bob, dave. Bob's comment c0 directly replies post0
  // whose tag Mozart is in class Musician.
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].person_id, kBob);
  EXPECT_EQ(rows[0].reply_count, 1);
  EXPECT_EQ(rows[0].tag_names, (std::vector<std::string>{"Mozart"}));
}

TEST_F(InteractiveFixtureTest, Ic13ShortestPaths) {
  EXPECT_EQ(RunIc13(graph(), {kAlice, kAlice}).shortest_path_length, 0);
  EXPECT_EQ(RunIc13(graph(), {kAlice, kBob}).shortest_path_length, 1);
  EXPECT_EQ(RunIc13(graph(), {kAlice, kCarol}).shortest_path_length, 2);
  EXPECT_EQ(RunIc13(graph(), {kCarol, kAlice}).shortest_path_length, 2);
  EXPECT_EQ(RunIc13(graph(), {kAlice, 999}).shortest_path_length, -1);
}

TEST_F(InteractiveFixtureTest, Ic14WeighsPaths) {
  std::vector<Ic14Row> rows = RunIc14(graph(), {kAlice, kCarol});
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].person_ids_in_path,
            (std::vector<core::Id>{kAlice, kBob, kCarol}));
  // alice–bob: reply to post (1.0); bob–carol: reply to comment (0.5).
  EXPECT_DOUBLE_EQ(rows[0].path_weight, 1.5);
}

TEST_F(InteractiveFixtureTest, Is1ReturnsProfile) {
  std::vector<Is1Row> rows = RunIs1(graph(), kCarol);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].first_name, "Carol");
  EXPECT_EQ(rows[0].city_id, kParis);
  EXPECT_EQ(rows[0].gender, "female");
  EXPECT_TRUE(RunIs1(graph(), 999).empty());
}

TEST_F(InteractiveFixtureTest, Is2ReturnsMessagesWithThreadRoots) {
  std::vector<Is2Row> rows = RunIs2(graph(), kCarol);
  ASSERT_EQ(rows.size(), 1u);  // c1
  EXPECT_EQ(rows[0].message_id, kComment1);
  EXPECT_EQ(rows[0].original_post_id, kPost0);
  EXPECT_EQ(rows[0].original_post_author_id, kAlice);
  EXPECT_EQ(rows[0].original_post_author_first_name, "Alice");
}

TEST_F(InteractiveFixtureTest, Is3ListsFriendsMostRecentFirst) {
  std::vector<Is3Row> rows = RunIs3(graph(), kAlice);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].person_id, kDave);  // friendship 3/15 > 3/1
  EXPECT_EQ(rows[1].person_id, kBob);
}

TEST_F(InteractiveFixtureTest, Is4AndIs5ResolveMessages) {
  auto is4 = RunIs4(graph(), kPost1, /*is_post=*/true);
  ASSERT_EQ(is4.size(), 1u);
  EXPECT_EQ(is4[0].content, std::string(100, 'b'));
  auto is5 = RunIs5(graph(), kComment1, /*is_post=*/false);
  ASSERT_EQ(is5.size(), 1u);
  EXPECT_EQ(is5[0].person_id, kCarol);
}

TEST_F(InteractiveFixtureTest, Is6FindsForumThroughThread) {
  auto rows = RunIs6(graph(), kComment1, /*is_post=*/false);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].forum_id, kWall);
  EXPECT_EQ(rows[0].moderator_id, kAlice);
}

TEST_F(InteractiveFixtureTest, Is7FlagsRepliesByFriends) {
  auto rows = RunIs7(graph(), kPost0, /*is_post=*/true);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].comment_id, kComment0);
  EXPECT_EQ(rows[0].author_id, kBob);
  EXPECT_TRUE(rows[0].knows);  // bob knows alice

  auto c0_rows = RunIs7(graph(), kComment0, /*is_post=*/false);
  ASSERT_EQ(c0_rows.size(), 1u);
  EXPECT_EQ(c0_rows[0].author_id, kCarol);
  EXPECT_TRUE(c0_rows[0].knows);  // carol knows bob
}

// ---------------------------------------------------------------------------
// Invariants on a generated graph.
// ---------------------------------------------------------------------------

class InteractiveInvariantsTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    datagen::DatagenConfig cfg;
    cfg.num_persons = 250;
    cfg.activity_scale = 0.4;
    datagen::GeneratedData data = datagen::Generate(cfg);
    graph_ = new storage::Graph(std::move(data.network));
  }
  static void TearDownTestSuite() { delete graph_; }
  static const storage::Graph& graph() { return *graph_; }

 private:
  static storage::Graph* graph_;
};

storage::Graph* InteractiveInvariantsTest::graph_ = nullptr;

TEST_F(InteractiveInvariantsTest, Ic13IsSymmetric) {
  for (core::Id a = 0; a < 20; ++a) {
    for (core::Id b = a + 1; b < 20; b += 3) {
      EXPECT_EQ(RunIc13(graph(), {a, b}).shortest_path_length,
                RunIc13(graph(), {b, a}).shortest_path_length);
    }
  }
}

TEST_F(InteractiveInvariantsTest, Ic14PathsMatchIc13Length) {
  for (core::Id a = 0; a < 12; ++a) {
    core::Id b = a + 40;
    int32_t d = RunIc13(graph(), {a, b}).shortest_path_length;
    std::vector<Ic14Row> paths = RunIc14(graph(), {a, b});
    if (d < 0) {
      EXPECT_TRUE(paths.empty());
      continue;
    }
    ASSERT_FALSE(paths.empty());
    for (const Ic14Row& row : paths) {
      EXPECT_EQ(static_cast<int32_t>(row.person_ids_in_path.size()) - 1, d);
      EXPECT_GE(row.path_weight, 0.0);
    }
    // Sorted by weight descending.
    for (size_t i = 1; i < paths.size(); ++i) {
      EXPECT_GE(paths[i - 1].path_weight, paths[i].path_weight);
    }
  }
}

TEST_F(InteractiveInvariantsTest, Ic2SubsetOfIc9Candidates) {
  // IC 9's cohort (2 hops) contains IC 2's (1 hop): with identical date
  // limits, IC 9's k-th newest message cannot be older than IC 2's.
  core::Date max_date = core::DateFromCivil(2012, 6, 1);
  for (core::Id p = 0; p < 10; ++p) {
    auto ic2 = RunIc2(graph(), {p, max_date});
    auto ic9 = RunIc9(graph(), {p, max_date});
    if (ic2.empty()) continue;
    ASSERT_FALSE(ic9.empty());
    EXPECT_GE(ic9.size(), std::min<size_t>(ic2.size(), 20));
    EXPECT_GE(ic9.front().creation_date, ic2.front().creation_date);
    if (ic9.size() == 20 && ic2.size() == 20) {
      EXPECT_GE(ic9.back().creation_date, ic2.back().creation_date);
    }
  }
}

TEST_F(InteractiveInvariantsTest, LimitsRespected) {
  for (core::Id p = 0; p < 5; ++p) {
    EXPECT_LE(RunIc1(graph(), {p, "Chen"}).size(), 20u);
    EXPECT_LE(RunIc2(graph(), {p, core::DateFromCivil(2013, 1, 1)}).size(),
              20u);
    EXPECT_LE(RunIc4(graph(), {p, core::DateFromCivil(2011, 1, 1), 60}).size(),
              10u);
    EXPECT_LE(RunIc6(graph(), {p, "Jazz"}).size(), 10u);
    EXPECT_LE(RunIc7(graph(), {p}).size(), 20u);
    EXPECT_LE(RunIc8(graph(), {p}).size(), 20u);
    EXPECT_LE(RunIc10(graph(), {p, 6}).size(), 10u);
    EXPECT_LE(RunIc12(graph(), {p, "Person"}).size(), 20u);
    EXPECT_LE(RunIs2(graph(), p).size(), 10u);
  }
}

TEST_F(InteractiveInvariantsTest, Ic10OnlyFoafsWithBirthdayWindow) {
  for (core::Id p = 0; p < 6; ++p) {
    for (const Ic10Row& row : RunIc10(graph(), {p, 4})) {
      int32_t d =
          RunIc13(graph(), {p, row.person_id}).shortest_path_length;
      EXPECT_EQ(d, 2) << "IC10 must return exactly distance-2 persons";
      uint32_t idx = graph().PersonIdx(row.person_id);
      core::CivilDate b =
          core::CivilFromDate(graph().PersonAt(idx).birthday);
      bool in_window = (b.month == 4 && b.day >= 21) ||
                       (b.month == 5 && b.day < 22);
      EXPECT_TRUE(in_window);
    }
  }
}

TEST_F(InteractiveInvariantsTest, Is7KnowsFlagConsistent) {
  // For the first few posts, the knows flag must agree with IC 13 == 1.
  for (uint32_t post = 0; post < 10 && post < graph().NumPosts(); ++post) {
    core::Id post_id = graph().PostAt(post).id;
    core::Id author = graph().PersonAt(graph().PostCreator(post)).id;
    for (const Is7Row& row : RunIs7(graph(), post_id, true)) {
      int32_t d =
          RunIc13(graph(), {author, row.author_id}).shortest_path_length;
      EXPECT_EQ(row.knows, d == 1) << "post " << post_id;
    }
  }
}

}  // namespace
}  // namespace snb::interactive

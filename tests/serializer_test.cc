// Serializer + loader tests: CsvBasic emits exactly the Table 2.13 file
// set, CsvMergeForeign the Table 2.14 set, round-tripping through the
// loader reproduces the network, and update streams serialize per
// Tables 2.17–2.18.

#include <gtest/gtest.h>

#include <filesystem>
#include <set>

#include "datagen/datagen.h"
#include "datagen/serializer.h"
#include "datagen/update_stream.h"
#include "storage/loader.h"
#include "util/csv.h"

namespace snb::datagen {
namespace {

namespace fs = std::filesystem;

DatagenConfig TinyConfig() {
  DatagenConfig cfg;
  cfg.num_persons = 150;
  cfg.activity_scale = 0.3;
  return cfg;
}

class SerializerFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data_ = new GeneratedData(Generate(TinyConfig()));
    dir_ = new std::string(::testing::TempDir() + "/snb_serializer");
    fs::remove_all(*dir_);
    ASSERT_TRUE(WriteCsvBasic(data_->network, *dir_ + "/basic").ok());
    ASSERT_TRUE(
        WriteCsvMergeForeign(data_->network, *dir_ + "/merge").ok());
    ASSERT_TRUE(WriteUpdateStreams(data_->updates, *dir_ + "/streams").ok());
  }
  static void TearDownTestSuite() {
    delete data_;
    delete dir_;
  }
  static const GeneratedData& data() { return *data_; }
  static const std::string& dir() { return *dir_; }

 private:
  static GeneratedData* data_;
  static std::string* dir_;
};

GeneratedData* SerializerFixture::data_ = nullptr;
std::string* SerializerFixture::dir_ = nullptr;

std::set<std::string> CollectStems(const std::string& root) {
  std::set<std::string> stems;
  for (const auto& entry : fs::recursive_directory_iterator(root)) {
    if (!entry.is_regular_file()) continue;
    std::string name = entry.path().filename().string();
    size_t pos = name.find("_0_0.csv");
    if (pos != std::string::npos) stems.insert(name.substr(0, pos));
  }
  return stems;
}

TEST_F(SerializerFixture, CsvBasicEmitsExactlyTable213Files) {
  std::set<std::string> expected(CsvBasicFileStems().begin(),
                                 CsvBasicFileStems().end());
  EXPECT_EQ(expected.size(), 33u);  // Table 2.13: 33 files
  EXPECT_EQ(CollectStems(dir() + "/basic"), expected);
}

TEST_F(SerializerFixture, CsvMergeForeignEmitsExactlyTable214Files) {
  std::set<std::string> expected(CsvMergeForeignFileStems().begin(),
                                 CsvMergeForeignFileStems().end());
  EXPECT_EQ(expected.size(), 20u);  // Table 2.14: 20 files
  EXPECT_EQ(CollectStems(dir() + "/merge"), expected);
}

TEST_F(SerializerFixture, StaticAndDynamicDirectoriesSplit) {
  EXPECT_TRUE(fs::exists(dir() + "/basic/static/place_0_0.csv"));
  EXPECT_TRUE(fs::exists(dir() + "/basic/dynamic/person_0_0.csv"));
  EXPECT_FALSE(fs::exists(dir() + "/basic/static/person_0_0.csv"));
}

TEST_F(SerializerFixture, LoaderRoundtripPreservesCounts) {
  auto loaded_or = storage::LoadCsvBasic(dir() + "/basic");
  ASSERT_TRUE(loaded_or.ok()) << loaded_or.status().ToString();
  const core::SocialNetwork& loaded = loaded_or.value();
  const core::SocialNetwork& original = data().network;
  EXPECT_EQ(loaded.persons.size(), original.persons.size());
  EXPECT_EQ(loaded.forums.size(), original.forums.size());
  EXPECT_EQ(loaded.posts.size(), original.posts.size());
  EXPECT_EQ(loaded.comments.size(), original.comments.size());
  EXPECT_EQ(loaded.knows.size(), original.knows.size());
  EXPECT_EQ(loaded.likes.size(), original.likes.size());
  EXPECT_EQ(loaded.memberships.size(), original.memberships.size());
  EXPECT_EQ(loaded.places.size(), original.places.size());
  EXPECT_EQ(loaded.tags.size(), original.tags.size());
  EXPECT_EQ(loaded.tag_classes.size(), original.tag_classes.size());
  EXPECT_EQ(loaded.organisations.size(), original.organisations.size());
  EXPECT_EQ(loaded.NumEdges(), original.NumEdges());
}

TEST_F(SerializerFixture, LoaderRoundtripPreservesPersonAttributes) {
  auto loaded_or = storage::LoadCsvBasic(dir() + "/basic");
  ASSERT_TRUE(loaded_or.ok());
  const core::SocialNetwork& loaded = loaded_or.value();
  const core::SocialNetwork& original = data().network;
  // Persons are written in order; compare one-to-one.
  ASSERT_EQ(loaded.persons.size(), original.persons.size());
  for (size_t i = 0; i < loaded.persons.size(); ++i) {
    const core::Person& a = loaded.persons[i];
    const core::Person& b = original.persons[i];
    EXPECT_EQ(a.id, b.id);
    EXPECT_EQ(a.first_name, b.first_name);
    EXPECT_EQ(a.last_name, b.last_name);
    EXPECT_EQ(a.gender, b.gender);
    EXPECT_EQ(a.birthday, b.birthday);
    EXPECT_EQ(a.creation_date, b.creation_date);
    EXPECT_EQ(a.city, b.city);
    EXPECT_EQ(a.emails, b.emails);
    EXPECT_EQ(a.speaks, b.speaks);
    EXPECT_EQ(a.interests, b.interests);
    ASSERT_EQ(a.study_at.size(), b.study_at.size());
    for (size_t s = 0; s < a.study_at.size(); ++s) {
      EXPECT_EQ(a.study_at[s].university, b.study_at[s].university);
      EXPECT_EQ(a.study_at[s].class_year, b.study_at[s].class_year);
    }
  }
}

TEST_F(SerializerFixture, LoaderRoundtripPreservesMessages) {
  auto loaded_or = storage::LoadCsvBasic(dir() + "/basic");
  ASSERT_TRUE(loaded_or.ok());
  const core::SocialNetwork& loaded = loaded_or.value();
  const core::SocialNetwork& original = data().network;
  ASSERT_EQ(loaded.posts.size(), original.posts.size());
  for (size_t i = 0; i < loaded.posts.size(); ++i) {
    EXPECT_EQ(loaded.posts[i].id, original.posts[i].id);
    EXPECT_EQ(loaded.posts[i].creation_date, original.posts[i].creation_date);
    EXPECT_EQ(loaded.posts[i].creator, original.posts[i].creator);
    EXPECT_EQ(loaded.posts[i].forum, original.posts[i].forum);
    EXPECT_EQ(loaded.posts[i].length, original.posts[i].length);
    EXPECT_EQ(loaded.posts[i].tags, original.posts[i].tags);
  }
  ASSERT_EQ(loaded.comments.size(), original.comments.size());
  for (size_t i = 0; i < loaded.comments.size(); ++i) {
    EXPECT_EQ(loaded.comments[i].id, original.comments[i].id);
    EXPECT_EQ(loaded.comments[i].reply_of_post,
              original.comments[i].reply_of_post);
    EXPECT_EQ(loaded.comments[i].reply_of_comment,
              original.comments[i].reply_of_comment);
  }
}

TEST_F(SerializerFixture, UpdateStreamFilesSplitPersonVsForum) {
  std::string person_file = dir() + "/streams/updateStream_0_0_person.csv";
  std::string forum_file = dir() + "/streams/updateStream_0_0_forum.csv";
  ASSERT_TRUE(fs::exists(person_file));
  ASSERT_TRUE(fs::exists(forum_file));

  size_t person_rows = 0, forum_rows = 0;
  std::FILE* f = std::fopen(person_file.c_str(), "r");
  char line[1 << 16];
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    ++person_rows;
    // opId of every person-stream row is 1 (IU 1).
    std::string s(line);
    size_t p1 = s.find('|');
    size_t p2 = s.find('|', p1 + 1);
    size_t p3 = s.find('|', p2 + 1);
    EXPECT_EQ(s.substr(p2 + 1, p3 - p2 - 1), "1");
  }
  std::fclose(f);
  f = std::fopen(forum_file.c_str(), "r");
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    ++forum_rows;
    std::string s(line);
    size_t p1 = s.find('|');
    size_t p2 = s.find('|', p1 + 1);
    size_t p3 = s.find('|', p2 + 1);
    std::string op = s.substr(p2 + 1, p3 - p2 - 1);
    int op_num = std::stoi(op);
    EXPECT_GE(op_num, 2);
    EXPECT_LE(op_num, 8);
  }
  std::fclose(f);
  EXPECT_EQ(person_rows + forum_rows, data().updates.size());
}

TEST_F(SerializerFixture, UpdateEventFieldCountsMatchTable218) {
  // Spec Table 2.18 field counts (excluding t, t_d, opId).
  for (const UpdateEvent& e : data().updates) {
    size_t fields = UpdateEventFields(e).size();
    switch (e.kind) {
      case UpdateKind::kAddPerson:
        EXPECT_EQ(fields, 14u);
        break;
      case UpdateKind::kAddLikePost:
      case UpdateKind::kAddLikeComment:
      case UpdateKind::kAddMembership:
      case UpdateKind::kAddKnows:
        EXPECT_EQ(fields, 3u);
        break;
      case UpdateKind::kAddForum:
        EXPECT_EQ(fields, 5u);
        break;
      case UpdateKind::kAddPost:
        EXPECT_EQ(fields, 12u);
        break;
      case UpdateKind::kAddComment:
        EXPECT_EQ(fields, 11u);
        break;
      case UpdateKind::kDelPerson:
      case UpdateKind::kDelForum:
      case UpdateKind::kDelPost:
      case UpdateKind::kDelComment:
        EXPECT_EQ(fields, 1u);
        break;
      case UpdateKind::kDelLikePost:
      case UpdateKind::kDelLikeComment:
      case UpdateKind::kDelMembership:
      case UpdateKind::kDelKnows:
        EXPECT_EQ(fields, 2u);
        break;
    }
  }
}

TEST_F(SerializerFixture, SerializedTextHasNoSeparatorLeaks) {
  auto table_or = util::ReadCsv(dir() + "/basic/dynamic/post_0_0.csv");
  ASSERT_TRUE(table_or.ok());
  // Row width equals header width for every row is checked by ReadCsv; a
  // content field containing '|' would have failed the read.
  EXPECT_EQ(table_or.value().header.size(), 8u);
}

}  // namespace
}  // namespace snb::datagen

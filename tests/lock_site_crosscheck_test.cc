// Cross-checks the two lock-level sources of truth against each other:
// the kDeclaredLockLevels registry in src/analysis/lock_site.h (what the
// dynamic lock graph documents) and the SNB_LOCK_LEVEL tokens snb_lint
// re-derives from the tree (`--dump-lock-sites`). A level declared in the
// code but missing from the registry — or the reverse, or a level
// disagreement — is a test failure, never a silent divergence.
//
// SNB_LINT_BIN and SNB_LINT_ROOT arrive as compile definitions from
// tests/CMakeLists.txt.

#include <cstdio>
#include <map>
#include <sstream>
#include <string>

#include "analysis/lock_site.h"
#include "gtest/gtest.h"

namespace {

/// name -> level for every *levelled* site snb_lint sees in the tree.
/// Sites registered with SNB_LOCK_SITE (no level) dump level -1 and are
/// exempt from level ordering, so they are not part of this contract.
std::map<std::string, int> DumpedLevels(std::string* error) {
  std::string cmd = std::string(SNB_LINT_BIN) + " --root " + SNB_LINT_ROOT +
                    " --dump-lock-sites 2>&1";
  FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) {
    *error = "popen failed for: " + cmd;
    return {};
  }
  std::string output;
  char buf[512];
  while (fgets(buf, sizeof(buf), pipe) != nullptr) output += buf;
  int status = pclose(pipe);
  if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
    *error = "snb_lint --dump-lock-sites failed:\n" + output;
    return {};
  }
  std::map<std::string, int> levels;
  std::istringstream lines(output);
  std::string line;
  while (std::getline(lines, line)) {
    std::istringstream fields(line);
    std::string name, level_str;
    if (!std::getline(fields, name, '\t') ||
        !std::getline(fields, level_str, '\t')) {
      continue;
    }
    int level = std::stoi(level_str);
    if (level != snb::analysis::kNoLevel) levels[name] = level;
  }
  return levels;
}

TEST(LockSiteCrossCheck, RegistryMatchesDeclaredLevels) {
  std::string error;
  std::map<std::string, int> dumped = DumpedLevels(&error);
  ASSERT_TRUE(error.empty()) << error;
  ASSERT_FALSE(dumped.empty())
      << "no levelled lock sites found — extraction regressed";

  std::map<std::string, int> registry;
  for (const auto& row : snb::analysis::kDeclaredLockLevels) {
    registry[row.name] = row.level;
  }

  for (const auto& [name, level] : registry) {
    auto it = dumped.find(name);
    EXPECT_TRUE(it != dumped.end())
        << "registry lists '" << name
        << "' but no SNB_LOCK_LEVEL in the tree declares it";
    if (it != dumped.end()) {
      EXPECT_EQ(it->second, level)
          << "level mismatch for '" << name << "': registry says " << level
          << ", the tree declares " << it->second;
    }
  }
  for (const auto& [name, level] : dumped) {
    EXPECT_TRUE(registry.count(name))
        << "SNB_LOCK_LEVEL(\"" << name << "\", " << level
        << ") in the tree is missing from kDeclaredLockLevels in "
           "src/analysis/lock_site.h";
  }
}

}  // namespace

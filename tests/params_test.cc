// Parameter-curation tests: the P1/P2 properties of spec §3.3 (bounded
// variance, stable distributions), full coverage of all 39 query templates,
// and substitution-parameter file output (§2.3.4.4).

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "datagen/datagen.h"
#include "params/parameter_curation.h"
#include "storage/graph.h"

namespace snb::params {
namespace {

class ParamsFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    datagen::DatagenConfig cfg;
    cfg.num_persons = 400;
    cfg.activity_scale = 0.4;
    datagen::GeneratedData data = datagen::Generate(cfg);
    graph_ = new storage::Graph(std::move(data.network));
  }
  static void TearDownTestSuite() { delete graph_; }
  static const storage::Graph& graph() { return *graph_; }

 private:
  static storage::Graph* graph_;
};

storage::Graph* ParamsFixture::graph_ = nullptr;

TEST_F(ParamsFixture, CuratedPersonsHaveBoundedVariance) {
  CurationConfig cfg;
  cfg.per_query = 25;
  CuratedPersons curated = CuratePersons(graph(), cfg);
  ASSERT_GE(curated.selected.size(), 10u);
  // P1: the selected bindings' friend-count spread is far below the
  // population's.
  EXPECT_LT(curated.selected_friend_stddev,
            curated.population_friend_stddev * 0.5);
  for (const PersonCounts& c : curated.selected) {
    EXPECT_GT(c.friends, 0);
  }
}

TEST_F(ParamsFixture, CurationIsDeterministicAndStable) {
  CurationConfig cfg;
  cfg.per_query = 15;
  CuratedPersons a = CuratePersons(graph(), cfg);
  CuratedPersons b = CuratePersons(graph(), cfg);
  ASSERT_EQ(a.selected.size(), b.selected.size());
  for (size_t i = 0; i < a.selected.size(); ++i) {
    EXPECT_EQ(a.selected[i].person, b.selected[i].person);  // P2
  }
}

TEST_F(ParamsFixture, TwoSamplesHaveSimilarCountDistributions) {
  // P2: different-size samples select around the same median.
  CurationConfig small_cfg;
  small_cfg.per_query = 10;
  CurationConfig large_cfg;
  large_cfg.per_query = 30;
  CuratedPersons small = CuratePersons(graph(), small_cfg);
  CuratedPersons large = CuratePersons(graph(), large_cfg);
  ASSERT_FALSE(small.selected.empty());
  ASSERT_FALSE(large.selected.empty());
  auto mean_friends = [](const CuratedPersons& c) {
    double total = 0;
    for (const PersonCounts& p : c.selected) {
      total += static_cast<double>(p.friends);
    }
    return total / static_cast<double>(c.selected.size());
  };
  double ms = mean_friends(small);
  double ml = mean_friends(large);
  EXPECT_LT(std::abs(ms - ml) / std::max(ms, ml), 0.35);
}

TEST_F(ParamsFixture, AllQueryTemplatesGetBindings) {
  CurationConfig cfg;
  cfg.per_query = 7;
  WorkloadParameters wp = CurateParameters(graph(), cfg);
  EXPECT_EQ(wp.ic1.size(), 7u);
  EXPECT_EQ(wp.ic7.size(), 7u);
  EXPECT_EQ(wp.ic14.size(), 7u);
  EXPECT_EQ(wp.bi1.size(), 7u);
  EXPECT_EQ(wp.bi13.size(), 7u);
  EXPECT_EQ(wp.bi25.size(), 7u);
  // Spot-check binding plausibility.
  for (const auto& p : wp.ic1) {
    EXPECT_NE(graph().PersonIdx(p.person_id), storage::kNoIdx);
    EXPECT_FALSE(p.first_name.empty());
  }
  for (const auto& p : wp.bi13) {
    EXPECT_NE(graph().PlaceByName(p.country), storage::kNoIdx);
  }
  for (const auto& p : wp.bi20) {
    EXPECT_EQ(p.tag_classes.size(), 3u);
  }
  for (const auto& p : wp.bi16) {
    EXPECT_GE(p.max_path_distance, p.min_path_distance);
  }
}

TEST_F(ParamsFixture, CuratedPersonsAreWellConnected) {
  CurationConfig cfg;
  WorkloadParameters wp = CurateParameters(graph(), cfg);
  for (const auto& p : wp.ic2) {
    uint32_t idx = graph().PersonIdx(p.person_id);
    ASSERT_NE(idx, storage::kNoIdx);
    EXPECT_GT(graph().Knows().Degree(idx), 0u);
  }
}

TEST_F(ParamsFixture, WritesSubstitutionParameterFiles) {
  CurationConfig cfg;
  cfg.per_query = 5;
  WorkloadParameters wp = CurateParameters(graph(), cfg);
  std::string dir = ::testing::TempDir() + "/snb_subst_params";
  std::filesystem::remove_all(dir);
  ASSERT_TRUE(WriteSubstitutionParameters(wp, dir).ok());

  EXPECT_TRUE(std::filesystem::exists(dir + "/interactive_1_param.txt"));
  EXPECT_TRUE(std::filesystem::exists(dir + "/bi_1_param.txt"));
  EXPECT_TRUE(std::filesystem::exists(dir + "/bi_16_param.txt"));

  // Lines are JSON-formatted key/value collections (spec §3.3 example).
  std::ifstream in(dir + "/interactive_1_param.txt");
  std::string line;
  size_t lines = 0;
  while (std::getline(in, line)) {
    ++lines;
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_NE(line.find("\"personId\""), std::string::npos);
    EXPECT_NE(line.find("\"firstName\""), std::string::npos);
  }
  EXPECT_EQ(lines, 5u);
}

}  // namespace
}  // namespace snb::params

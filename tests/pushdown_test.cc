// Tests for top-k bound pushdown (CP-1.3) and adaptive dispatch: the
// pushdown engines must stay bit-identical to the naive oracle under every
// pool size and under adversarial bound-publication interleavings (morsel
// issue order permuted by seed); the scan counters must prove pruning
// actually fires; BoundRef/TopK/DispatchModel obey their unit contracts;
// and the like-count zones the bound pruning trusts must be maintained by
// the update path (NoteLike after IU 2/3).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <unordered_set>
#include <vector>

#include "bi/bi.h"
#include "bi/naive.h"
#include "bi/parallel.h"
#include "core/date_time.h"
#include "datagen/datagen.h"
#include "engine/bound.h"
#include "engine/dispatch.h"
#include "engine/morsel.h"
#include "engine/top_k.h"
#include "storage/graph.h"
#include "storage/message_index.h"
#include "storage/scan_stats.h"
#include "util/thread_pool.h"
#include "validate/validator.h"

namespace snb {
namespace {

// ---- BoundRef / TopK unit contracts ---------------------------------------

TEST(BoundRefTest, UnsetBoundNeverPrunes) {
  engine::BoundRef bound;
  EXPECT_EQ(bound.Get(), engine::BoundRef::kUnset);
  EXPECT_FALSE(bound.CannotPlace(0));
  EXPECT_FALSE(bound.CannotPlace(-1000));
}

TEST(BoundRefTest, TightenIsMonotoneAndTiesSurvive) {
  engine::BoundRef bound;
  bound.Tighten(5);
  EXPECT_TRUE(bound.CannotPlace(4));   // strictly worse: pruned
  EXPECT_FALSE(bound.CannotPlace(5));  // tie: must run the tie-break
  EXPECT_FALSE(bound.CannotPlace(6));  // better: kept
  bound.Tighten(3);  // looser publish must not lower the bound
  EXPECT_EQ(bound.Get(), 5);
  bound.Tighten(7);
  EXPECT_EQ(bound.Get(), 7);
}

TEST(TopKTest, PublishBoundOnlyOnceFull) {
  auto better = [](int a, int b) { return a > b; };
  engine::TopK<int, decltype(better)> top(3, better);
  engine::BoundRef bound;
  top.Add(10);
  top.Add(30);
  top.PublishBound(bound, [](int v) { return int64_t{v}; });
  EXPECT_EQ(bound.Get(), engine::BoundRef::kUnset) << "heap not full yet";
  top.Add(20);
  top.PublishBound(bound, [](int v) { return int64_t{v}; });
  EXPECT_EQ(bound.Get(), 10) << "k-th (worst retained) element";
  top.Add(25);  // evicts 10; k-th is now 20
  top.PublishBound(bound, [](int v) { return int64_t{v}; });
  EXPECT_EQ(bound.Get(), 20);
}

// ---- DispatchModel unit contracts -----------------------------------------

TEST(DispatchModelTest, RefusesWithoutSecondHardwareThread) {
  engine::DispatchModel model(/*workers=*/4, /*hardware_threads=*/1);
  const auto d = model.Decide(12, 100'000'000, engine::kDefaultMorselSize);
  EXPECT_EQ(d.choice, engine::DispatchChoice::kSequential);
}

TEST(DispatchModelTest, RefusesUnderFanoutFloor) {
  engine::DispatchModel model(/*workers=*/4, /*hardware_threads=*/8);
  // 3 morsels of input: under the fan-out floor regardless of speedup.
  const auto d = model.Decide(17, 3 * engine::kDefaultMorselSize,
                              engine::kDefaultMorselSize);
  EXPECT_LT(d.num_morsels, engine::kMinMorselsForFanout);
  EXPECT_EQ(d.choice, engine::DispatchChoice::kSequential);
}

TEST(DispatchModelTest, ChoosesMorselForLargeWork) {
  engine::DispatchModel model(/*workers=*/4, /*hardware_threads=*/8);
  const auto d = model.Decide(1, 100'000'000, engine::kDefaultMorselSize);
  EXPECT_EQ(d.choice, engine::DispatchChoice::kMorsel);
  EXPECT_GE(d.predicted_speedup, engine::DispatchModel::kMinPredictedSpeedup);
  EXPECT_EQ(d.elements, 100'000'000u);
}

TEST(DispatchModelTest, RefusesWhenOverheadDominates) {
  engine::DispatchModel model(/*workers=*/8, /*hardware_threads=*/16);
  // Just over the floor, but eight helpers' handoff overhead swamps the
  // few hundred microseconds of actual work.
  const auto d = model.Decide(
      17, engine::kMinMorselsForFanout * engine::kDefaultMorselSize,
      engine::kDefaultMorselSize);
  EXPECT_EQ(d.choice, engine::DispatchChoice::kSequential);
  EXPECT_LT(d.predicted_speedup, engine::DispatchModel::kMinPredictedSpeedup);
}

// ---- Morsel fan-out floor --------------------------------------------------

TEST(MorselFloorTest, TinyInputsNeverFanOut) {
  util::ThreadPool pool(4);
  const size_t floor = engine::internal::GlobalMorselTuning()
                           .min_morsels_for_fanout;
  EXPECT_EQ(engine::internal::SlotsFor(pool, floor - 1), 1u);
  EXPECT_EQ(engine::internal::SlotsFor(pool, floor),
            std::min<size_t>(pool.num_threads() + 1, floor));
  // Tests may drop the floor to exercise the machinery on small fixtures.
  engine::internal::GlobalMorselTuning().min_morsels_for_fanout = 1;
  EXPECT_EQ(engine::internal::SlotsFor(pool, 2), 2u);
  engine::internal::GlobalMorselTuning().min_morsels_for_fanout = floor;
}

// ---- Engine cross-validation under bound races -----------------------------

class PushdownFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    datagen::DatagenConfig cfg;
    cfg.num_persons = 250;
    cfg.activity_scale = 0.5;
    graph_ = new storage::Graph(std::move(datagen::Generate(cfg).network));
  }
  static void TearDownTestSuite() {
    delete graph_;
    graph_ = nullptr;
  }
  void TearDown() override {
    // Every test restores the process-global tuning it may have touched.
    engine::internal::GlobalMorselTuning() = engine::internal::MorselTuning{};
  }
  static const storage::Graph& graph() { return *graph_; }

  /// A date around the middle of the sorted index, so ranges anchored at it
  /// leave something to prune on both sides.
  static core::Date MidDate() {
    const storage::MessageDateIndex& idx = graph().MessageIndex();
    return core::DateFromDateTime(idx.BaseDateAt(idx.base_size() / 2));
  }

 private:
  static storage::Graph* graph_;
};

storage::Graph* PushdownFixture::graph_ = nullptr;

TEST_F(PushdownFixture, Bi12BitIdenticalUnderBoundRaceInterleavings) {
  // A permissive binding: most messages qualify, so the shared bound is
  // published early and races between slots actually happen.
  bi::Bi12Params p{core::DateFromCivil(2010, 1, 1), 0};
  const auto expected = bi::naive::RunBi12(graph(), p);
  ASSERT_EQ(bi::RunBi12(graph(), p), expected);
  engine::internal::GlobalMorselTuning().min_morsels_for_fanout = 1;
  for (uint64_t seed : {0ull, 1ull, 7ull, 42ull, 12345ull}) {
    engine::internal::GlobalMorselTuning().shuffle_seed = seed;
    for (size_t threads : {1u, 2u, 4u, 8u}) {
      util::ThreadPool pool(threads);
      EXPECT_EQ(bi::parallel::RunBi12(graph(), p, pool), expected)
          << "seed=" << seed << " threads=" << threads;
    }
  }
}

TEST_F(PushdownFixture, Bi2AndBi14BitIdenticalUnderShuffledMorsels) {
  bi::Bi2Params p2;
  p2.start_date = core::DateFromCivil(2010, 1, 1);
  p2.end_date = MidDate();
  p2.country1 = graph().PlaceAt(graph().PersonCountry(0)).name;
  p2.country2 = graph().PlaceAt(graph().PersonCountry(1)).name;
  p2.simulation_end = core::DateFromCivil(2013, 1, 1);
  p2.threshold = 0;
  bi::Bi14Params p14{core::DateFromCivil(2010, 1, 1), MidDate()};
  const auto e2 = bi::naive::RunBi2(graph(), p2);
  const auto e14 = bi::naive::RunBi14(graph(), p14);
  ASSERT_EQ(bi::RunBi2(graph(), p2), e2);
  ASSERT_EQ(bi::RunBi14(graph(), p14), e14);
  engine::internal::GlobalMorselTuning().min_morsels_for_fanout = 1;
  for (uint64_t seed : {0ull, 3ull, 99ull}) {
    engine::internal::GlobalMorselTuning().shuffle_seed = seed;
    util::ThreadPool pool(4);
    EXPECT_EQ(bi::parallel::RunBi2(graph(), p2, pool), e2) << "seed=" << seed;
    EXPECT_EQ(bi::parallel::RunBi14(graph(), p14, pool), e14)
        << "seed=" << seed;
  }
}

TEST_F(PushdownFixture, EmptyResultsAgreeAcrossEngines) {
  util::ThreadPool pool(4);
  // Windows past the data: nothing qualifies anywhere.
  bi::Bi12Params p12{core::DateFromCivil(2040, 1, 1), 0};
  bi::Bi14Params p14{core::DateFromCivil(2040, 1, 1),
                     core::DateFromCivil(2041, 1, 1)};
  bi::Bi6Params p6{"no-such-tag"};
  EXPECT_TRUE(bi::RunBi12(graph(), p12).empty());
  EXPECT_EQ(bi::RunBi12(graph(), p12), bi::naive::RunBi12(graph(), p12));
  EXPECT_EQ(bi::parallel::RunBi12(graph(), p12, pool),
            bi::RunBi12(graph(), p12));
  EXPECT_EQ(bi::RunBi14(graph(), p14), bi::naive::RunBi14(graph(), p14));
  EXPECT_EQ(bi::parallel::RunBi14(graph(), p14, pool),
            bi::RunBi14(graph(), p14));
  EXPECT_TRUE(bi::RunBi6(graph(), p6).empty());
  EXPECT_EQ(bi::parallel::RunBi6(graph(), p6, pool), bi::RunBi6(graph(), p6));
}

TEST_F(PushdownFixture, KExceedsCandidatesKeepsEveryRow) {
  // A window so narrow the top-100 heap never fills: the bound must stay
  // unset and every qualifying row must survive, in oracle order.
  const core::Date mid = MidDate();
  bi::Bi12Params p{mid, 0};
  // Shrink until fewer than 100 rows qualify (raise the threshold).
  auto rows = bi::RunBi12(graph(), p);
  while (rows.size() >= 100 && p.like_threshold < 1000) {
    ++p.like_threshold;
    rows = bi::RunBi12(graph(), p);
  }
  ASSERT_LT(rows.size(), 100u) << "fixture too like-happy to underfill";
  EXPECT_EQ(rows, bi::naive::RunBi12(graph(), p));
  util::ThreadPool pool(4);
  EXPECT_EQ(bi::parallel::RunBi12(graph(), p, pool), rows);
}

TEST_F(PushdownFixture, CountersProvePruningFires) {
  bi::Bi12Params p{MidDate(), 0};
  storage::ScanStats stats;
  {
    storage::ScopedScanStats guard(&stats);
    bi::RunBi12(graph(), p);
  }
  EXPECT_GT(stats.rows_decoded.load(), 0u);
  // The range anchored mid-index must date-prune the front half.
  EXPECT_GT(stats.blocks_skipped_date.load(), 0u);
  // A zero threshold overfills the heap, so the bound must drop rows.
  EXPECT_GT(stats.rows_skipped_bound.load() +
                stats.blocks_skipped_bound.load(),
            0u);
}

TEST_F(PushdownFixture, CountersAggregateAcrossMorselSlots) {
  engine::internal::GlobalMorselTuning().min_morsels_for_fanout = 1;
  bi::Bi12Params p{MidDate(), 0};
  util::ThreadPool pool(4);
  storage::ScanStats stats;
  {
    storage::ScopedScanStats guard(&stats);
    bi::parallel::RunBi12(graph(), p, pool);
  }
  // Helper threads must re-install the caller's sink: a parallel run
  // decodes the same candidate set, so the counter cannot be zero.
  EXPECT_GT(stats.rows_decoded.load(), 0u);
}

// ---- Materialized 2-hop endpoints ------------------------------------------

TEST_F(PushdownFixture, MessageForumMatchesTwoHopDerivation) {
  for (uint32_t i = 0; i < graph().NumPosts(); ++i) {
    ASSERT_EQ(graph().MessageForum(storage::Graph::MessageOfPost(i)),
              graph().PostForum(i));
  }
  for (uint32_t c = 0; c < graph().NumComments(); ++c) {
    ASSERT_EQ(graph().MessageForum(storage::Graph::MessageOfComment(c)),
              graph().PostForum(graph().CommentRootPost(c)));
    ASSERT_EQ(graph().CommentRootLanguageCode(c),
              graph().PostLanguageCode(graph().CommentRootPost(c)));
  }
}

// ---- NoteLike zone maintenance under updates -------------------------------

TEST(NoteLikeTest, AddLikeRaisesZoneMaxSoBoundPruningStaysSound) {
  datagen::DatagenConfig cfg;
  cfg.num_persons = 120;
  cfg.activity_scale = 0.5;
  storage::Graph graph(std::move(datagen::Generate(cfg).network));
  const storage::MessageDateIndex& idx = graph.MessageIndex();
  ASSERT_GT(idx.base_size(), 0u);

  // Find the first base entry that is a post and its block's zone max.
  uint32_t post = storage::kNoIdx;
  size_t block = 0;
  idx.ForEachBase([&](size_t i, uint32_t msg, core::DateTime) {
    if (post == storage::kNoIdx && storage::Graph::IsPost(msg)) {
      post = msg;
      block = i / storage::columnar::ColumnBlock::kMaxValues;
    }
  });
  ASSERT_NE(post, storage::kNoIdx);

  // Like it from every person not already a liker until its degree clears
  // the old zone max; NoteLike must keep the zone an upper bound.
  const uint32_t old_zone = idx.BaseBlockMaxLikes(block);
  std::unordered_set<uint32_t> likers;
  graph.PostLikers().ForEach(post, [&](uint32_t p) { likers.insert(p); });
  const core::DateTime when = core::DateTimeFromCivil(2013, 1, 1);
  for (uint32_t p = 0; p < graph.NumPersons(); ++p) {
    if (graph.PostLikers().Degree(post) > old_zone) break;
    if (likers.contains(p)) continue;
    graph.AddLikePost(graph.PersonAt(p).id, graph.PostAt(post).id, when);
  }
  ASSERT_GT(graph.PostLikers().Degree(post), old_zone)
      << "fixture too small to overtake the zone max";
  EXPECT_GE(idx.BaseBlockMaxLikes(block), graph.PostLikers().Degree(post));

  // A message appended through the update path lands in the tail; liking it
  // must raise the tail block's like zone the same way.
  core::Post fresh = graph.PostAt(0);
  fresh.id = 1u << 30;
  fresh.creation_date = core::DateTimeFromCivil(2030, 6, 15);
  fresh.tags.clear();
  const uint32_t fresh_idx = graph.AddPost(fresh);
  graph.AddLikePost(graph.PersonAt(0).id, fresh.id, when);
  ASSERT_GT(idx.NumTailBlocks(), 0u);
  EXPECT_GE(idx.TailZoneAt(idx.NumTailBlocks() - 1).max_likes,
            graph.PostLikers().Degree(fresh_idx));

  // The whole store still passes every invariant — including the new
  // like-zone-bounds — after the update traffic.
  validate::ValidationReport report = validate::ValidateGraph(graph);
  EXPECT_TRUE(report.ok()) << report.ToString();
}

}  // namespace
}  // namespace snb

// Recovery simulation (spec §6.3): checkpoint a mutated graph to disk
// through export + CsvBasic serialization, "crash", reload, and verify the
// last committed update is present and query results are unchanged.

#include <gtest/gtest.h>

#include <filesystem>

#include "bi/bi.h"
#include "datagen/datagen.h"
#include "datagen/serializer.h"
#include "interactive/interactive.h"
#include "interactive/updates.h"
#include "params/parameter_curation.h"
#include "storage/consistency.h"
#include "storage/export.h"
#include "storage/graph.h"
#include "storage/loader.h"
#include "validate/validator.h"

namespace snb::storage {
namespace {

TEST(ExportTest, RoundTripPreservesEverything) {
  datagen::DatagenConfig cfg;
  cfg.num_persons = 220;
  cfg.activity_scale = 0.4;
  datagen::GeneratedData data = datagen::Generate(cfg);
  core::SocialNetwork original = data.network;  // keep a copy
  Graph graph(std::move(data.network));

  core::SocialNetwork exported = ExportNetwork(graph);
  EXPECT_EQ(exported.persons.size(), original.persons.size());
  EXPECT_EQ(exported.posts.size(), original.posts.size());
  EXPECT_EQ(exported.comments.size(), original.comments.size());
  EXPECT_EQ(exported.knows.size(), original.knows.size());
  EXPECT_EQ(exported.likes.size(), original.likes.size());
  EXPECT_EQ(exported.memberships.size(), original.memberships.size());
  EXPECT_EQ(exported.NumEdges(), original.NumEdges());

  // The re-built graph passes every representation invariant and answers
  // queries identically.
  Graph rebuilt(std::move(exported));
  validate::ValidationReport vr = validate::ValidateGraph(rebuilt);
  EXPECT_TRUE(vr.ok()) << vr.ToString();
  bi::Bi1Params probe{core::DateFromCivil(2013, 1, 1)};
  EXPECT_EQ(bi::RunBi1(rebuilt, probe), bi::RunBi1(graph, probe));
}

TEST(RecoveryTest, CheckpointAfterUpdatesSurvivesCrash) {
  datagen::DatagenConfig cfg;
  cfg.num_persons = 220;
  cfg.activity_scale = 0.4;
  datagen::GeneratedData data = datagen::Generate(cfg);
  Graph live(std::move(data.network));

  // Apply the first half of the update stream ("measured run"), remember
  // the last committed operation.
  size_t half = data.updates.size() / 2;
  ASSERT_GT(half, 10u);
  for (size_t i = 0; i < half; ++i) {
    ASSERT_TRUE(interactive::ApplyUpdate(live, data.updates[i]).ok());
  }
  const datagen::UpdateEvent& last = data.updates[half - 1];

  // Checkpoint (§6.3: at most every 10 minutes; here: on demand).
  std::string dir = ::testing::TempDir() + "/snb_recovery_checkpoint";
  std::filesystem::remove_all(dir);
  ASSERT_TRUE(
      datagen::WriteCsvBasic(ExportNetwork(live), dir).ok());

  // "Power failure" — the live graph is gone; recover from the checkpoint.
  auto reloaded_or = LoadCsvBasic(dir);
  ASSERT_TRUE(reloaded_or.ok()) << reloaded_or.status().ToString();
  Graph recovered(std::move(reloaded_or.value()));
  {
    validate::ValidationReport vr = validate::ValidateGraph(recovered);
    EXPECT_TRUE(vr.ok()) << vr.ToString();
  }

  // The last committed update is in the recovered database (§6.3's check).
  switch (last.kind) {
    case datagen::UpdateKind::kAddPerson:
      EXPECT_NE(recovered.PersonIdx(
                    std::get<core::Person>(last.payload).id),
                kNoIdx);
      break;
    case datagen::UpdateKind::kAddPost:
      EXPECT_NE(recovered.PostIdx(std::get<core::Post>(last.payload).id),
                kNoIdx);
      break;
    case datagen::UpdateKind::kAddComment:
      EXPECT_NE(
          recovered.CommentIdx(std::get<core::Comment>(last.payload).id),
          kNoIdx);
      break;
    case datagen::UpdateKind::kAddForum:
      EXPECT_NE(recovered.ForumIdx(std::get<core::Forum>(last.payload).id),
                kNoIdx);
      break;
    case datagen::UpdateKind::kAddKnows: {
      const core::Knows& k = std::get<core::Knows>(last.payload);
      uint32_t a = recovered.PersonIdx(k.person1);
      uint32_t b = recovered.PersonIdx(k.person2);
      ASSERT_TRUE(a != kNoIdx && b != kNoIdx);
      EXPECT_TRUE(recovered.Knows().Contains(a, b));
      break;
    }
    case datagen::UpdateKind::kAddLikePost:
    case datagen::UpdateKind::kAddLikeComment: {
      const core::Like& l = std::get<core::Like>(last.payload);
      uint32_t person = recovered.PersonIdx(l.person);
      ASSERT_NE(person, kNoIdx);
      bool found = false;
      recovered.PersonLikes().ForEachDated(
          person, [&](uint32_t msg, core::DateTime) {
            if (recovered.MessageId(msg) == l.message &&
                Graph::IsPost(msg) == l.is_post) {
              found = true;
            }
          });
      EXPECT_TRUE(found);
      break;
    }
    case datagen::UpdateKind::kAddMembership: {
      const core::ForumMembership& m =
          std::get<core::ForumMembership>(last.payload);
      uint32_t forum = recovered.ForumIdx(m.forum);
      uint32_t person = recovered.PersonIdx(m.person);
      ASSERT_TRUE(forum != kNoIdx && person != kNoIdx);
      EXPECT_TRUE(recovered.ForumMembers().Contains(forum, person));
      break;
    }
    case datagen::UpdateKind::kDelPerson:
    case datagen::UpdateKind::kDelLikePost:
    case datagen::UpdateKind::kDelLikeComment:
    case datagen::UpdateKind::kDelForum:
    case datagen::UpdateKind::kDelMembership:
    case datagen::UpdateKind::kDelPost:
    case datagen::UpdateKind::kDelComment:
    case datagen::UpdateKind::kDelKnows:
      FAIL() << "generator updates are insert-only";
      break;
  }

  // Resume the workload on the recovered graph; results must match the
  // never-crashed path.
  for (size_t i = half; i < data.updates.size(); ++i) {
    ASSERT_TRUE(interactive::ApplyUpdate(live, data.updates[i]).ok());
    ASSERT_TRUE(interactive::ApplyUpdate(recovered, data.updates[i]).ok());
  }
  {
    // Update replay on a recovered store must also preserve the invariants.
    validate::ValidationReport vr = validate::ValidateGraph(recovered);
    EXPECT_TRUE(vr.ok()) << vr.ToString();
  }
  bi::Bi1Params probe{core::DateFromCivil(2013, 6, 1)};
  EXPECT_EQ(bi::RunBi1(recovered, probe), bi::RunBi1(live, probe));
  bi::Bi12Params trending{core::DateFromCivil(2010, 1, 1), 1};
  EXPECT_EQ(bi::RunBi12(recovered, trending), bi::RunBi12(live, trending));
  interactive::Ic13Params path{live.PersonAt(0).id, live.PersonAt(50).id};
  EXPECT_EQ(interactive::RunIc13(recovered, path),
            interactive::RunIc13(live, path));
}

}  // namespace
}  // namespace snb::storage

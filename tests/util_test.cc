// Unit tests for the util layer: deterministic RNG, samplers, CSV, thread
// pool.

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <numeric>
#include <set>

#include "util/csv.h"
#include "util/rng.h"
#include "util/thread_pool.h"
#include "util/zipf.h"

namespace snb::util {
namespace {

TEST(Mix64Test, IsDeterministicAndSpreads) {
  EXPECT_EQ(Mix64(1), Mix64(1));
  std::set<uint64_t> outputs;
  for (uint64_t i = 0; i < 1000; ++i) outputs.insert(Mix64(i));
  EXPECT_EQ(outputs.size(), 1000u);  // no collisions in a small range
}

TEST(MixSeedTest, OrderSensitive) {
  EXPECT_NE(MixSeed(1, 2, 3), MixSeed(3, 2, 1));
  EXPECT_NE(MixSeed(1, 2), MixSeed(2, 1));
  EXPECT_EQ(MixSeed(7, 8, 9), MixSeed(7, 8, 9));
}

TEST(RngTest, SameSeedSameStream) {
  Rng a(42, 1, 2);
  Rng b(42, 1, 2);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentStreamsDiffer) {
  Rng a(42, 1, 2);
  Rng b(42, 1, 3);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextU64() == b.NextU64()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, UniformIntBoundsInclusive) {
  Rng rng(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    int64_t v = rng.UniformInt(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    saw_lo |= v == 3;
    saw_hi |= v == 7;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformIntSingleton) {
  Rng rng(13);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.UniformInt(5, 5), 5);
}

TEST(RngTest, GeometricMeanApproximatelyCorrect) {
  Rng rng(17);
  const double p = 0.25;
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.Geometric(p));
  double mean = sum / n;
  EXPECT_NEAR(mean, (1 - p) / p, 0.1);  // expected 3.0
}

TEST(RngTest, GeometricWithCertainSuccessIsZero) {
  Rng rng(19);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.Geometric(1.0), 0);
}

TEST(RngTest, PowerLawStaysInRange) {
  Rng rng(23);
  for (int i = 0; i < 10000; ++i) {
    int64_t v = rng.PowerLaw(1, 100, 2.5);
    EXPECT_GE(v, 1);
    EXPECT_LE(v, 100);
  }
}

TEST(RngTest, PowerLawIsHeavyTailed) {
  Rng rng(29);
  int small = 0, large = 0;
  for (int i = 0; i < 100000; ++i) {
    int64_t v = rng.PowerLaw(1, 1000, 2.2);
    if (v == 1) ++small;
    if (v >= 100) ++large;
  }
  EXPECT_GT(small, 100000 / 2);  // mode at the minimum
  EXPECT_GT(large, 0);           // but the tail is populated
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(31);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 100000.0, 0.3, 0.01);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(37);
  double sum = 0, sq = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    double g = rng.Gaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(ZipfTest, PmfSumsToOne) {
  ZipfSampler zipf(50, 1.0);
  double total = 0;
  for (size_t i = 0; i < zipf.size(); ++i) total += zipf.Pmf(i);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(ZipfTest, RankZeroMostLikely) {
  ZipfSampler zipf(100, 1.0);
  Rng rng(41);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 100000; ++i) ++counts[zipf.Sample(rng)];
  EXPECT_GT(counts[0], counts[1]);
  EXPECT_GT(counts[1], counts[10]);
  EXPECT_GT(counts[0], 100000 / 10);  // head is heavy
}

class ZipfExponentTest : public ::testing::TestWithParam<double> {};

TEST_P(ZipfExponentTest, SamplesInRangeForAllExponents) {
  ZipfSampler zipf(37, GetParam());
  Rng rng(43);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(zipf.Sample(rng), 37u);
}

INSTANTIATE_TEST_SUITE_P(Exponents, ZipfExponentTest,
                         ::testing::Values(0.5, 0.9, 1.0, 1.5, 2.0));

TEST(CsvTest, WriterReaderRoundtrip) {
  std::string path = ::testing::TempDir() + "/csv_roundtrip.csv";
  CsvWriter writer;
  ASSERT_TRUE(writer.Open(path, {"id", "name", "value"}).ok());
  writer.WriteRow({"1", "alpha", "10"});
  writer.WriteRow({"2", "beta", ""});
  writer.WriteRow({"3", "", "30"});
  ASSERT_TRUE(writer.Close().ok());

  auto table_or = ReadCsv(path);
  ASSERT_TRUE(table_or.ok());
  const CsvTable& table = table_or.value();
  ASSERT_EQ(table.header.size(), 3u);
  EXPECT_EQ(table.header[1], "name");
  ASSERT_EQ(table.rows.size(), 3u);
  EXPECT_EQ(table.rows[1][2], "");
  EXPECT_EQ(table.rows[2][1], "");
  EXPECT_EQ(table.rows[0][1], "alpha");
}

TEST(CsvTest, ReadMissingFileFails) {
  auto result = ReadCsv("/nonexistent/definitely/not/here.csv");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIoError);
}

TEST(CsvTest, MultiValuedSplitJoin) {
  EXPECT_EQ(SplitMultiValued(""), std::vector<std::string>{});
  EXPECT_EQ(SplitMultiValued("a"), std::vector<std::string>{"a"});
  std::vector<std::string> expected{"a", "b", "c"};
  EXPECT_EQ(SplitMultiValued("a;b;c"), expected);
  EXPECT_EQ(JoinMultiValued(expected), "a;b;c");
  EXPECT_EQ(JoinMultiValued({}), "");
}

TEST(CsvTest, SanitizeFieldStripsSeparators) {
  EXPECT_EQ(SanitizeField("a|b;c\nd"), "a b c d");
  EXPECT_EQ(SanitizeField("clean"), "clean");
}

TEST(StatusTest, OkAndErrors) {
  EXPECT_TRUE(Status::Ok().ok());
  Status e = Status::NotFound("missing");
  EXPECT_FALSE(e.ok());
  EXPECT_EQ(e.code(), StatusCode::kNotFound);
  EXPECT_EQ(e.message(), "missing");
}

TEST(StatusOrTest, HoldsValueOrStatus) {
  StatusOr<int> v(42);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), 42);
  StatusOr<int> e(Status::IoError("disk"));
  EXPECT_FALSE(e.ok());
  EXPECT_EQ(e.status().code(), StatusCode::kIoError);
}

TEST(ThreadPoolTest, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<int> hits(1000, 0);
  pool.ParallelFor(hits.size(), [&](size_t i) { hits[i] += 1; });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPoolTest, ParallelForShardsPartitionExactly) {
  ThreadPool pool(3);
  std::vector<int> hits(100, 0);
  pool.ParallelForShards(hits.size(), [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) hits[i] += 1;
  });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 100);
}

TEST(ThreadPoolTest, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.ParallelFor(0, [&](size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, SubmitAndWait) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 50; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 50);
}

}  // namespace
}  // namespace snb::util

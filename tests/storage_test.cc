// Graph store tests: adjacency CSR + overflow, index consistency between
// forward and reverse relations, message references, precomputed thread
// roots, and the update mutators (incrementally applying the update stream
// must converge to the graph built from the full network).

#include <gtest/gtest.h>

#include <unordered_map>
#include <unordered_set>

#include "datagen/datagen.h"
#include "interactive/updates.h"
#include "storage/adjacency.h"
#include "storage/graph.h"

namespace snb::storage {
namespace {

TEST(AdjacencyTest, BuildAndIterate) {
  AdjacencyList adj;
  adj.Build(4, {{0, 1}, {0, 2}, {2, 3}, {0, 3}}, /*with_dates=*/false);
  EXPECT_EQ(adj.num_nodes(), 4u);
  EXPECT_EQ(adj.num_edges(), 4u);
  EXPECT_EQ(adj.Degree(0), 3u);
  EXPECT_EQ(adj.Degree(1), 0u);
  EXPECT_EQ(adj.Degree(2), 1u);
  std::vector<uint32_t> seen;
  adj.ForEach(0, [&](uint32_t t) { seen.push_back(t); });
  EXPECT_EQ(seen, (std::vector<uint32_t>{1, 2, 3}));
  EXPECT_TRUE(adj.Contains(0, 2));
  EXPECT_FALSE(adj.Contains(1, 0));
}

TEST(AdjacencyTest, DatedEdgesCarryPayload) {
  AdjacencyList adj;
  adj.Build(2, {{0, 1, 1234}, {1, 0, 5678}}, /*with_dates=*/true);
  adj.ForEachDated(0, [](uint32_t t, core::DateTime d) {
    EXPECT_EQ(t, 1u);
    EXPECT_EQ(d, 1234);
  });
  adj.ForEachDated(1, [](uint32_t t, core::DateTime d) {
    EXPECT_EQ(t, 0u);
    EXPECT_EQ(d, 5678);
  });
}

TEST(AdjacencyTest, AppendMergesWithBase) {
  AdjacencyList adj;
  adj.Build(3, {{0, 1, 10}}, /*with_dates=*/true);
  adj.Append(0, 2, 20);
  adj.Append(1, 0, 30);
  EXPECT_EQ(adj.Degree(0), 2u);
  EXPECT_EQ(adj.num_edges(), 3u);
  std::vector<std::pair<uint32_t, core::DateTime>> seen;
  adj.ForEachDated(0, [&](uint32_t t, core::DateTime d) {
    seen.emplace_back(t, d);
  });
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], (std::pair<uint32_t, core::DateTime>{1, 10}));
  EXPECT_EQ(seen[1], (std::pair<uint32_t, core::DateTime>{2, 20}));
}

TEST(AdjacencyTest, AddNodesExtendsNodeSpace) {
  AdjacencyList adj;
  adj.Build(2, {{0, 1}}, false);
  adj.AddNodes(2);
  EXPECT_EQ(adj.num_nodes(), 4u);
  EXPECT_EQ(adj.Degree(3), 0u);
  adj.Append(3, 0);
  EXPECT_EQ(adj.Degree(3), 1u);
}

TEST(AdjacencyTest, EmptyBuild) {
  AdjacencyList adj;
  adj.Build(0, {}, false);
  EXPECT_EQ(adj.num_nodes(), 0u);
  adj.AddNodes(1);
  EXPECT_EQ(adj.num_nodes(), 1u);
  EXPECT_EQ(adj.Degree(0), 0u);
}

// ---------------------------------------------------------------------------

datagen::DatagenConfig SmallConfig() {
  datagen::DatagenConfig cfg;
  cfg.num_persons = 250;
  cfg.activity_scale = 0.4;
  return cfg;
}

class GraphFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data_ = new datagen::GeneratedData(datagen::Generate(SmallConfig()));
    core::SocialNetwork copy = data_->network;
    graph_ = new Graph(std::move(copy));
  }
  static void TearDownTestSuite() {
    delete graph_;
    delete data_;
  }
  static const Graph& graph() { return *graph_; }
  static const datagen::GeneratedData& data() { return *data_; }

 private:
  static datagen::GeneratedData* data_;
  static Graph* graph_;
};

datagen::GeneratedData* GraphFixture::data_ = nullptr;
Graph* GraphFixture::graph_ = nullptr;

TEST_F(GraphFixture, CountsMatchSource) {
  EXPECT_EQ(graph().NumPersons(), data().network.persons.size());
  EXPECT_EQ(graph().NumPosts(), data().network.posts.size());
  EXPECT_EQ(graph().NumComments(), data().network.comments.size());
  EXPECT_EQ(graph().NumForums(), data().network.forums.size());
  EXPECT_EQ(graph().NumMessages(),
            graph().NumPosts() + graph().NumComments());
}

TEST_F(GraphFixture, IdLookupsRoundtrip) {
  for (uint32_t i = 0; i < graph().NumPersons(); ++i) {
    EXPECT_EQ(graph().PersonIdx(graph().PersonAt(i).id), i);
  }
  for (uint32_t i = 0; i < graph().NumPosts(); ++i) {
    EXPECT_EQ(graph().PostIdx(graph().PostAt(i).id), i);
  }
  EXPECT_EQ(graph().PersonIdx(99999999), kNoIdx);
  EXPECT_EQ(graph().PlaceByName("Atlantis"), kNoIdx);
  EXPECT_NE(graph().PlaceByName("China"), kNoIdx);
  EXPECT_NE(graph().TagClassByName("Thing"), kNoIdx);
}

TEST_F(GraphFixture, MessageRefEncoding) {
  uint32_t post_ref = Graph::MessageOfPost(5);
  uint32_t comment_ref = Graph::MessageOfComment(5);
  EXPECT_TRUE(Graph::IsPost(post_ref));
  EXPECT_FALSE(Graph::IsPost(comment_ref));
  EXPECT_EQ(Graph::AsPost(post_ref), 5u);
  EXPECT_EQ(Graph::AsComment(comment_ref), 5u);
  EXPECT_NE(post_ref, comment_ref);
}

TEST_F(GraphFixture, KnowsIsSymmetricWithMatchingDates) {
  for (uint32_t p = 0; p < graph().NumPersons(); ++p) {
    graph().Knows().ForEachDated(p, [&](uint32_t q, core::DateTime d) {
      bool found = false;
      graph().Knows().ForEachDated(q, [&](uint32_t r, core::DateTime d2) {
        if (r == p && d2 == d) found = true;
      });
      EXPECT_TRUE(found) << p << " knows " << q << " asymmetric";
    });
  }
}

TEST_F(GraphFixture, ForwardReverseConsistency) {
  // person→posts vs post_creator.
  size_t total = 0;
  for (uint32_t p = 0; p < graph().NumPersons(); ++p) {
    graph().PersonPosts().ForEach(p, [&](uint32_t post) {
      EXPECT_EQ(graph().PostCreator(post), p);
      ++total;
    });
  }
  EXPECT_EQ(total, graph().NumPosts());

  // tag→posts vs post→tags.
  size_t tag_edges_fwd = 0, tag_edges_rev = 0;
  for (uint32_t post = 0; post < graph().NumPosts(); ++post) {
    tag_edges_fwd += graph().PostTags().Degree(post);
  }
  for (uint32_t tag = 0; tag < graph().NumTags(); ++tag) {
    tag_edges_rev += graph().TagPosts().Degree(tag);
  }
  EXPECT_EQ(tag_edges_fwd, tag_edges_rev);

  // forum members vs person forums.
  size_t members = 0, member_of = 0;
  for (uint32_t f = 0; f < graph().NumForums(); ++f) {
    members += graph().ForumMembers().Degree(f);
  }
  for (uint32_t p = 0; p < graph().NumPersons(); ++p) {
    member_of += graph().PersonForums().Degree(p);
  }
  EXPECT_EQ(members, member_of);
  EXPECT_EQ(members, data().network.memberships.size());

  // likes: person→likes vs likers-of-message.
  size_t likes_fwd = 0, likes_rev = 0;
  for (uint32_t p = 0; p < graph().NumPersons(); ++p) {
    likes_fwd += graph().PersonLikes().Degree(p);
  }
  for (uint32_t post = 0; post < graph().NumPosts(); ++post) {
    likes_rev += graph().PostLikers().Degree(post);
  }
  for (uint32_t c = 0; c < graph().NumComments(); ++c) {
    likes_rev += graph().CommentLikers().Degree(c);
  }
  EXPECT_EQ(likes_fwd, likes_rev);
  EXPECT_EQ(likes_fwd, data().network.likes.size());
}

TEST_F(GraphFixture, CommentRootPostsAreTransitivelyCorrect) {
  for (uint32_t c = 0; c < graph().NumComments(); ++c) {
    // Chase the reply chain manually and compare with the precomputed root.
    uint32_t msg = graph().CommentReplyOf(c);
    while (!Graph::IsPost(msg)) {
      msg = graph().CommentReplyOf(Graph::AsComment(msg));
    }
    EXPECT_EQ(graph().CommentRootPost(c), Graph::AsPost(msg));
  }
}

TEST_F(GraphFixture, PersonCountryMatchesCityHierarchy) {
  for (uint32_t p = 0; p < graph().NumPersons(); ++p) {
    uint32_t city = graph().PersonCity(p);
    EXPECT_EQ(graph().PlaceAt(city).type, core::PlaceType::kCity);
    uint32_t country = graph().PersonCountry(p);
    EXPECT_EQ(graph().PlaceAt(country).type, core::PlaceType::kCountry);
    EXPECT_EQ(graph().PlacePartOf(city), country);
    // Continent above the country.
    uint32_t continent = graph().PlacePartOf(country);
    EXPECT_EQ(graph().PlaceAt(continent).type, core::PlaceType::kContinent);
    EXPECT_EQ(graph().PlacePartOf(continent), kNoIdx);
  }
}

TEST_F(GraphFixture, CountryPersonsPartitionsPersons) {
  size_t total = 0;
  for (uint32_t place = 0; place < graph().NumPlaces(); ++place) {
    graph().CountryPersons().ForEach(place, [&](uint32_t p) {
      EXPECT_EQ(graph().PersonCountry(p), place);
      ++total;
    });
  }
  EXPECT_EQ(total, graph().NumPersons());
}

TEST_F(GraphFixture, TagClassHierarchyIsConsistent) {
  size_t roots = 0;
  for (uint32_t tc = 0; tc < graph().NumTagClasses(); ++tc) {
    if (graph().TagClassParent(tc) == kNoIdx) ++roots;
  }
  EXPECT_EQ(roots, 1u);
  size_t tags_total = 0;
  for (uint32_t tc = 0; tc < graph().NumTagClasses(); ++tc) {
    graph().TagClassTags().ForEach(tc, [&](uint32_t t) {
      EXPECT_EQ(graph().TagClassOfTag(t), tc);
      ++tags_total;
    });
  }
  EXPECT_EQ(tags_total, graph().NumTags());
}

// ---------------------------------------------------------------------------
// Update application: bulk graph + update stream ≡ graph of the full network.
// ---------------------------------------------------------------------------

TEST(GraphUpdateTest, IncrementalUpdatesConvergeToFullGraph) {
  datagen::DatagenConfig cfg = SmallConfig();
  datagen::GeneratedData split = datagen::Generate(cfg);

  datagen::DatagenConfig all_bulk = cfg;
  all_bulk.update_fraction = 1e-9;  // same generation, no split
  datagen::GeneratedData full = datagen::Generate(all_bulk);

  Graph incremental(std::move(split.network));
  for (const datagen::UpdateEvent& e : split.updates) {
    ASSERT_TRUE(interactive::ApplyUpdate(incremental, e).ok());
  }
  Graph reference(std::move(full.network));

  ASSERT_EQ(incremental.NumPersons(), reference.NumPersons());
  ASSERT_EQ(incremental.NumForums(), reference.NumForums());
  ASSERT_EQ(incremental.NumPosts(), reference.NumPosts());
  ASSERT_EQ(incremental.NumComments(), reference.NumComments());
  EXPECT_EQ(incremental.Knows().num_edges(), reference.Knows().num_edges());
  EXPECT_EQ(incremental.PersonLikes().num_edges(),
            reference.PersonLikes().num_edges());
  EXPECT_EQ(incremental.ForumMembers().num_edges(),
            reference.ForumMembers().num_edges());

  // Per-entity spot checks across the boundary: degrees must agree for the
  // same external ids (indices may differ).
  for (uint32_t i = 0; i < reference.NumPersons(); ++i) {
    core::Id id = reference.PersonAt(i).id;
    uint32_t j = incremental.PersonIdx(id);
    ASSERT_NE(j, kNoIdx);
    EXPECT_EQ(incremental.Knows().Degree(j), reference.Knows().Degree(i))
        << "person " << id;
    EXPECT_EQ(incremental.PersonPosts().Degree(j),
              reference.PersonPosts().Degree(i));
    EXPECT_EQ(incremental.PersonComments().Degree(j),
              reference.PersonComments().Degree(i));
    EXPECT_EQ(incremental.PersonLikes().Degree(j),
              reference.PersonLikes().Degree(i));
    EXPECT_EQ(incremental.PersonForums().Degree(j),
              reference.PersonForums().Degree(i));
  }
  for (uint32_t i = 0; i < reference.NumPosts(); ++i) {
    core::Id id = reference.PostAt(i).id;
    uint32_t j = incremental.PostIdx(id);
    ASSERT_NE(j, kNoIdx);
    EXPECT_EQ(incremental.PostReplies().Degree(j),
              reference.PostReplies().Degree(i));
    EXPECT_EQ(incremental.PostLikers().Degree(j),
              reference.PostLikers().Degree(i));
  }
}

}  // namespace
}  // namespace snb::storage

// Second batch of hand-computed BI answers on the fixture graph
// (BI 2, 5, 7, 9, 10, 11, 15, 19), plus sort-order invariants for the
// queries not covered by the first batch.

#include <gtest/gtest.h>

#include "bi/bi.h"
#include "datagen/datagen.h"
#include "fixture_graph.h"
#include "params/parameter_curation.h"
#include "storage/graph.h"

namespace snb::bi {
namespace {

using namespace snb::testfixture;  // NOLINT: test-local fixture ids

class BiSemantics2Test : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    graph_ = new storage::Graph(MakeFixtureNetwork());
  }
  static void TearDownTestSuite() { delete graph_; }
  static const storage::Graph& graph() { return *graph_; }

 private:
  static storage::Graph* graph_;
};

storage::Graph* BiSemantics2Test::graph_ = nullptr;

TEST_F(BiSemantics2Test, Bi2GroupsByCountryMonthGenderAgeTag) {
  Bi2Params params;
  params.start_date = core::DateFromCivil(2010, 1, 1);
  params.end_date = core::DateFromCivil(2010, 12, 31);
  params.country1 = "Germany";
  params.country2 = "France";
  params.simulation_end = core::DateFromCivil(2011, 1, 1);
  params.threshold = 0;
  std::vector<Bi2Row> rows = RunBi2(graph(), params);
  ASSERT_EQ(rows.size(), 4u);
  // All counts are 1; ties resolve by tag, gender, ageGroup, month, country.
  // Age groups at 2011-01-01: alice 25y → 5, bob 20y → 4, carol 22y → 4.
  EXPECT_EQ(rows[0], (Bi2Row{"Germany", 4, "male", 4, "Bach", 1}));    // c0
  EXPECT_EQ(rows[1], (Bi2Row{"Germany", 5, "male", 4, "Bach", 1}));    // post1
  EXPECT_EQ(rows[2], (Bi2Row{"France", 4, "female", 4, "Mozart", 1}));  // c1
  EXPECT_EQ(rows[3], (Bi2Row{"Germany", 4, "female", 5, "Mozart", 1}));  // post0
}

TEST_F(BiSemantics2Test, Bi2ThresholdFiltersSmallGroups) {
  Bi2Params params;
  params.start_date = core::DateFromCivil(2010, 1, 1);
  params.end_date = core::DateFromCivil(2010, 12, 31);
  params.country1 = "Germany";
  params.country2 = "France";
  params.simulation_end = core::DateFromCivil(2011, 1, 1);
  params.threshold = 1;  // all groups have exactly 1 message
  EXPECT_TRUE(RunBi2(graph(), params).empty());
}

TEST_F(BiSemantics2Test, Bi5CountsPostsInTopForums) {
  std::vector<Bi5Row> rows = RunBi5(graph(), {"Germany"});
  // Only the wall exists; members bob, dave, carol. Posts in it:
  // post0 (alice, moderator — not a member, excluded), post1 (bob).
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0].person_id, kBob);
  EXPECT_EQ(rows[0].post_count, 1);
  EXPECT_EQ(rows[1].person_id, kCarol);
  EXPECT_EQ(rows[1].post_count, 0);
  EXPECT_EQ(rows[2].person_id, kDave);
  EXPECT_EQ(rows[2].post_count, 0);
}

TEST_F(BiSemantics2Test, Bi7SumsLikerPopularity) {
  std::vector<Bi7Row> rows = RunBi7(graph(), {"Mozart"});
  // Mozart messages: post0 (alice; likers bob, carol), c1 (carol; none).
  // popularity(bob) = likes on post1 + c0 = 2; popularity(carol) = 0.
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].person_id, kAlice);
  EXPECT_EQ(rows[0].authority_score, 2);
  EXPECT_EQ(rows[1].person_id, kCarol);
  EXPECT_EQ(rows[1].authority_score, 0);
}

TEST_F(BiSemantics2Test, Bi9CountsClassTaggedPostsAboveThreshold) {
  std::vector<Bi9Row> rows = RunBi9(graph(), {"Musician", "Person", 2});
  // The wall has 3 members (> 2). Both posts carry Musician-class tags;
  // no post carries a direct Person-class tag.
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].forum_id, kWall);
  EXPECT_EQ(rows[0].count1, 2);
  EXPECT_EQ(rows[0].count2, 0);
  // Raising the member threshold above 3 removes the forum.
  EXPECT_TRUE(RunBi9(graph(), {"Musician", "Person", 3}).empty());
}

TEST_F(BiSemantics2Test, Bi10ScattersScoreToFriends) {
  std::vector<Bi10Row> rows =
      RunBi10(graph(), {"Mozart", core::DateFromCivil(2010, 1, 1)});
  // score: alice = 100 (interest) + 1 (post0) = 101; carol = 100 + 1 (c1).
  // friendsScore: bob = 101 (alice) + 101 (carol) = 202; dave = 101.
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_EQ(rows[0], (Bi10Row{kBob, 0, 202}));
  EXPECT_EQ(rows[1], (Bi10Row{kAlice, 101, 0}));
  EXPECT_EQ(rows[2], (Bi10Row{kCarol, 101, 0}));
  EXPECT_EQ(rows[3], (Bi10Row{kDave, 0, 101}));
}

TEST_F(BiSemantics2Test, Bi11FindsUnrelatedRepliesAndBlacklists) {
  std::vector<Bi11Row> rows = RunBi11(graph(), {"Germany", {"zzz"}});
  // c0 (bob, DE) replies post0; tags {Bach} vs {Mozart} — disjoint; one
  // like (dave).
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0], (Bi11Row{kBob, "Bach", 1, 1}));
  // The comment body is 80 'c's; blacklist "ccc" kills it.
  EXPECT_TRUE(RunBi11(graph(), {"Germany", {"ccc"}}).empty());
}

TEST_F(BiSemantics2Test, Bi15FindsSocialNormals) {
  std::vector<Bi15Row> rows = RunBi15(graph(), {"Germany"});
  // Same-country friend counts: alice 2, bob 2, dave 2 → avg 2 → all match.
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0], (Bi15Row{kAlice, 2}));
  EXPECT_EQ(rows[1], (Bi15Row{kBob, 2}));
  EXPECT_EQ(rows[2], (Bi15Row{kDave, 2}));
  // France: carol has 0 in-country friends; avg 0 → she is the normal.
  std::vector<Bi15Row> fr = RunBi15(graph(), {"France"});
  ASSERT_EQ(fr.size(), 1u);
  EXPECT_EQ(fr[0], (Bi15Row{kCarol, 0}));
}

TEST_F(BiSemantics2Test, Bi19FindsNoStrangerInteractionsOnFixture) {
  // Strangers must sit in forums of both classes; the wall only carries a
  // Musician-class tag, so (Musician, Person) yields nobody…
  EXPECT_TRUE(
      RunBi19(graph(),
              {core::DateFromCivil(1980, 1, 1), "Musician", "Person"})
          .empty());
  // …and with (Musician, Musician) the only transitive-reply candidates
  // are known to their targets, so the result is still empty.
  EXPECT_TRUE(
      RunBi19(graph(),
              {core::DateFromCivil(1980, 1, 1), "Musician", "Musician"})
          .empty());
}

// ---------------------------------------------------------------------------
// Sort-order invariants on a generated graph for the queries whose order is
// not already pinned by the fixture tests.
// ---------------------------------------------------------------------------

class BiOrderingTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    datagen::DatagenConfig cfg;
    cfg.num_persons = 350;
    cfg.activity_scale = 0.5;
    datagen::GeneratedData data = datagen::Generate(cfg);
    graph_ = new storage::Graph(std::move(data.network));
    params::CurationConfig pc;
    pc.per_query = 2;
    params_ = new params::WorkloadParameters(
        params::CurateParameters(*graph_, pc));
  }
  static void TearDownTestSuite() {
    delete params_;
    delete graph_;
  }
  static const storage::Graph& graph() { return *graph_; }
  static const params::WorkloadParameters& params() { return *params_; }

 private:
  static storage::Graph* graph_;
  static params::WorkloadParameters* params_;
};

storage::Graph* BiOrderingTest::graph_ = nullptr;
params::WorkloadParameters* BiOrderingTest::params_ = nullptr;

template <typename Row, typename Key>
void ExpectSorted(const std::vector<Row>& rows, Key key,
                  const char* what) {
  for (size_t i = 1; i < rows.size(); ++i) {
    EXPECT_FALSE(key(rows[i]) < key(rows[i - 1]))
        << what << " misordered at row " << i;
  }
}

TEST_F(BiOrderingTest, SortKeysRespected) {
  {
    auto rows = RunBi5(graph(), params().bi5[0]);
    ExpectSorted(rows, [](const Bi5Row& r) {
      return std::make_tuple(-r.post_count, r.person_id);
    }, "BI 5");
  }
  {
    auto rows = RunBi6(graph(), params().bi6[0]);
    ExpectSorted(rows, [](const Bi6Row& r) {
      return std::make_tuple(-r.score, r.person_id);
    }, "BI 6");
  }
  {
    auto rows = RunBi7(graph(), params().bi7[0]);
    ExpectSorted(rows, [](const Bi7Row& r) {
      return std::make_tuple(-r.authority_score, r.person_id);
    }, "BI 7");
  }
  {
    auto rows = RunBi8(graph(), params().bi8[0]);
    ExpectSorted(rows, [](const Bi8Row& r) {
      return std::make_tuple(-r.count, r.related_tag);
    }, "BI 8");
  }
  {
    auto rows = RunBi14(graph(), params().bi14[0]);
    ExpectSorted(rows, [](const Bi14Row& r) {
      return std::make_tuple(-r.message_count, r.person_id);
    }, "BI 14");
  }
  {
    auto rows = RunBi16(graph(), params().bi16[0]);
    ExpectSorted(rows, [](const Bi16Row& r) {
      return std::make_tuple(-r.message_count, r.tag, r.person_id);
    }, "BI 16");
  }
  {
    auto rows = RunBi22(graph(), params().bi22[0]);
    ExpectSorted(rows, [](const Bi22Row& r) {
      return std::make_tuple(-r.score, r.person1_id, r.person2_id);
    }, "BI 22");
  }
  {
    auto rows = RunBi23(graph(), params().bi23[0]);
    ExpectSorted(rows, [](const Bi23Row& r) {
      return std::make_tuple(-r.message_count, r.destination, r.month);
    }, "BI 23");
  }
  {
    auto rows = RunBi24(graph(), params().bi24[0]);
    ExpectSorted(rows, [](const Bi24Row& r) {
      return std::make_tuple(r.year, r.month, r.continent);
    }, "BI 24");
  }
  {
    auto rows = RunBi25(graph(), params().bi25[0]);
    ExpectSorted(rows, [](const Bi25Row& r) {
      return std::make_tuple(-r.weight, r.person_ids);
    }, "BI 25");
  }
}

}  // namespace
}  // namespace snb::bi

// Corruption-seeding tests for the graph-invariant validator: each test
// damages a freshly generated store through storage::TestAccess in exactly
// one way and asserts that the *right* invariant reports it — the validator
// is only trustworthy if a dangling edge is caught as edge-endpoints, not as
// a lucky crash somewhere else.

#include <gtest/gtest.h>

#include <memory>

#include "core/scale_factors.h"
#include "datagen/datagen.h"
#include "storage/graph.h"
#include "storage/test_access.h"
#include "validate/validator.h"

namespace snb::validate {
namespace {

using storage::Graph;
using storage::TestAccess;

std::unique_ptr<Graph> MakeGraph(uint64_t persons = 50) {
  datagen::DatagenConfig cfg;
  cfg.num_persons = persons;
  return std::make_unique<Graph>(
      std::move(datagen::Generate(cfg).network));
}

/// Options for corruption tests: skip the store-consistency cross-check,
/// which may index out of bounds on deliberately dangling references. The
/// targeted invariants must catch the damage on their own.
ValidatorOptions Lenient() {
  ValidatorOptions o;
  o.run_store_consistency = false;
  return o;
}

TEST(ValidateTest, CleanGraphPassesAllInvariants) {
  auto graph = MakeGraph();
  ValidatorOptions options;  // store-consistency included
  options.expect_sf = core::ScaleFactorInfo{"test", 0.0, 50, 0, 0};
  ValidationReport report = ValidateGraph(*graph, options);
  EXPECT_TRUE(report.ok()) << report.ToString();
  EXPECT_EQ(report.invariants_checked, 17u);
}

TEST(ValidateTest, DanglingEdgeCaughtByEdgeEndpoints) {
  auto graph = MakeGraph();
  TestAccess::Knows(*graph).Append(0, 999999);
  ValidationReport report = ValidateGraph(*graph, Lenient());
  EXPECT_TRUE(report.Has("edge-endpoints")) << report.ToString();
}

TEST(ValidateTest, UnsortedBaseSpanCaughtByAdjacencySorted) {
  auto graph = MakeGraph();
  // Find a node whose base span has two distinct neighbours and swap them
  // inside the packed target column (zone metadata is untouched — a swap
  // is a permutation, so only the sort order is damaged).
  storage::AdjacencyList& knows = TestAccess::Knows(*graph);
  auto& targets = TestAccess::Csr(knows).mutable_targets();
  bool corrupted = false;
  for (uint32_t node = 0; node < knows.num_nodes() && !corrupted; ++node) {
    if (knows.BaseDegree(node) < 2) continue;
    const uint64_t k = TestAccess::Csr(knows).EdgeBegin(node);
    const uint64_t a = targets.At(k), b = targets.At(k + 1);
    // Stay within one block so the packed rewrite is exact.
    if (a != b && k / 1024 == (k + 1) / 1024) {
      targets.SetValueForTest(k, b);
      targets.SetValueForTest(k + 1, a);
      corrupted = true;
    }
  }
  ASSERT_TRUE(corrupted) << "datagen graph too sparse to seed corruption";
  ValidationReport report = ValidateGraph(*graph, Lenient());
  EXPECT_TRUE(report.Has("adjacency-sorted")) << report.ToString();
}

TEST(ValidateTest, DuplicateNeighbourCaughtByAdjacencyDedup) {
  auto graph = MakeGraph();
  storage::AdjacencyList& knows = TestAccess::Knows(*graph);
  bool corrupted = false;
  for (uint32_t node = 0; node < knows.num_nodes() && !corrupted; ++node) {
    auto base = knows.BaseCollect(node);
    if (!base.empty()) {
      knows.Append(node, base[0]);  // the overflow now repeats a base edge
      corrupted = true;
    }
  }
  ASSERT_TRUE(corrupted);
  ValidationReport report = ValidateGraph(*graph, Lenient());
  EXPECT_TRUE(report.Has("adjacency-dedup")) << report.ToString();
}

TEST(ValidateTest, SwappedIndexBaseCaughtByMessageIndexOrder) {
  auto graph = MakeGraph();
  auto& refs = TestAccess::BaseRefs(TestAccess::MessageIndex(*graph));
  ASSERT_GE(refs.size(), 2u);
  std::swap(refs.front(), refs.back());
  ValidationReport report = ValidateGraph(*graph, Lenient());
  EXPECT_TRUE(report.Has("message-index-order")) << report.ToString();
}

TEST(ValidateTest, StaleZoneMapCaughtByZoneMapCoverage) {
  auto graph = MakeGraph();
  // Route one message through the update path so the index grows a tail…
  core::Post post = graph->PostAt(0);
  post.id = 1u << 30;  // unique in the micro id space
  post.tags.clear();
  graph->AddPost(post);
  storage::MessageDateIndex& idx = TestAccess::MessageIndex(*graph);
  ASSERT_EQ(idx.tail_size(), 1u);
  // …then shrink its zone map so the entry falls outside [min, max].
  auto& zones = TestAccess::TailZones(idx);
  ASSERT_EQ(zones.size(), 1u);
  zones[0].min = zones[0].max = post.creation_date + 1;
  ValidationReport report = ValidateGraph(*graph, Lenient());
  EXPECT_TRUE(report.Has("zone-map-coverage")) << report.ToString();
}

TEST(ValidateTest, OutOfRangeCodeCaughtByDictionaryCodeInRange) {
  auto graph = MakeGraph();
  auto& codes = TestAccess::PersonGenderCode(*graph);
  ASSERT_FALSE(codes.empty());
  codes[0] = static_cast<uint32_t>(graph->Dict().size()) + 7;
  ValidationReport report = ValidateGraph(*graph, Lenient());
  EXPECT_TRUE(report.Has("dictionary-code-in-range")) << report.ToString();
}

TEST(ValidateTest, StaleBlockZoneCaughtByBlockZoneCoversContents) {
  auto graph = MakeGraph();
  // Shrink the zone of the first knows target block so its contents fall
  // outside [min, max] — the payload itself is untouched.
  storage::AdjacencyList& knows = TestAccess::Knows(*graph);
  auto& targets = TestAccess::Csr(knows).mutable_targets();
  ASSERT_GT(targets.num_blocks(), 0u);
  auto& block = targets.mutable_block(0);
  block.CorruptZoneForTest(block.zone_min() + 1, block.zone_max());
  ValidationReport report = ValidateGraph(*graph, Lenient());
  EXPECT_TRUE(report.Has("block-zone-covers-contents")) << report.ToString();
}

TEST(ValidateTest, TamperedIndexDateZoneCaughtByBlockZoneCoversContents) {
  auto graph = MakeGraph();
  auto& dates = TestAccess::BaseDateColumn(TestAccess::MessageIndex(*graph));
  ASSERT_GT(dates.num_blocks(), 0u);
  auto& block = dates.mutable_block(0);
  block.CorruptZoneForTest(block.zone_min(), block.zone_max() + 1);
  ValidationReport report = ValidateGraph(*graph, Lenient());
  EXPECT_TRUE(report.Has("block-zone-covers-contents")) << report.ToString();
}

TEST(ValidateTest, StaleCommentForumCaughtByHotColumnEndpoints) {
  auto graph = MakeGraph();
  auto& forums = TestAccess::CommentForum(*graph);
  bool corrupted = false;
  for (uint32_t c = 0; c < graph->NumComments() && !corrupted; ++c) {
    if (graph->CommentForum(c) != 0) {
      forums.SetForTest(c, 0);  // 0 always fits the packed base width
      corrupted = true;
    }
  }
  ASSERT_TRUE(corrupted) << "every comment thread lives in forum 0?";
  ValidationReport report = ValidateGraph(*graph, Lenient());
  EXPECT_TRUE(report.Has("hot-column-endpoints")) << report.ToString();
}

TEST(ValidateTest, BadLanguageCodeCaughtByHotColumnEndpoints) {
  auto graph = MakeGraph();
  auto& codes = TestAccess::PostLanguageCode(*graph);
  ASSERT_FALSE(codes.empty());
  codes[0] = static_cast<uint32_t>(graph->Dict().size()) + 3;
  ValidationReport report = ValidateGraph(*graph, Lenient());
  EXPECT_TRUE(report.Has("hot-column-endpoints")) << report.ToString();
}

TEST(ValidateTest, StaleRootLanguageCaughtByHotColumnEndpoints) {
  auto graph = MakeGraph();
  auto& codes = TestAccess::CommentRootLanguageCode(*graph);
  ASSERT_FALSE(codes.empty());
  codes[0] ^= 1u;  // any value differing from the root post's code trips it
  ValidationReport report = ValidateGraph(*graph, Lenient());
  EXPECT_TRUE(report.Has("hot-column-endpoints")) << report.ToString();
}

TEST(ValidateTest, LoweredLikeZoneCaughtByLikeZoneBounds) {
  auto graph = MakeGraph();
  auto& zones = TestAccess::BaseLikeMax(TestAccess::MessageIndex(*graph));
  bool corrupted = false;
  for (uint32_t& z : zones) {
    if (z > 0) {
      --z;  // the block's most-liked member now exceeds the zone max
      corrupted = true;
      break;
    }
  }
  ASSERT_TRUE(corrupted) << "datagen graph has no likes at all?";
  ValidationReport report = ValidateGraph(*graph, Lenient());
  EXPECT_TRUE(report.Has("like-zone-bounds")) << report.ToString();
}

TEST(ValidateTest, ShrunkPersonZoneCaughtByLikeZoneBounds) {
  auto graph = MakeGraph();
  auto& mins = TestAccess::PersonMsgDateMin(*graph);
  auto& maxs = TestAccess::PersonMsgDateMax(*graph);
  bool corrupted = false;
  for (size_t p = 0; p < mins.size() && !corrupted; ++p) {
    if (mins[p] <= maxs[p]) {  // person actually has messages
      // Reset to the "no messages" sentinel: the zone now overlaps nothing,
      // so person pruning would wrongly skip every message this person made.
      mins[p] = storage::kMaxMessageDate;
      maxs[p] = storage::kMinMessageDate;
      corrupted = true;
    }
  }
  ASSERT_TRUE(corrupted) << "no person with messages in the datagen graph?";
  ValidationReport report = ValidateGraph(*graph, Lenient());
  EXPECT_TRUE(report.Has("like-zone-bounds")) << report.ToString();
}

TEST(ValidateTest, HotColumnFlipCaughtByHotColumnGender) {
  auto graph = MakeGraph();
  auto& is_female = TestAccess::PersonIsFemale(*graph);
  ASSERT_FALSE(is_female.empty());
  is_female[0] ^= 1;
  ValidationReport report = ValidateGraph(*graph, Lenient());
  EXPECT_TRUE(report.Has("hot-column-gender")) << report.ToString();
}

TEST(ValidateTest, DuplicateExternalIdCaughtByUniqueId) {
  auto graph = MakeGraph();
  auto& persons = TestAccess::Persons(*graph);
  ASSERT_GE(persons.size(), 2u);
  persons[1].id = persons[0].id;
  ValidationReport report = ValidateGraph(*graph, Lenient());
  EXPECT_TRUE(report.Has("unique-id")) << report.ToString();
}

TEST(ValidateTest, WrongPersonCountCaughtByCardinality) {
  auto graph = MakeGraph(50);
  ValidatorOptions options = Lenient();
  // Claim the store is SF1 (Table 2.12 fixes ~11k persons); it is not.
  options.expect_sf = core::FindScaleFactor("1");
  ASSERT_TRUE(options.expect_sf.has_value());
  ValidationReport report = ValidateGraph(*graph, options);
  EXPECT_TRUE(report.Has("cardinality")) << report.ToString();
}

TEST(ValidateTest, DanglingCreatorCaughtByMessageAuthor) {
  auto graph = MakeGraph();
  auto& creators = TestAccess::PostCreator(*graph);
  ASSERT_FALSE(creators.empty());
  creators[0] = 999999;
  ValidationReport report = ValidateGraph(*graph, Lenient());
  EXPECT_TRUE(report.Has("message-author")) << report.ToString();
}

TEST(ValidateTest, OrphanedTombstoneCaughtByTombstoneDangling) {
  auto graph = MakeGraph();
  // Mark the creator of post 0 dead *without* running the cascade — the
  // torn state a crash mid-cascade would leave if recovery never repaired
  // it: their posts are still alive, dangling off a tombstoned vertex.
  TestAccess::PersonDead(*graph).Set(graph->PostCreator(0));
  ValidationReport report = ValidateGraph(*graph, Lenient());
  EXPECT_TRUE(report.Has("tombstone-dangling")) << report.ToString();
}

TEST(ValidateTest, StaleLiveCountCaughtByTombstoneIndexAgreement) {
  auto graph = MakeGraph();
  // A dead-like delta with no matching dead edge: LiveLikeCount would
  // undercount the message by one.
  TestAccess::DeadLikesPerMsg(*graph)[Graph::MessageOfPost(0)] = 1;
  ValidationReport report = ValidateGraph(*graph, Lenient());
  EXPECT_TRUE(report.Has("tombstone-index-agreement")) << report.ToString();
}

TEST(ValidateTest, UncollapsedZoneCaughtByTombstoneIndexAgreement) {
  auto graph = MakeGraph();
  const uint32_t p = graph->PostCreator(0);
  const core::DateTime saved_min = TestAccess::PersonMsgDateMin(*graph)[p];
  const core::DateTime saved_max = TestAccess::PersonMsgDateMax(*graph)[p];
  // Complete cascade, then resurrect the person's message-date zone: every
  // downstream entity is correctly dead (no dangling), but person-granular
  // pruning would still visit the corpse.
  ASSERT_TRUE(graph->DeletePerson(graph->PersonAt(p).id).ok());
  TestAccess::PersonMsgDateMin(*graph)[p] = saved_min;
  TestAccess::PersonMsgDateMax(*graph)[p] = saved_max;
  ValidationReport report = ValidateGraph(*graph, Lenient());
  EXPECT_TRUE(report.Has("tombstone-index-agreement")) << report.ToString();
  EXPECT_FALSE(report.Has("tombstone-dangling")) << report.ToString();
}

TEST(ValidateTest, LoweredZoneCaughtByTombstoneZoneBoundsToo) {
  auto graph = MakeGraph();
  // Understate a base block's like-count zone max: both the raw-degree
  // check and the live-count variant must flag the block, since live rows
  // could be skipped by bound pushdown either way.
  auto& zones = TestAccess::BaseLikeMax(TestAccess::MessageIndex(*graph));
  ASSERT_FALSE(zones.empty());
  bool lowered = false;
  for (auto& z : zones) {
    if (z > 0) {
      z = 0;
      lowered = true;
    }
  }
  ASSERT_TRUE(lowered) << "fixture graph has no liked messages";
  ValidationReport report = ValidateGraph(*graph, Lenient());
  EXPECT_TRUE(report.Has("tombstone-zone-bounds")) << report.ToString();
}

TEST(ValidateTest, ViolationCapCountsSuppressed) {
  auto graph = MakeGraph();
  auto& is_female = TestAccess::PersonIsFemale(*graph);
  for (auto& v : is_female) v ^= 1;  // every person mismatches
  ValidatorOptions options = Lenient();
  options.max_violations_per_invariant = 4;
  ValidationReport report = ValidateGraph(*graph, options);
  EXPECT_EQ(report.CountFor("hot-column-gender"), 4u);
  EXPECT_EQ(report.suppressed, graph->NumPersons() - 4);
}

TEST(ValidateTest, ReportNamesInvariantPerViolation) {
  auto graph = MakeGraph();
  TestAccess::Knows(*graph).Append(0, 999999);
  ValidationReport report = ValidateGraph(*graph, Lenient());
  ASSERT_FALSE(report.ok());
  const std::string text = report.ToString();
  EXPECT_NE(text.find("[edge-endpoints]"), std::string::npos) << text;
}

}  // namespace
}  // namespace snb::validate

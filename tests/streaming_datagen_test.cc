// Streaming-datagen oracle: GenerateStreaming must emit byte-identical
// CsvBasic files and update streams to the in-memory pipeline
// (WriteCsvBasic(Generate(cfg)) + WriteUpdateStreams), for every sorter
// budget — tiny budgets force external-merge spills without changing a byte.
// Also covers the ExternalSorter contract and crash-safety of the spill
// protocol (a crash mid-spill leaves only files RemoveOrphanSpills reclaims).

#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <random>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "datagen/datagen.h"
#include "datagen/external_sort.h"
#include "datagen/serializer.h"
#include "datagen/streaming.h"
#include "datagen/update_stream.h"
#include "gtest/gtest.h"
#include "util/failpoint.h"

namespace snb::datagen {
namespace {

namespace fs = std::filesystem;

fs::path MakeTempDir(const std::string& tag) {
  fs::path dir = fs::temp_directory_path() /
                 ("snb_streaming_" + tag + "_" + std::to_string(getpid()));
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

std::string ReadFile(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

std::set<std::string> RelativeFiles(const fs::path& root) {
  std::set<std::string> files;
  for (const auto& entry : fs::recursive_directory_iterator(root)) {
    if (entry.is_regular_file()) {
      files.insert(fs::relative(entry.path(), root).string());
    }
  }
  return files;
}

/// Asserts the two directories hold the same file set with identical bytes.
void ExpectDirsIdentical(const fs::path& expected, const fs::path& actual) {
  std::set<std::string> exp_files = RelativeFiles(expected);
  std::set<std::string> act_files = RelativeFiles(actual);
  EXPECT_EQ(exp_files, act_files);
  for (const std::string& rel : exp_files) {
    if (!act_files.contains(rel)) continue;
    EXPECT_EQ(ReadFile(expected / rel), ReadFile(actual / rel))
        << "file differs: " << rel;
  }
}

DatagenConfig SmallConfig() {
  DatagenConfig config;
  config.num_persons = 400;
  return config;
}

size_t CountSpillFiles(const fs::path& dir) {
  size_t count = 0;
  if (!fs::exists(dir)) return 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    std::string name = entry.path().filename().string();
    if (name.ends_with(".spill") || name.ends_with(".spill.tmp")) ++count;
  }
  return count;
}

// ---------------------------------------------------------------------------
// ExternalSorter
// ---------------------------------------------------------------------------

TEST(ExternalSorterTest, MatchesStableSortAndSpills) {
  fs::path spill = MakeTempDir("sorter");
  struct Rec {
    uint64_t k1, k2;
    std::string payload;
  };
  std::vector<Rec> input;
  std::mt19937_64 rng(7);
  for (int i = 0; i < 5000; ++i) {
    // Narrow key range forces ties, exercising the stable (k1, k2, seq)
    // tiebreak across spilled runs.
    input.push_back({rng() % 50, rng() % 4,
                     "payload-" + std::to_string(i) +
                         std::string(i % 17, 'x')});
  }

  ExternalSorter sorter({spill.string(), "unit", /*budget=*/1});
  for (const Rec& r : input) {
    ASSERT_TRUE(sorter.Add(r.k1, r.k2, r.payload).ok());
  }
  EXPECT_GT(sorter.spill_runs(), 1u);
  EXPECT_EQ(sorter.size(), input.size());

  std::vector<size_t> reference(input.size());
  for (size_t i = 0; i < input.size(); ++i) reference[i] = i;
  std::stable_sort(reference.begin(), reference.end(),
                   [&input](size_t a, size_t b) {
                     if (input[a].k1 != input[b].k1) {
                       return input[a].k1 < input[b].k1;
                     }
                     return input[a].k2 < input[b].k2;
                   });

  size_t pos = 0;
  ASSERT_TRUE(sorter
                  .Merge([&](uint64_t k1, uint64_t k2,
                             std::string_view payload) {
                    ASSERT_LT(pos, reference.size());
                    const Rec& want = input[reference[pos]];
                    EXPECT_EQ(k1, want.k1);
                    EXPECT_EQ(k2, want.k2);
                    EXPECT_EQ(payload, want.payload);
                    ++pos;
                  })
                  .ok());
  EXPECT_EQ(pos, input.size());
  EXPECT_EQ(CountSpillFiles(spill), 0u) << "merge must remove its runs";
  fs::remove_all(spill);
}

TEST(ExternalSorterTest, RemoveOrphanSpillsReclaimsOnlySpillFiles) {
  fs::path dir = MakeTempDir("orphans");
  std::ofstream(dir / "knows-pass1.0.spill") << "stale";
  std::ofstream(dir / "census-post.3.spill.tmp") << "torn";
  std::ofstream(dir / "keep.txt") << "keep";
  size_t removed = 0;
  ASSERT_TRUE(
      ExternalSorter::RemoveOrphanSpills(dir.string(), &removed).ok());
  EXPECT_EQ(removed, 2u);
  EXPECT_FALSE(fs::exists(dir / "knows-pass1.0.spill"));
  EXPECT_FALSE(fs::exists(dir / "census-post.3.spill.tmp"));
  EXPECT_TRUE(fs::exists(dir / "keep.txt"));
  fs::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Byte-identity oracle
// ---------------------------------------------------------------------------

TEST(StreamingDatagenTest, ByteIdenticalToInMemoryPipeline) {
  DatagenConfig config = SmallConfig();

  fs::path ref_dir = MakeTempDir("ref");
  GeneratedData data = Generate(config);
  ASSERT_TRUE(WriteCsvBasic(data.network, ref_dir.string()).ok());
  ASSERT_TRUE(WriteUpdateStreams(data.updates, ref_dir.string()).ok());

  // Tiny budget: every sorter gets the 64 KiB floor, forcing spill runs.
  {
    fs::path out_dir = MakeTempDir("out_small");
    fs::path spill_dir = MakeTempDir("spill_small");
    StreamingOptions options;
    options.datagen = config;
    options.out_dir = out_dir.string();
    options.spill_dir = spill_dir.string();
    options.memory_budget_bytes = 1;
    StreamingStats stats;
    ASSERT_TRUE(GenerateStreaming(options, &stats).ok());

    EXPECT_GT(stats.spill_runs, 0u) << "budget floor must force spilling";
    EXPECT_EQ(stats.split_time, data.split_time);
    EXPECT_EQ(stats.persons, data.total_persons);
    EXPECT_EQ(stats.knows, data.total_knows);
    EXPECT_EQ(stats.forums, data.total_forums);
    EXPECT_EQ(stats.posts, data.total_posts);
    EXPECT_EQ(stats.comments, data.total_comments);
    EXPECT_EQ(stats.likes, data.total_likes);
    EXPECT_EQ(stats.memberships, data.total_memberships);
    EXPECT_EQ(stats.update_events, data.updates.size());

    ExpectDirsIdentical(ref_dir, out_dir);
    EXPECT_EQ(CountSpillFiles(spill_dir), 0u)
        << "successful run must leave no spill files";
    fs::remove_all(out_dir);
    fs::remove_all(spill_dir);
  }

  // Huge budget: everything stays in memory — still the same bytes.
  {
    fs::path out_dir = MakeTempDir("out_big");
    fs::path spill_dir = MakeTempDir("spill_big");
    StreamingOptions options;
    options.datagen = config;
    options.out_dir = out_dir.string();
    options.spill_dir = spill_dir.string();
    options.memory_budget_bytes = size_t{4} << 30;
    StreamingStats stats;
    ASSERT_TRUE(GenerateStreaming(options, &stats).ok());
    EXPECT_EQ(stats.spill_runs, 0u);
    ExpectDirsIdentical(ref_dir, out_dir);
    fs::remove_all(out_dir);
    fs::remove_all(spill_dir);
  }

  fs::remove_all(ref_dir);
}

// ---------------------------------------------------------------------------
// Crash safety of the spill protocol
// ---------------------------------------------------------------------------

class StreamingCrashTest : public ::testing::Test {
 protected:
  void TearDown() override { util::failpoint::DisarmAll(); }
};

TEST_F(StreamingCrashTest, CrashMidSpillNeverAccumulatesOrphans) {
  DatagenConfig config = SmallConfig();
  fs::path out_dir = MakeTempDir("crash_out");
  fs::path spill_dir = MakeTempDir("crash_spill");

  StreamingOptions options;
  options.datagen = config;
  options.out_dir = out_dir.string();
  options.spill_dir = spill_dir.string();
  options.memory_budget_bytes = 1;  // spill early and often

  const char* kSites[] = {"datagen.spill.open", "datagen.spill.write",
                          "datagen.spill.finish"};
  // Crash-loop: kill the generator at every spill site twice over; each
  // restart must reclaim whatever the previous corpse left behind, so
  // orphans never accumulate across the loop.
  for (int round = 0; round < 2; ++round) {
    for (const char* site : kSites) {
      pid_t pid = fork();
      ASSERT_GE(pid, 0) << "fork failed";
      if (pid == 0) {
        util::failpoint::Spec spec;
        spec.mode = util::failpoint::Mode::kCrash;
        // Vary the firing hit so different rounds die at different depths.
        spec.nth = 1 + round * 3;
        util::failpoint::Arm(site, spec);
        StreamingStats child_stats;
        (void)GenerateStreaming(options, &child_stats);
        _Exit(0);  // reached only if the armed site never fired
      }
      int wstatus = 0;
      ASSERT_EQ(waitpid(pid, &wstatus, 0), pid);
      ASSERT_TRUE(WIFEXITED(wstatus));
      int code = WEXITSTATUS(wstatus);
      ASSERT_TRUE(code == util::failpoint::CrashExitCode() || code == 0)
          << "site " << site << " exited with " << code;
      // Anything the crash left behind must be reclaimable — only spill
      // protocol files, never live output handles.
      size_t leftovers = CountSpillFiles(spill_dir);
      size_t removed = 0;
      ASSERT_TRUE(
          ExternalSorter::RemoveOrphanSpills(spill_dir.string(), &removed)
              .ok());
      EXPECT_EQ(removed, leftovers);
      EXPECT_EQ(CountSpillFiles(spill_dir), 0u);
    }
  }

  // After the crash loop, a clean run succeeds and is still byte-identical.
  fs::remove_all(out_dir);
  fs::create_directories(out_dir);
  StreamingStats stats;
  ASSERT_TRUE(GenerateStreaming(options, &stats).ok());
  EXPECT_EQ(CountSpillFiles(spill_dir), 0u);

  fs::path ref_dir = MakeTempDir("crash_ref");
  GeneratedData data = Generate(config);
  ASSERT_TRUE(WriteCsvBasic(data.network, ref_dir.string()).ok());
  ASSERT_TRUE(WriteUpdateStreams(data.updates, ref_dir.string()).ok());
  ExpectDirsIdentical(ref_dir, out_dir);

  fs::remove_all(out_dir);
  fs::remove_all(spill_dir);
  fs::remove_all(ref_dir);
}

}  // namespace
}  // namespace snb::datagen

// Deterministic smoke driver for the fuzz harnesses.
//
// The tier-1 machines are GCC-only, so there is no libFuzzer runtime to
// link; this main() makes every harness a plain binary that doubles as a
// ctest target. It feeds LLVMFuzzerTestOneInput with
//
//   1. every file of the seed corpus (sorted by name — order is part of
//      the contract, runs are bit-reproducible), then
//   2. a fixed number of seeded-Rng mutations of those seeds: byte flips,
//      truncations, insertions, chunk duplications and cross-seed splices,
//      the classic structure-blind mutation set.
//
// Same binary, same corpus, same --seed ⇒ same byte sequences, so a smoke
// failure in CI replays locally by rerunning the command line. Under clang
// the real fuzzer build (-fsanitize=fuzzer) links libFuzzer's own main
// instead of this file.
//
// Usage: harness [--corpus=DIR] [--iterations=N] [--seed=S] [--max-len=M]

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "util/rng.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

namespace {

using Input = std::vector<uint8_t>;

std::vector<Input> LoadCorpus(const std::string& dir) {
  std::vector<std::filesystem::path> files;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (entry.is_regular_file()) files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  std::vector<Input> corpus;
  for (const auto& path : files) {
    std::ifstream in(path, std::ios::binary);
    corpus.emplace_back((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
  }
  return corpus;
}

/// One structure-blind mutation, chosen and parameterized by the Rng.
void MutateOnce(snb::util::Rng& rng, const std::vector<Input>& corpus,
                size_t max_len, Input* input) {
  switch (rng.UniformInt(0, 5)) {
    case 0:  // flip one byte
      if (!input->empty()) {
        (*input)[static_cast<size_t>(rng.UniformInt(
            0, static_cast<int64_t>(input->size()) - 1))] ^=
            static_cast<uint8_t>(rng.UniformInt(1, 255));
      }
      break;
    case 1:  // truncate
      if (!input->empty()) {
        input->resize(static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(input->size()) - 1)));
      }
      break;
    case 2:  // insert a random byte
      if (input->size() < max_len) {
        input->insert(
            input->begin() + static_cast<long>(rng.UniformInt(
                                 0, static_cast<int64_t>(input->size()))),
            static_cast<uint8_t>(rng.UniformInt(0, 255)));
      }
      break;
    case 3: {  // duplicate a chunk
      if (!input->empty() && input->size() < max_len) {
        size_t begin = static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(input->size()) - 1));
        size_t len = std::min<size_t>(
            static_cast<size_t>(rng.UniformInt(1, 16)),
            std::min(input->size() - begin, max_len - input->size()));
        Input chunk(input->begin() + static_cast<long>(begin),
                    input->begin() + static_cast<long>(begin + len));
        input->insert(input->begin() + static_cast<long>(begin),
                      chunk.begin(), chunk.end());
      }
      break;
    }
    case 4: {  // splice a prefix of another corpus entry onto a prefix
      if (!corpus.empty()) {
        const Input& other = corpus[static_cast<size_t>(rng.UniformInt(
            0, static_cast<int64_t>(corpus.size()) - 1))];
        size_t keep = input->empty()
                          ? 0
                          : static_cast<size_t>(rng.UniformInt(
                                0, static_cast<int64_t>(input->size())));
        size_t take = other.empty()
                          ? 0
                          : static_cast<size_t>(rng.UniformInt(
                                0, static_cast<int64_t>(other.size())));
        input->resize(keep);
        input->insert(input->end(), other.begin(),
                      other.begin() + static_cast<long>(take));
        if (input->size() > max_len) input->resize(max_len);
      }
      break;
    }
    default:  // overwrite with random bytes
      if (!input->empty()) {
        size_t begin = static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(input->size()) - 1));
        size_t len = std::min<size_t>(
            static_cast<size_t>(rng.UniformInt(1, 8)),
            input->size() - begin);
        for (size_t i = 0; i < len; ++i) {
          (*input)[begin + i] = static_cast<uint8_t>(rng.UniformInt(0, 255));
        }
      }
      break;
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string corpus_dir;
  size_t iterations = 2000;
  uint64_t seed = 20260806;
  size_t max_len = 1 << 16;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--corpus=", 9) == 0) {
      corpus_dir = arg + 9;
    } else if (std::strncmp(arg, "--iterations=", 13) == 0) {
      iterations = static_cast<size_t>(std::strtoull(arg + 13, nullptr, 10));
    } else if (std::strncmp(arg, "--seed=", 7) == 0) {
      seed = std::strtoull(arg + 7, nullptr, 10);
    } else if (std::strncmp(arg, "--max-len=", 10) == 0) {
      max_len = static_cast<size_t>(std::strtoull(arg + 10, nullptr, 10));
    } else {
      std::fprintf(stderr,
                   "usage: %s [--corpus=DIR] [--iterations=N] [--seed=S] "
                   "[--max-len=M]\n",
                   argv[0]);
      return 2;
    }
  }

  std::vector<Input> corpus;
  if (!corpus_dir.empty()) corpus = LoadCorpus(corpus_dir);
  for (const Input& input : corpus) {
    LLVMFuzzerTestOneInput(input.data(), input.size());
  }

  snb::util::Rng rng(seed, uint64_t{0xf022});
  size_t executed = corpus.size();
  for (size_t i = 0; i < iterations; ++i) {
    Input input;
    if (!corpus.empty()) {
      input = corpus[static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(corpus.size()) - 1))];
    }
    const int mutations = static_cast<int>(rng.UniformInt(1, 6));
    for (int m = 0; m < mutations; ++m) {
      MutateOnce(rng, corpus, max_len, &input);
    }
    LLVMFuzzerTestOneInput(input.data(), input.size());
    ++executed;
  }
  std::printf("fuzz smoke: %zu inputs (%zu corpus + %zu mutated), seed %llu "
              "— no crash\n",
              executed, corpus.size(), iterations,
              static_cast<unsigned long long>(seed));
  return 0;
}

// Fuzz harness: update-event line parsing (datagen::ParseUpdateEventLine).
//
// Update-stream lines cross a trust boundary twice: read back from the
// updateStream_*.csv files and decoded out of WAL record payloads during
// crash recovery. The parser must treat every byte sequence as hostile.
//
// Contract: ParseUpdateEventLine never crashes — it fills the event and
// returns OK, or returns a Corruption Status. For accepted lines the
// harness additionally asserts the serializer round-trip: formatting the
// parsed event and reparsing it must succeed (the WAL writes exactly that
// formatted form, so "parseable once but not after a rewrite" would be a
// recovery-breaking bug, not a nit).

#include <cstddef>
#include <cstdint>
#include <string>

#include "datagen/update_stream.h"
#include "util/check.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  std::string line(reinterpret_cast<const char*>(data), size);
  snb::datagen::UpdateEvent event;
  snb::util::Status st = snb::datagen::ParseUpdateEventLine(line, &event);
  if (!st.ok()) return 0;

  std::string canonical = snb::datagen::FormatUpdateEventLine(event);
  snb::datagen::UpdateEvent reparsed;
  snb::util::Status st2 =
      snb::datagen::ParseUpdateEventLine(canonical, &reparsed);
  SNB_CHECK(st2.ok());
  // The canonical form is a fixed point: formatting the reparsed event
  // must reproduce it byte for byte.
  SNB_CHECK(snb::datagen::FormatUpdateEventLine(reparsed) == canonical);
  return 0;
}

// Fuzz harness: WAL record decoding (storage::ScanWal).
//
// The WAL is the one file format the process re-reads after a crash, so its
// decoder consumes exactly the bytes an interrupted kernel left behind —
// i.e. untrusted input. The harness prepends the 8-byte file magic (the
// trivial outer gate) so the fuzzer spends its budget on the record layer:
// length prefixes, CRC checks, record types, batch protocol, torn tails.
//
// Contract: ScanWal must never crash; it returns a failure Status (bad
// magic, unreadable file) or a WalScan whose torn_tail field classifies the
// garbage. Any signal (ASan/UBSan report, SNB_CHECK) is a finding.

#include <cstddef>
#include <cstdint>

#include "fuzz_io.h"
#include "storage/wal.h"
#include "util/check.h"

namespace {
constexpr char kWalMagic[8] = {'S', 'N', 'B', 'W', 'A', 'L', '0', '1'};
}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  static const std::string path = snb::fuzz::ScratchPath("wal");
  if (!snb::fuzz::WriteInput(path, kWalMagic, sizeof(kWalMagic), data,
                             size)) {
    return 0;
  }
  snb::util::StatusOr<snb::storage::WalScan> scan =
      snb::storage::ScanWal(path);
  if (scan.ok()) {
    // Structural invariants of a successful scan: the valid prefix fits in
    // the file and the torn flag is consistent with it.
    const snb::storage::WalScan& s = scan.value();
    SNB_CHECK_LE(s.valid_bytes, s.total_bytes);
    SNB_CHECK_EQ(s.total_bytes, size + sizeof(kWalMagic));
    if (s.valid_bytes < s.total_bytes) SNB_CHECK(s.torn_tail);
  }
  return 0;
}

// Shared plumbing for the fuzz harnesses.
//
// The WAL and CSV parsers take file paths, not buffers, so their harnesses
// spill each input to one per-process scratch file and hand the parser the
// path. The file is reused (O_TRUNC) across iterations — a fuzz run
// executes the target millions of times and must not litter /tmp with
// per-iteration files.

#ifndef SNB_FUZZ_FUZZ_IO_H_
#define SNB_FUZZ_FUZZ_IO_H_

#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace snb::fuzz {

/// Returns a stable per-process scratch path ($TMPDIR or /tmp).
inline std::string ScratchPath(const char* tag) {
  const char* tmp = std::getenv("TMPDIR");
  std::string dir = (tmp != nullptr && *tmp != '\0') ? tmp : "/tmp";
  return dir + "/snb_fuzz_" + tag + "_" + std::to_string(getpid());
}

/// Overwrites `path` with header (optional) + data. Returns false on I/O
/// failure (harnesses then skip the input rather than report a finding).
inline bool WriteInput(const std::string& path, const void* header,
                       size_t header_len, const uint8_t* data, size_t size) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  bool ok = true;
  if (header_len != 0) {
    ok = std::fwrite(header, 1, header_len, f) == header_len;
  }
  if (ok && size != 0) ok = std::fwrite(data, 1, size, f) == size;
  return (std::fclose(f) == 0) && ok;
}

}  // namespace snb::fuzz

#endif  // SNB_FUZZ_FUZZ_IO_H_

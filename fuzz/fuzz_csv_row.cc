// Fuzz harness: CSV row parsing (util::ReadCsv).
//
// Every Datagen artefact — static tables, update streams, parameter files —
// flows back into the process through the pipe-separated CSV reader, so its
// row splitter sees whatever bytes a truncated or hand-edited file holds.
//
// Contract: ReadCsv must never crash; it returns a failure Status (missing
// file, width mismatch, empty header) or a table whose every row matches
// the header width. Any ASan/UBSan signal or SNB_CHECK is a finding.

#include <cstddef>
#include <cstdint>

#include "fuzz_io.h"
#include "util/check.h"
#include "util/csv.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  static const std::string path = snb::fuzz::ScratchPath("csv");
  if (!snb::fuzz::WriteInput(path, nullptr, 0, data, size)) return 0;
  snb::util::StatusOr<snb::util::CsvTable> table = snb::util::ReadCsv(path);
  if (table.ok()) {
    const snb::util::CsvTable& t = table.value();
    SNB_CHECK(!t.header.empty());
    for (const auto& row : t.rows) {
      SNB_CHECK_EQ(row.size(), t.header.size());
      // Multi-valued split/join round-trips structurally for any field that
      // does not embed the separator ambiguity (empty parts collapse).
      for (const auto& field : row) {
        auto parts = snb::util::SplitMultiValued(field);
        SNB_CHECK_LE(snb::util::JoinMultiValued(parts).size(), field.size());
      }
    }
  }
  return 0;
}

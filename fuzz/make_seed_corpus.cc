// Regenerates the checked-in seed corpora under fuzz/corpus/.
//
// Seeds are *valid* (or near-valid) inputs: the mutation engines — libFuzzer
// or the deterministic smoke driver — explore outward from them, which
// reaches the deep parser states (committed batches, multi-valued fields,
// every IU opcode) far faster than from an empty seed. The WAL seeds are
// produced by the real Wal writer so they track the format; rerun this tool
// after a format change and commit the new files:
//
//   build-fuzz/fuzz/make_seed_corpus fuzz/corpus

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/date_time.h"
#include "core/schema.h"
#include "datagen/datagen.h"
#include "datagen/update_stream.h"
#include "storage/columnar/column_block.h"
#include "storage/wal.h"
#include "util/check.h"

namespace {

using snb::datagen::UpdateEvent;
using snb::datagen::UpdateKind;

snb::core::DateTime Dt(const std::string& text) {
  snb::core::DateTime out = 0;
  SNB_CHECK(snb::core::ParseDateTime(text, &out));
  return out;
}

UpdateEvent Event(UpdateKind kind, auto payload) {
  UpdateEvent e;
  e.kind = kind;
  e.timestamp = Dt("2012-06-01T10:00:00.000+0000");
  e.dependency = Dt("2012-05-30T09:00:00.000+0000");
  e.payload = std::move(payload);
  return e;
}

/// One sample event per IU opcode, every optional field populated.
std::vector<UpdateEvent> SampleEvents() {
  std::vector<UpdateEvent> events;

  snb::core::Person p;
  p.id = 1234;
  p.first_name = "Jan";
  p.last_name = "Zak";
  p.gender = "female";
  SNB_CHECK(snb::core::ParseDate("1989-02-28", &p.birthday));
  p.creation_date = Dt("2012-05-31T11:22:33.444+0000");
  p.location_ip = "31.41.59.26";
  p.browser_used = "Firefox";
  p.city = 655;
  p.emails = {"jan@example.org", "jz@example.org"};
  p.speaks = {"pl", "en"};
  p.interests = {10, 20, 30};
  p.study_at = {{2040, 2008}};
  p.work_at = {{910, 2011}, {911, 2013}};
  events.push_back(Event(UpdateKind::kAddPerson, p));

  snb::core::Like like_post;
  like_post.person = 1234;
  like_post.message = 777000;
  like_post.is_post = true;
  like_post.creation_date = Dt("2012-06-01T10:00:01.000+0000");
  events.push_back(Event(UpdateKind::kAddLikePost, like_post));

  snb::core::Like like_comment = like_post;
  like_comment.message = 777001;
  like_comment.is_post = false;
  events.push_back(Event(UpdateKind::kAddLikeComment, like_comment));

  snb::core::Forum forum;
  forum.id = 8800;
  forum.title = "Wall of Jan Zak";
  forum.creation_date = Dt("2012-05-31T11:22:34.000+0000");
  forum.moderator = 1234;
  forum.tags = {10, 20};
  forum.kind = snb::core::ForumKind::kWall;
  events.push_back(Event(UpdateKind::kAddForum, forum));

  snb::core::ForumMembership membership;
  membership.person = 1234;
  membership.forum = 8800;
  membership.join_date = Dt("2012-06-01T09:59:59.999+0000");
  events.push_back(Event(UpdateKind::kAddMembership, membership));

  snb::core::Post post;
  post.id = 777002;
  post.image_file = "";  // content post: exactly one of the two is set
  post.creation_date = Dt("2012-06-01T10:00:02.000+0000");
  post.location_ip = "31.41.59.26";
  post.browser_used = "Firefox";
  post.language = "en";
  post.content = "About Heinrich Boll; the river.";
  post.length = 31;
  post.creator = 1234;
  post.forum = 8800;
  post.country = 55;
  post.tags = {10};
  events.push_back(Event(UpdateKind::kAddPost, post));

  snb::core::Comment comment;
  comment.id = 777003;
  comment.creation_date = Dt("2012-06-01T10:00:03.000+0000");
  comment.location_ip = "31.41.59.27";
  comment.browser_used = "Chrome";
  comment.content = "maybe";
  comment.length = 5;
  comment.creator = 1234;
  comment.country = 55;
  comment.reply_of_post = 777002;
  comment.reply_of_comment = snb::core::kNoId;
  comment.tags = {};
  events.push_back(Event(UpdateKind::kAddComment, comment));

  snb::core::Knows knows;
  knows.person1 = 1234;
  knows.person2 = 5678;
  knows.creation_date = Dt("2012-06-01T10:00:04.000+0000");
  events.push_back(Event(UpdateKind::kAddKnows, knows));

  return events;
}

void WriteFile(const std::filesystem::path& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  SNB_CHECK(out.good());
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  SNB_CHECK(out.good());
  std::printf("  wrote %s (%zu bytes)\n", path.c_str(), bytes.size());
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  SNB_CHECK(in.good());
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

/// One sample event per DEL opcode (deep deletes, Interactive v2 dialect).
std::vector<UpdateEvent> DeleteEvents() {
  std::vector<UpdateEvent> events;
  auto del = [&](UpdateKind kind, snb::core::Id a, snb::core::Id b) {
    snb::datagen::Delete d;
    d.a = a;
    d.b = b;
    events.push_back(Event(kind, d));
  };
  del(UpdateKind::kDelPerson, 1234, 0);
  del(UpdateKind::kDelLikePost, 1234, 777000);
  del(UpdateKind::kDelLikeComment, 1234, 777001);
  del(UpdateKind::kDelForum, 8800, 0);
  del(UpdateKind::kDelMembership, 1234, 8800);
  del(UpdateKind::kDelPost, 777002, 0);
  del(UpdateKind::kDelComment, 777003, 0);
  del(UpdateKind::kDelKnows, 1234, 5678);
  return events;
}

void WriteUpdateEventCorpus(const std::filesystem::path& dir) {
  std::filesystem::create_directories(dir);
  const std::vector<UpdateEvent> events = SampleEvents();
  for (size_t i = 0; i < events.size(); ++i) {
    WriteFile(dir / ("iu" + std::to_string(i + 1) + ".txt"),
              snb::datagen::FormatUpdateEventLine(events[i]));
  }
  const std::vector<UpdateEvent> deletes = DeleteEvents();
  for (size_t i = 0; i < deletes.size(); ++i) {
    WriteFile(dir / ("del" + std::to_string(i + 1) + ".txt"),
              snb::datagen::FormatUpdateEventLine(deletes[i]));
  }
  WriteFile(dir / "short.txt", "123|456");
  WriteFile(dir / "unknown_op.txt", "123|456|99|x|y");
  // Malformed cascade lines: the parser must reject, never crash.
  WriteFile(dir / "del_missing_field.txt", "123|456|9");
  WriteFile(dir / "del_extra_field.txt", "123|456|10|1|2|3");
  WriteFile(dir / "del_bad_id.txt", "123|456|12|abc");
}

void WriteCsvCorpus(const std::filesystem::path& dir) {
  std::filesystem::create_directories(dir);
  WriteFile(dir / "basic.csv", "id|name|value\n1|alpha|10\n2|beta|20\n");
  WriteFile(dir / "multivalued.csv",
            "id|emails|speaks\n7|a@x;b@y|en;de;pl\n8||\n");
  WriteFile(dir / "crlf_no_trailing_newline.csv",
            "id|name\r\n1|carriage\r\n2|return");
  WriteFile(dir / "width_mismatch.csv", "a|b|c\n1|2\n");
  WriteFile(dir / "header_only.csv", "lonely|header\n");
}

void WriteWalCorpus(const std::filesystem::path& dir) {
  std::filesystem::create_directories(dir);
  // Build a real two-batch log with the production writer, then strip the
  // 8-byte magic (the harness re-adds it).
  const std::string tmp = (dir / ".scratch.wal").string();
  {
    snb::storage::Wal wal;
    SNB_CHECK(wal.Open(tmp, {snb::storage::WalSyncPolicy::kNone}).ok());
    const std::vector<UpdateEvent> events = SampleEvents();
    snb::core::Date day = 15000;
    size_t half = events.size() / 2;
    SNB_CHECK(wal.BatchBegin(day).ok());
    for (size_t i = 0; i < half; ++i) {
      SNB_CHECK(wal.Append(events[i]).ok());
    }
    SNB_CHECK(wal.BatchCommit(day).ok());
    const std::vector<UpdateEvent> deletes = DeleteEvents();
    SNB_CHECK(wal.BatchBegin(day + 1).ok());
    SNB_CHECK(wal.NoteDeleteBatch(
                     day + 1, static_cast<uint32_t>(deletes.size()))
                  .ok());
    for (const UpdateEvent& event : deletes) {
      SNB_CHECK(wal.Append(event).ok());
    }
    for (size_t i = half; i < events.size(); ++i) {
      SNB_CHECK(wal.Append(events[i]).ok());
    }
    SNB_CHECK(wal.BatchCommit(day + 1).ok());
    SNB_CHECK(wal.Close().ok());
  }
  std::string bytes = ReadFile(tmp);
  std::filesystem::remove(tmp);
  SNB_CHECK_GE(bytes.size(), 8u);
  const std::string records = bytes.substr(8);

  WriteFile(dir / "two_batches.bin", records);
  WriteFile(dir / "torn_tail.bin",
            records.substr(0, records.size() - records.size() / 3));
  std::string bad_crc = records;
  bad_crc[bad_crc.size() / 2] ^= 0x5a;
  WriteFile(dir / "bad_crc.bin", bad_crc);
  WriteFile(dir / "empty.bin", "");
}

void WriteColumnBlockCorpus(const std::filesystem::path& dir) {
  std::filesystem::create_directories(dir);
  using snb::storage::columnar::ColumnBlock;

  // Valid blocks from both encoders, spanning the width extremes the
  // decoder's strictness re-derives (0-bit constant runs up to wide FOR).
  std::vector<uint64_t> dates;
  for (uint64_t i = 0; i < 300; ++i) {
    dates.push_back(1'300'000'000'000 + i * 61'000);
  }
  std::string delta_sorted;
  ColumnBlock::EncodeDelta(dates).SerializeTo(&delta_sorted);
  WriteFile(dir / "delta_sorted.bin", delta_sorted);

  std::vector<uint64_t> refs = {9, 2, 7, 2, 40, 11, 3, 3, 0, 25};
  std::string for_small;
  ColumnBlock::EncodeFor(refs).SerializeTo(&for_small);
  WriteFile(dir / "for_small.bin", for_small);

  std::vector<uint64_t> constant(64, 0xfeedface);
  std::string for_constant;
  ColumnBlock::EncodeFor(constant).SerializeTo(&for_constant);
  WriteFile(dir / "for_constant_zero_bits.bin", for_constant);

  std::vector<uint64_t> wide = {0, UINT64_MAX, 1, UINT64_MAX / 3};
  std::string for_wide;
  ColumnBlock::EncodeFor(wide).SerializeTo(&for_wide);
  WriteFile(dir / "for_wide.bin", for_wide);

  // Near-valid mutants: a truncated payload and a corrupted zone byte, the
  // two damage classes the strict decoder must reject (not crash on).
  WriteFile(dir / "truncated.bin",
            delta_sorted.substr(0, delta_sorted.size() / 2));
  std::string bad = for_small;
  bad[bad.size() / 2] ^= 0x5a;
  WriteFile(dir / "flipped_byte.bin", bad);
  WriteFile(dir / "empty.bin", "");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <corpus-root-dir>\n", argv[0]);
    return 2;
  }
  const std::filesystem::path root = argv[1];
  WriteUpdateEventCorpus(root / "update_event");
  WriteCsvCorpus(root / "csv");
  WriteWalCorpus(root / "wal");
  WriteColumnBlockCorpus(root / "column_block");
  std::printf("seed corpora written under %s\n", root.c_str());
  return 0;
}

// Fuzz harness: serialized column-block decoding (DecodeColumnBlock).
//
// Encoded blocks cross a durability boundary — checkpoints and spill
// artefacts hand the decoder whatever bytes the disk returns — so the
// decoder must be total over arbitrary input.
//
// Contract: DecodeColumnBlock never crashes; it returns a failure Status or
// an OK block that is a serialization fixed point (accepted bytes
// re-serialize to themselves) and whose zone metadata exactly covers the
// decoded values. Any ASan/UBSan signal or SNB_CHECK is a finding.

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "storage/columnar/column_block.h"
#include "util/check.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  using snb::storage::columnar::ColumnBlock;
  using snb::storage::columnar::DecodeColumnBlock;

  ColumnBlock block;
  size_t consumed = 0;
  snb::util::Status status =
      DecodeColumnBlock({data, size}, &block, &consumed);
  if (!status.ok()) return 0;

  SNB_CHECK_LE(consumed, size);
  SNB_CHECK_GT(block.size(), 0u);
  SNB_CHECK_LE(block.size(), ColumnBlock::kMaxValues);
  SNB_CHECK_LE(block.zone_min(), block.zone_max());

  // The strict decoder re-derives zone metadata, so every decoded value
  // must fall inside the advertised zone.
  std::vector<uint64_t> values;
  block.DecodeAll(&values);
  SNB_CHECK_EQ(values.size(), block.size());
  for (uint64_t v : values) {
    SNB_CHECK_GE(v, block.zone_min());
    SNB_CHECK_LE(v, block.zone_max());
  }

  // Fixed point: accepted bytes re-serialize to exactly the consumed
  // prefix, and decoding the re-serialization yields the same values.
  std::string reserialized;
  block.SerializeTo(&reserialized);
  SNB_CHECK_EQ(reserialized.size(), consumed);
  SNB_CHECK(std::memcmp(reserialized.data(), data, consumed) == 0);

  ColumnBlock again;
  size_t again_consumed = 0;
  SNB_CHECK_OK(DecodeColumnBlock(
      {reinterpret_cast<const uint8_t*>(reserialized.data()),
       reserialized.size()},
      &again, &again_consumed));
  SNB_CHECK_EQ(again_consumed, consumed);
  SNB_CHECK_EQ(again.size(), block.size());
  return 0;
}

#!/usr/bin/env bash
# CI-facing lint report. Where scripts/lint.sh is the pass/fail *gate*,
# this script is the *annotator*: it runs snb_lint in --format=json mode
# and renders each finding on one line in a machine-greppable form that CI
# systems can turn into inline annotations:
#
#   ::error file=src/x.cc,line=12::[check] message      (unsuppressed)
#   ::notice file=src/y.cc,line=7::[check] suppressed: message
#
# Suppressed findings (well-formed snb-lint-allow comments) are reported
# as notices so the allow inventory stays visible in CI without failing
# the build — the JSON keeps them precisely so this script can count them.
# A trailing summary line gives the totals.
#
# Flags are passed through to snb_lint, so `lint_report.sh --changed-only`
# annotates only files touched relative to HEAD.
#
# Exit code mirrors snb_lint: 0 clean (suppressed-only is clean), 1 when
# any unsuppressed finding exists, 2 on usage/IO errors.
set -uo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
lint_src="$repo/tools/snb_lint"
lint_bin="$repo/build/snb_lint-cache/snb_lint"

rebuild=0
if [[ ! -x "$lint_bin" ]]; then
  rebuild=1
else
  for f in "$lint_src"/*.cc "$lint_src"/*.h; do
    if [[ "$f" -nt "$lint_bin" ]]; then rebuild=1; break; fi
  done
fi
if [[ "$rebuild" -eq 1 ]]; then
  mkdir -p "$(dirname "$lint_bin")"
  cxx="${CXX:-c++}"
  if ! "$cxx" -std=c++20 -O1 -o "$lint_bin" "$lint_src"/*.cc; then
    echo "lint_report: snb_lint failed to build (compiler: $cxx)" >&2
    exit 2
  fi
fi

json=$("$lint_bin" --root "$repo" --format=json "$@")
status=$?
if [[ "$status" -gt 1 ]]; then
  echo "lint_report: snb_lint did not run cleanly (exit $status)" >&2
  printf '%s\n' "$json" >&2
  exit "$status"
fi

# The JSON is one object per line (pretty-printed array, one finding per
# element line), so a line-oriented parse is exact, not a heuristic. Pull
# the four fields we render; the message is everything the analyzer said.
errors=0
notices=0
while IFS= read -r line; do
  case "$line" in
    *'"check"'*) ;;
    *) continue ;;
  esac
  check=$(printf '%s' "$line" | sed -n 's/.*"check": "\([^"]*\)".*/\1/p')
  file=$(printf '%s' "$line" | sed -n 's/.*"file": "\([^"]*\)".*/\1/p')
  lineno=$(printf '%s' "$line" | sed -n 's/.*"line": \([0-9]*\).*/\1/p')
  msg=$(printf '%s' "$line" |
    sed -n 's/.*"message": "\(.*\)", "suppressed".*/\1/p')
  if printf '%s' "$line" | grep -q '"suppressed": true'; then
    notices=$((notices + 1))
    echo "::notice file=${file},line=${lineno}::[${check}] suppressed: ${msg}"
  else
    errors=$((errors + 1))
    echo "::error file=${file},line=${lineno}::[${check}] ${msg}"
  fi
done <<<"$json"

echo "lint_report: ${errors} finding(s), ${notices} suppressed allow(s)"
if [[ "$errors" -gt 0 ]]; then exit 1; fi
exit 0

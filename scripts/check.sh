#!/usr/bin/env bash
# Tier-1 verification: the full build + test suite, then the scheduler and
# morsel-parallel tests again under ThreadSanitizer. Run from anywhere;
# builds land in build/ and build-tsan/ at the repo root.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"

echo "== tier-1: configure + build + ctest =="
cmake -B "$repo/build" -S "$repo"
cmake --build "$repo/build" -j
ctest --test-dir "$repo/build" --output-on-failure -j

echo "== TSan: scheduler + morsel tests under -fsanitize=thread =="
cmake -B "$repo/build-tsan" -S "$repo" -DSNB_SANITIZE=thread
cmake --build "$repo/build-tsan" -j --target sched_test parallel_test
"$repo/build-tsan/tests/sched_test"
"$repo/build-tsan/tests/parallel_test"

echo "== all checks passed =="

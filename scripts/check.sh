#!/usr/bin/env bash
# Tier-1 verification matrix. Stages, in order:
#
#   1. lint           — snb_lint token-level conventions + git-state gates
#                       (scripts/lint.sh builds-or-reuses tools/snb_lint)
#   2. tidy           — clang-tidy curated profile (scripts/tidy.sh)
#   3. dev build      — -Wall -Wextra -Wshadow -Werror (SNB_DEV=ON) + ctest
#   4. UBSan          — full ctest under -fsanitize=undefined, no recover
#   5. TSan           — scheduler + morsel tests under -fsanitize=thread
#   6. ASan           — fail-point + crash-recovery tests under
#                       -fsanitize=address, then the delete-cascade crash
#                       loop (torn cascades at every graph.delete.* stage)
#                       via ctest so its 600 s TIMEOUT governs the forks
#   7. deadlock       — full ctest with SNB_DEADLOCK_DETECT=ON: any
#                       lock-order cycle or blocking-while-locked report
#                       aborts its test — the no-false-positive gate
#   8. fuzz smoke     — the parser/decoder fuzz harnesses, fixed-iteration
#                       deterministic replay under ASan+UBSan
#   9. scale smoke    — streaming datagen at 10× the bench scale under a
#                       bounded sorter budget, loaded, validated, and held
#                       to the bytes/edge compression budget
#  10. kernel smoke   — bench_kernels --smoke: pushdown engines vs the naive
#                       oracle, with scan counters asserting the bound/zone
#                       pruning actually fires on every top-k query
#  11. thread-safety  — clang -Wthread-safety -Werror=thread-safety build
#  12. gcc-analyzer   — gcc -fanalyzer over the tree, opt-in via
#                       SNB_FANALYZER=1 (skipped with a notice otherwise:
#                       GCC's analyzer is still experimental for C++ and
#                       too noisy to gate on)
#
# Stages 1 and 3–10 run on any GCC machine; 2 and 11 need clang and are
# skipped with a notice when it is absent — the matrix must stay useful on
# the GCC-only tier-1 machines. Run from anywhere; builds land in build*/
# at the repo root.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"

echo "== lint: snb_lint token-level conventions + git-state gates =="
"$repo/scripts/lint.sh"

echo "== tidy: clang-tidy curated profile =="
"$repo/scripts/tidy.sh"

echo "== tier-1: configure + build (SNB_DEV warnings as errors) + ctest =="
cmake -B "$repo/build" -S "$repo" -DSNB_DEV=ON
cmake --build "$repo/build" -j
ctest --test-dir "$repo/build" --output-on-failure -j

echo "== UBSan: full ctest under -fsanitize=undefined (no recover) =="
cmake -B "$repo/build-ubsan" -S "$repo" -DSNB_SANITIZE=undefined
cmake --build "$repo/build-ubsan" -j
ctest --test-dir "$repo/build-ubsan" --output-on-failure -j

echo "== TSan: scheduler + morsel tests under -fsanitize=thread =="
cmake -B "$repo/build-tsan" -S "$repo" -DSNB_SANITIZE=thread
cmake --build "$repo/build-tsan" -j --target sched_test parallel_test
"$repo/build-tsan/tests/sched_test"
"$repo/build-tsan/tests/parallel_test"

echo "== ASan: crash-recovery loop under -fsanitize=address =="
# The fail-point crash loop forks, _Exit()s children mid-write and replays
# torn WALs — exactly the code that hides use-after-free and leaks from a
# plain build. ASan children keep the instrumentation across fork.
cmake -B "$repo/build-asan" -S "$repo" -DSNB_SANITIZE=address
cmake --build "$repo/build-asan" -j --target failpoint_test wal_recovery_test
"$repo/build-asan/tests/failpoint_test"
"$repo/build-asan/tests/wal_recovery_test"

echo "== ASan: delete-cascade crash loop =="
# Torn cascades at every graph.delete.* stage: the tests arm each cascade
# fail-point, kill the delete mid-flight, and assert the tombstone
# invariants catch the torn state, refresh retries it as kTransient, and
# recovery replays the WAL delete batch to the identical graph. Runs
# through ctest so the suite's registered 600 s TIMEOUT bounds the forked
# crash children; ASan keeps instrumentation across the forks.
cmake --build "$repo/build-asan" -j --target delete_cascade_test
ctest --test-dir "$repo/build-asan" -R '^delete_cascade_test$' \
  --output-on-failure

echo "== deadlock: full ctest with the lock-order analyzer armed =="
# Every acquisition feeds the lock-order graph and any report _Exit()s the
# test (kAbort), so a green run IS the proof that the whole suite — the
# scheduler, morsel, refresh and recovery concurrency included — never
# acquires two sites in inconsistent order and never blocks on a CondVar
# with an undeclared mutex held. deadlock_test itself additionally asserts
# the analyzer *does* fire on intentional inversions (in forked children).
cmake -B "$repo/build-deadlock" -S "$repo" -DSNB_DEADLOCK_DETECT=ON
cmake --build "$repo/build-deadlock" -j
ctest --test-dir "$repo/build-deadlock" --output-on-failure -j

echo "== fuzz smoke: parser harnesses, fixed iterations, ASan+UBSan =="
# Deterministic replay (seed corpus + seeded mutations, ~30 s total): the
# harness contract is "any byte string returns a Status, never a crash",
# and the sanitizers turn silent memory corruption into loud failures.
# Identical command lines replay identical byte sequences — a CI failure
# reproduces locally by rerunning the printed invocation.
cmake -B "$repo/build-fuzz" -S "$repo" -DSNB_FUZZ=ON \
  -DSNB_SANITIZE=address+undefined
cmake --build "$repo/build-fuzz" -j \
  --target fuzz_wal_record_smoke fuzz_csv_row_smoke fuzz_update_event_smoke \
           fuzz_column_block_smoke
for pair in fuzz_wal_record:wal fuzz_csv_row:csv fuzz_update_event:update_event \
            fuzz_column_block:column_block; do
  harness="${pair%%:*}"
  corpus="${pair##*:}"
  "$repo/build-fuzz/fuzz/${harness}_smoke" \
    --corpus="$repo/fuzz/corpus/$corpus" --iterations=50000
done

echo "== scale smoke: streaming datagen at 10x the bench scale =="
# bench/BENCH_storage.json baselines at 800 persons; this stage generates
# 8000 with a 64 MiB sorter budget (spills are expected and part of the
# point), loads the result into the compressed store, holds it to the
# bytes/edge ceiling (baseline is ~4.4 against a raw ~11; 6.0 is the
# regression gate), and runs the full graph-invariant validator on it.
scale_dir="$repo/build/scale-smoke-out"
rm -rf "$scale_dir"
"$repo/build/tools/snb_datagen" "$scale_dir" --persons 8000 --budget-mb 64 \
  --max-bytes-per-edge 6.0
"$repo/build/tools/snb_validate" --load "$scale_dir"
rm -rf "$scale_dir"

echo "== kernel smoke: bound pushdown prunes on every top-k query =="
# bench_kernels --smoke cross-validates the pushdown engines against the
# naive oracle and *asserts* the scan counters show pruning (blocks or rows
# skipped > 0 on every pushdown query) — a silently disabled bound or zone
# map fails this stage even though results would still be correct.
cmake --build "$repo/build" -j --target bench_kernels
"$repo/build/bench/bench_kernels" --persons=2000 --reps=1 --smoke \
  --out="$repo/build/BENCH_kernels_smoke.json"

echo "== thread-safety: clang -Wthread-safety -Werror=thread-safety =="
if command -v clang++ >/dev/null 2>&1; then
  cmake -B "$repo/build-tsa" -S "$repo" \
    -DCMAKE_CXX_COMPILER=clang++ -DCMAKE_C_COMPILER=clang
  cmake --build "$repo/build-tsa" -j
else
  echo "   SKIPPED: clang++ not installed on this machine" \
       "(annotations compiled as no-ops by GCC; analysis needs clang)"
fi

echo "== gcc-analyzer: -fanalyzer interprocedural paths (opt-in) =="
# GCC's static analyzer explores interprocedural paths the sanitizers only
# see when a test happens to drive them (double-free, use-after-free, fd
# leaks). Its C++ support is still explicitly experimental upstream and
# produces false positives on idiomatic STL code, so the stage is advisory
# and opt-in: diagnostics print but do not fail the matrix.
if [[ "${SNB_FANALYZER:-0}" == "1" ]]; then
  cmake -B "$repo/build-fanalyzer" -S "$repo" \
    -DCMAKE_CXX_FLAGS="-fanalyzer" -DCMAKE_BUILD_TYPE=Release
  cmake --build "$repo/build-fanalyzer" -j || true
else
  echo "   SKIPPED: set SNB_FANALYZER=1 to run (gcc -fanalyzer is" \
       "experimental for C++; advisory output only, never a gate)"
fi

echo "== all active checks passed =="

#!/usr/bin/env bash
# Tier-1 verification matrix. Stages, in order:
#
#   1. lint           — grep conventions + clang-tidy (scripts/lint.sh)
#   2. dev build      — -Wall -Wextra -Wshadow -Werror (SNB_DEV=ON) + ctest
#   3. UBSan          — full ctest under -fsanitize=undefined, no recover
#   4. TSan           — scheduler + morsel tests under -fsanitize=thread
#   5. ASan           — fail-point + crash-recovery tests under
#                       -fsanitize=address
#   6. thread-safety  — clang -Wthread-safety -Werror=thread-safety build
#
# Stages 1–5 run on any GCC machine; stage 6 needs clang and is skipped
# with a notice when it is absent — the matrix must stay useful on the
# GCC-only tier-1 machines. Run from anywhere; builds land in build*/ at
# the repo root.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"

echo "== lint: repo conventions + clang-tidy =="
"$repo/scripts/lint.sh"

echo "== tier-1: configure + build (SNB_DEV warnings as errors) + ctest =="
cmake -B "$repo/build" -S "$repo" -DSNB_DEV=ON
cmake --build "$repo/build" -j
ctest --test-dir "$repo/build" --output-on-failure -j

echo "== UBSan: full ctest under -fsanitize=undefined (no recover) =="
cmake -B "$repo/build-ubsan" -S "$repo" -DSNB_SANITIZE=undefined
cmake --build "$repo/build-ubsan" -j
ctest --test-dir "$repo/build-ubsan" --output-on-failure -j

echo "== TSan: scheduler + morsel tests under -fsanitize=thread =="
cmake -B "$repo/build-tsan" -S "$repo" -DSNB_SANITIZE=thread
cmake --build "$repo/build-tsan" -j --target sched_test parallel_test
"$repo/build-tsan/tests/sched_test"
"$repo/build-tsan/tests/parallel_test"

echo "== ASan: crash-recovery loop under -fsanitize=address =="
# The fail-point crash loop forks, _Exit()s children mid-write and replays
# torn WALs — exactly the code that hides use-after-free and leaks from a
# plain build. ASan children keep the instrumentation across fork.
cmake -B "$repo/build-asan" -S "$repo" -DSNB_SANITIZE=address
cmake --build "$repo/build-asan" -j --target failpoint_test wal_recovery_test
"$repo/build-asan/tests/failpoint_test"
"$repo/build-asan/tests/wal_recovery_test"

echo "== thread-safety: clang -Wthread-safety -Werror=thread-safety =="
if command -v clang++ >/dev/null 2>&1; then
  cmake -B "$repo/build-tsa" -S "$repo" \
    -DCMAKE_CXX_COMPILER=clang++ -DCMAKE_C_COMPILER=clang
  cmake --build "$repo/build-tsa" -j
else
  echo "   SKIPPED: clang++ not installed on this machine" \
       "(annotations compiled as no-ops by GCC; analysis needs clang)"
fi

echo "== all active checks passed =="

#!/usr/bin/env bash
# Repo-specific lint gate: grep-enforced conventions that have each caught
# (or would have caught) a real bug in this codebase. All stages are plain
# text scans, so the whole gate runs in under a second on any machine; the
# semantic clang-tidy pass lives in scripts/tidy.sh.
#
# Exit code: 0 when every active stage passes, 1 on any finding.
set -uo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo"

failures=0

fail() {
  failures=$((failures + 1))
  echo "LINT FAIL: $1"
  shift
  for line in "$@"; do echo "    $line"; done
}

# Strip // and /* comments so conventions documented in prose (e.g.
# thread_annotations.h explaining *why* raw std::mutex is banned) don't trip
# the greps that enforce them.
match_code() {  # match_code <pattern> <file...>
  local pattern="$1"
  shift
  for f in "$@"; do
    sed -e 's://.*$::' -e 's:/\*.*\*/::g' "$f" |
      grep -nE "$pattern" |
      sed "s|^|$f:|"
  done
}

src_files() {  # all first-party sources, optionally filtered
  find src tools bench -name '*.cc' -o -name '*.h' | sort
}

echo "== lint: non-deterministic randomness outside datagen =="
# Benchmarks and queries must draw from seeded util::Rng (Power@SF runs are
# only comparable if parameter curation is reproducible); datagen owns its
# own seeding policy.
hits=$(match_code '\b(rand|srand|random)\(\)' $(src_files | grep -v '^src/datagen/'))
if [[ -n "$hits" ]]; then fail "raw rand()/srand()/random() outside src/datagen/" "$hits"; fi

echo "== lint: wall-clock time in query or storage code =="
# std::time/time(nullptr) in query code makes results depend on when the
# benchmark ran. Timestamps flow in through parameters; timing uses
# steady_clock via util/timer.
hits=$(match_code '\bstd::time\b|\btime\(nullptr\)|\btime\(NULL\)' \
  $(src_files | grep -v '^src/datagen/'))
if [[ -n "$hits" ]]; then fail "wall-clock std::time outside src/datagen/" "$hits"; fi

echo "== lint: raw synchronisation primitives outside util/mutex.h =="
# Thread-safety analysis only sees util::Mutex/MutexLock/CondVar (they carry
# the clang capability attributes). A raw std::mutex member is invisible to
# -Wthread-safety and re-opens the data-race class the annotations closed.
hits=$(match_code 'std::mutex|std::condition_variable|std::lock_guard|std::unique_lock|std::scoped_lock' \
  $(src_files | grep -v '^src/util/mutex.h$'))
if [[ -n "$hits" ]]; then fail "raw std synchronisation primitive outside src/util/mutex.h" "$hits"; fi

echo "== lint: CondVar stays inside src/util/ =="
# Every blocking wait loop must live in a util primitive (ThreadPool,
# BlockingCounter, CondVar::WaitFor) where the spurious-wakeup re-check and
# the SNB_DEADLOCK_DETECT blocking-while-locked audit can be reviewed in
# one place. A CondVar in higher layers re-opens the hand-rolled-wait bug
# class that engine/morsel.cc used to carry. src/analysis/ is exempt: the
# deadlock analyzer audits CondVar waits and names them in its reports.
hits=$(match_code '\bCondVar\b' \
  $(src_files | grep -v -e '^src/util/' -e '^src/analysis/'))
if [[ -n "$hits" ]]; then fail "util::CondVar used outside src/util/" "$hits"; fi

echo "== lint: no tracked file names beginning with a dash =="
# A file called "--persons=50" (a misquoted flag once landed at the repo
# root exactly like this) is a foot-gun: it is argument-injection bait for
# every tool that globs the tree, and plain "rm" cannot delete it. Reject
# any tracked path whose basename starts with "-".
hits=$(git ls-files | grep -E '(^|/)-' || true)
if [[ -n "$hits" ]]; then fail "tracked file name begins with '-'" "$hits"; fi

echo "== lint: fuzz harnesses drive public Status-returning parsers =="
# Each harness must exercise a real public entry point (ScanWal / ReadCsv /
# ParseUpdateEventLine / DecodeColumnBlock) — fuzzing a private helper tests
# code no production caller reaches, and including a .cc or internal::
# symbol would silently decouple the harness from the shipped parser.
for f in fuzz/fuzz_*.cc; do
  [[ "$f" == "fuzz/fuzz_smoke_main.cc" ]] && continue
  if ! grep -qE 'ScanWal|ReadCsv|ParseUpdateEventLine|DecodeColumnBlock' "$f"; then
    fail "fuzz harness drives no public parser entry point:" "$f"
  fi
  hits=$(match_code '#include *"[^"]*\.cc"|\binternal::' "$f")
  if [[ -n "$hits" ]]; then fail "fuzz harness reaches past the public API" "$hits"; fi
done

echo "== lint: BI queries must poll for cancellation =="
# Every BI kernel runs under the scheduler's per-query deadline; a query
# with no CancelPoller in its hot loop can stall a whole stream past its
# time budget (scheduler cancellation is cooperative).
missing=""
for f in src/bi/bi[0-9][0-9].cc; do
  if ! grep -qE 'CancelPoller|PollCancel' "$f"; then
    missing="$missing $f"
  fi
done
if [[ -n "$missing" ]]; then fail "BI query file without a cancellation poll:" $missing; fi

echo "== lint: top-k BI kernels consult the shared bound =="
# Every top-k pushdown query (CP-1.3) must prune through engine::BoundRef —
# a kernel that sorts first and prunes never silently regresses to the
# sort-everything plan the pushdown work exists to beat. BI 2/3/6/12/14 are
# the top-100 kernels; parallel.cc carries their morsel variants.
missing=""
for f in src/bi/bi02.cc src/bi/bi03.cc src/bi/bi06.cc src/bi/bi12.cc \
         src/bi/bi14.cc src/bi/parallel.cc; do
  if ! grep -qE 'BoundRef|CannotPlace' "$f"; then
    missing="$missing $f"
  fi
done
if [[ -n "$missing" ]]; then fail "top-k BI kernel without BoundRef pushdown:" $missing; fi

echo "== lint: raw std::atomic banned in query code =="
# Cross-slot state in src/bi/ goes through the sanctioned engine/ helpers
# (BoundRef's monotone CAS-max, ScanStats' relaxed counters) whose memory-
# order story is reviewed in one place. A raw std::atomic in a kernel
# re-opens the torn-publish bug class; cancel.h/cancel.cc own the one
# pre-existing exception (the cooperative cancel flag).
hits=$(match_code 'std::atomic' \
  $(find src/bi -name '*.cc' -o -name '*.h' | sort | grep -v -e '^src/bi/cancel\.h$' -e '^src/bi/cancel\.cc$'))
if [[ -n "$hits" ]]; then fail "raw std::atomic in src/bi/ outside cancel.h/cancel.cc" "$hits"; fi

echo "== lint: assert()/abort() bypass util/check.h =="
# SNB_CHECK* print the failing expression, file:line and a message before
# aborting, and SNB_DCHECK compiles out in release; raw assert/abort lose
# the diagnostics and ignore NDEBUG policy.
hits=$(match_code '(^|[^_[:alnum:]])assert\(|(^|[^_[:alnum:]])abort\(' \
  $(src_files | grep -v '^src/util/check.h$'))
if [[ -n "$hits" ]]; then fail "raw assert()/abort() outside src/util/check.h" "$hits"; fi

echo "== lint: fail-point sites live in src/, arming lives in tests/ =="
# The SNB_FAILPOINT macros mark *sites* in production code; tests inject
# through the arming API instead, so a site macro in tests/, tools/ or
# bench/ means fault injection leaked out of the product path.
hits=$(match_code 'SNB_FAILPOINT' \
  $(find tools bench tests -name '*.cc' -o -name '*.h' | sort))
if [[ -n "$hits" ]]; then fail "SNB_FAILPOINT site macro outside src/" "$hits"; fi
# The converse: production code must never arm a point (a shipped binary
# that injects its own failures is a latent outage); arming is reserved
# for tests/ and the SNB_FAILPOINTS env handled inside failpoint.cc.
hits=$(match_code 'failpoint::(Arm|ArmFromSpecString|Disarm|DisarmAll)\b' \
  $(src_files | grep -v '^src/util/failpoint\.'))
if [[ -n "$hits" ]]; then fail "fail-point arming API used outside tests/" "$hits"; fi

echo "== lint: WAL file access is confined to storage/wal.cc =="
# Every reader and writer of the redo log goes through the Wal/ScanWal API;
# a second code path that opens wal.log by name could break the framing or
# the torn-tail truncation invariant without any test noticing.
hits=$(match_code 'wal\.log' $(src_files | grep -v '^src/storage/wal\.cc$'))
if [[ -n "$hits" ]]; then fail "wal.log path reference outside src/storage/wal.cc" "$hits"; fi

echo "== lint: test_access.h is test-only =="
# storage::TestAccess pierces every encapsulation boundary by design; an
# include from src/, tools/ or bench/ would let shipping code mutate
# guarded internals without locks.
hits=$(grep -rn '#include.*test_access\.h' src tools bench 2>/dev/null || true)
if [[ -n "$hits" ]]; then fail "test_access.h included outside tests/" "$hits"; fi

echo
if [[ "$failures" -eq 0 ]]; then
  echo "== lint: all active stages passed =="
  exit 0
fi
echo "== lint: $failures stage(s) failed =="
exit 1

#!/usr/bin/env bash
# Repo lint gate. The code-level conventions (randomness, wall-clock time,
# raw sync primitives, cancellation polls, bound pushdown, fail-point and
# WAL confinement, unchecked Status, relaxed-atomic rationales, GUARDED_BY
# coverage, ...) are enforced by tools/snb_lint — a token-level analyzer
# with a real lexer, so string literals, multi-line /* */ comments and raw
# strings cannot fool it the way they fooled the old sed|grep pipeline
# (tests/lint_fixtures/lexer_multiline_comment.cc is the regression that
# pipeline missed). This script only
#   1. builds (or reuses) the snb_lint binary,
#   2. runs it over the tree,
#   3. keeps the one gate that is about *git state*, not code: tracked
#      file names beginning with a dash.
#
# snb_lint includes nothing from src/, so one plain compiler invocation
# builds it — no CMake configure needed; the lint gate stays usable on a
# bare checkout in under a second once the binary is cached.
#
# Exit code: 0 when everything passes, 1 on any finding.
set -uo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo"

failures=0

fail() {
  failures=$((failures + 1))
  echo "LINT FAIL: $1"
  shift
  for line in "$@"; do echo "    $line"; done
}

echo "== lint: snb_lint token-level conventions =="
lint_src="$repo/tools/snb_lint"
lint_bin="$repo/build/snb_lint-cache/snb_lint"
rebuild=0
if [[ ! -x "$lint_bin" ]]; then
  rebuild=1
else
  for f in "$lint_src"/*.cc "$lint_src"/*.h; do
    if [[ "$f" -nt "$lint_bin" ]]; then rebuild=1; break; fi
  done
fi
if [[ "$rebuild" -eq 1 ]]; then
  mkdir -p "$(dirname "$lint_bin")"
  cxx="${CXX:-c++}"
  if ! "$cxx" -std=c++20 -O1 -o "$lint_bin" "$lint_src"/*.cc; then
    fail "snb_lint failed to build (compiler: $cxx)"
    echo "== lint: $failures stage(s) failed =="
    exit 1
  fi
fi
hits=$("$lint_bin" --root "$repo")
status=$?
if [[ "$status" -eq 1 ]]; then
  fail "snb_lint findings:" "$hits"
elif [[ "$status" -ne 0 ]]; then
  fail "snb_lint did not run cleanly (exit $status)" "$hits"
fi

echo "== lint: no tracked file names beginning with a dash =="
# A file called "--persons=50" (a misquoted flag once landed at the repo
# root exactly like this) is a foot-gun: it is argument-injection bait for
# every tool that globs the tree, and plain "rm" cannot delete it. Reject
# any tracked path whose basename starts with "-". Git-state, not code, so
# it stays here rather than in the analyzer.
hits=$(git ls-files | grep -E '(^|/)-' || true)
if [[ -n "$hits" ]]; then fail "tracked file name begins with '-'" "$hits"; fi

echo
if [[ "$failures" -eq 0 ]]; then
  echo "== lint: all active stages passed =="
  exit 0
fi
echo "== lint: $failures stage(s) failed =="
exit 1

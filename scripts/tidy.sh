#!/usr/bin/env bash
# clang-tidy stage, split out of lint.sh so the grep gates stay instant and
# the expensive semantic pass can be run (or skipped) on its own.
#
# Uses the curated profile in .clang-tidy — every enabled check is a bug
# class this codebase has actually hit, so a clean run stays achievable and
# a finding is worth reading. The compilation database is exported from the
# dev build tree; configuring it is cheap if build/ already exists.
#
# Exit code: 0 on a clean (or skipped) run, 1 on findings. Skips with a
# notice when clang-tidy is absent — the GCC-only tier-1 machines must
# still get a meaningful, passing matrix.
set -uo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo"

if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "== tidy: SKIPPED — clang-tidy not installed on this machine" \
       "(grep gates in lint.sh still enforce the repo conventions)"
  exit 0
fi

echo "== tidy: exporting compile_commands.json from the dev build =="
cmake -B build -S . -DSNB_DEV=ON -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
if [[ ! -f build/compile_commands.json ]]; then
  echo "TIDY FAIL: build/compile_commands.json was not generated"
  exit 1
fi

echo "== tidy: clang-tidy over src/ and tools/ (profile: .clang-tidy) =="
tidy_out=$(clang-tidy -p build --quiet $(find src tools -name '*.cc' | sort) \
             2>/dev/null)
if echo "$tidy_out" | grep -qE 'warning:|error:'; then
  echo "TIDY FAIL: clang-tidy findings:"
  echo "$tidy_out" | grep -E 'warning:|error:' | head -40
  exit 1
fi

echo "== tidy: clean =="
exit 0

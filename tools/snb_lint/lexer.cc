#include "lexer.h"

#include <cctype>
#include <utility>

namespace snb_lint {
namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// True when the identifier spelling is a raw-string prefix (R", uR", u8R",
/// UR", LR") — the one place where ordinary identifier lexing must yield to
/// literal lexing, because everything up to the matching )delim" is content.
bool IsRawStringPrefix(std::string_view ident) {
  return ident == "R" || ident == "uR" || ident == "u8R" || ident == "UR" ||
         ident == "LR";
}

}  // namespace

LexedFile Lex(std::string path, std::string_view content) {
  LexedFile out;
  out.path = std::move(path);
  const size_t n = content.size();
  size_t i = 0;
  int line = 1;
  bool line_start = true;  // only whitespace seen since the last newline

  auto peek = [&](size_t k) -> char {
    return i + k < n ? content[i + k] : '\0';
  };
  auto push = [&](TokKind kind, std::string text) {
    out.tokens.push_back(Token{kind, std::move(text), line});
  };

  while (i < n) {
    char c = content[i];
    if (c == '\n') {
      ++line;
      line_start = true;
      ++i;
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f') {
      ++i;
      continue;
    }

    // Preprocessor: '#' as the first non-whitespace character of a logical
    // line owns everything up to an uncontinued newline.
    if (c == '#' && line_start) {
      PPLine pp;
      pp.line_begin = line;
      size_t begin = i;
      while (i < n) {
        if (content[i] == '\n') {
          if (i > begin && content[i - 1] == '\\') {
            ++line;
            ++i;
            continue;
          }
          break;  // newline stays for the main loop to count
        }
        ++i;
      }
      pp.line_end = line;
      pp.text = std::string(content.substr(begin, i - begin));
      out.pp_lines.push_back(std::move(pp));
      continue;
    }
    const bool at_line_start = line_start;
    line_start = false;

    // Line comment; a backslash immediately before the newline splices the
    // next physical line into the comment (the classic lexer trap).
    if (c == '/' && peek(1) == '/') {
      Comment cm;
      cm.line_begin = line;
      cm.block = false;
      size_t begin = i + 2;
      i += 2;
      while (i < n) {
        if (content[i] == '\n') {
          if (i > begin && content[i - 1] == '\\') {
            ++line;
            ++i;
            continue;
          }
          break;
        }
        ++i;
      }
      cm.line_end = line;
      cm.text = std::string(content.substr(begin, i - begin));
      // A stack of full-line comments is one comment run: a multi-line
      // rationale or allow directive covers the statement under the run.
      // Only a comment that *starts* its line extends the run — a trailing
      // `code; // note` begins a new one.
      if (at_line_start && !out.comments.empty() &&
          !out.comments.back().block &&
          out.comments.back().line_end == cm.line_begin - 1) {
        out.comments.back().text += "\n" + cm.text;
        out.comments.back().line_end = cm.line_end;
      } else {
        out.comments.push_back(std::move(cm));
      }
      continue;
    }

    // Block comment: runs to the first */ regardless of line breaks; C++
    // block comments do not nest, so an inner /* is plain content and the
    // first */ re-opens code (fixture lexer_nonnesting_comment proves it).
    if (c == '/' && peek(1) == '*') {
      Comment cm;
      cm.line_begin = line;
      cm.block = true;
      size_t begin = i + 2;
      i += 2;
      while (i < n && !(content[i] == '*' && peek(1) == '/')) {
        if (content[i] == '\n') ++line;
        ++i;
      }
      cm.line_end = line;
      cm.text = std::string(content.substr(begin, i >= begin ? i - begin : 0));
      if (i < n) i += 2;  // consume the terminator when present
      out.comments.push_back(std::move(cm));
      continue;
    }

    // String literal (non-raw). Unterminated at end-of-line is closed there:
    // the lexer must be total over arbitrary bytes.
    if (c == '"') {
      size_t begin = ++i;
      while (i < n && content[i] != '"' && content[i] != '\n') {
        if (content[i] == '\\' && i + 1 < n) ++i;  // skip escaped char
        ++i;
      }
      push(TokKind::kString, std::string(content.substr(begin, i - begin)));
      if (i < n && content[i] == '"') ++i;
      continue;
    }

    // Character literal. The number lexer below consumes digit separators
    // (1'000'000) itself, so a bare ' here really starts a literal.
    if (c == '\'') {
      size_t begin = ++i;
      while (i < n && content[i] != '\'' && content[i] != '\n') {
        if (content[i] == '\\' && i + 1 < n) ++i;
        ++i;
      }
      push(TokKind::kChar, std::string(content.substr(begin, i - begin)));
      if (i < n && content[i] == '\'') ++i;
      continue;
    }

    if (IsIdentStart(c)) {
      size_t begin = i;
      while (i < n && IsIdentChar(content[i])) ++i;
      std::string ident(content.substr(begin, i - begin));
      // R"delim(...)delim" — everything to the matching close is content.
      if (i < n && content[i] == '"' && IsRawStringPrefix(ident)) {
        ++i;  // consume the opening quote
        size_t d_begin = i;
        while (i < n && content[i] != '(' && content[i] != '\n') ++i;
        std::string delim(content.substr(d_begin, i - d_begin));
        if (i < n && content[i] == '(') ++i;
        size_t c_begin = i;
        std::string closer = ")" + delim + "\"";
        size_t end = content.find(closer, i);
        size_t c_end = (end == std::string_view::npos) ? n : end;
        int start_line = line;
        for (size_t k = c_begin; k < c_end; ++k) {
          if (content[k] == '\n') ++line;
        }
        out.tokens.push_back(Token{TokKind::kString,
                                   std::string(content.substr(
                                       c_begin, c_end - c_begin)),
                                   start_line});
        i = (end == std::string_view::npos) ? n : end + closer.size();
        continue;
      }
      push(TokKind::kIdent, std::move(ident));
      continue;
    }

    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && std::isdigit(static_cast<unsigned char>(peek(1))))) {
      size_t begin = i;
      ++i;
      while (i < n) {
        char d = content[i];
        if (IsIdentChar(d) || d == '.') {
          // Exponent sign: 1e+5, 0x1p-3.
          if ((d == 'e' || d == 'E' || d == 'p' || d == 'P') &&
              (peek(1) == '+' || peek(1) == '-')) {
            i += 2;
            continue;
          }
          ++i;
          continue;
        }
        if (d == '\'' && IsIdentChar(peek(1))) {  // digit separator
          i += 2;
          continue;
        }
        break;
      }
      push(TokKind::kNumber, std::string(content.substr(begin, i - begin)));
      continue;
    }

    // Punctuation. "::" and "->" matter to the checks (qualified names,
    // member calls), so they come out as single tokens.
    if (c == ':' && peek(1) == ':') {
      push(TokKind::kPunct, "::");
      i += 2;
      continue;
    }
    if (c == '-' && peek(1) == '>') {
      push(TokKind::kPunct, "->");
      i += 2;
      continue;
    }
    push(TokKind::kPunct, std::string(1, c));
    ++i;
  }
  return out;
}

}  // namespace snb_lint

// Heuristic whole-repo call graph over the symbol corpus.
//
// A call site resolves by callee name + arity against every definition the
// corpus knows: candidates whose [min_arity, max_arity] admits the call's
// argument count survive; when the receiver's type was inferred from a
// local/parameter declaration, candidates owned by that type win outright.
// Ambiguity resolves to the *union* of candidates — the effect layer takes
// the union of their summaries, which over-approximates soundly for the
// deadlock checks (an edge that might exist is analyzed as existing).
// Lambdas only join the graph through a direct local invocation of the
// variable they were bound to (`auto f = [..]{..}; f(x);`) — a lambda
// passed to another function is deferred work, not a call (DESIGN.md
// documents the inline-callback blind spot this accepts).

#ifndef SNB_TOOLS_SNB_LINT_CALLGRAPH_H_
#define SNB_TOOLS_SNB_LINT_CALLGRAPH_H_

#include <cstddef>
#include <vector>

#include "symbols.h"

namespace snb_lint {

struct CallGraph {
  /// targets[func][event] — resolved callee ids for the corresponding
  /// Event in Corpus::events[func]; empty for non-call events and for
  /// calls that resolve to nothing in the corpus (std:: and the like).
  std::vector<std::vector<std::vector<size_t>>> targets;
};

CallGraph BuildCallGraph(const Corpus& corpus);

}  // namespace snb_lint

#endif  // SNB_TOOLS_SNB_LINT_CALLGRAPH_H_

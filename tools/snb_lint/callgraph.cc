#include "callgraph.h"

#include <algorithm>

namespace snb_lint {
namespace {

/// Is `candidate` a lambda visible from `caller`? Local lambda names only
/// bind inside the function that defined them (same file, nested range).
bool LambdaVisible(const Corpus& corpus, size_t caller, size_t candidate) {
  const FunctionDef& lam = corpus.funcs[candidate];
  const FunctionDef& from = corpus.funcs[caller];
  return lam.file_index == from.file_index && lam.open > from.open &&
         lam.close < from.close;
}

}  // namespace

CallGraph BuildCallGraph(const Corpus& corpus) {
  CallGraph cg;
  cg.targets.resize(corpus.funcs.size());
  for (size_t id = 0; id < corpus.funcs.size(); ++id) {
    const std::vector<Event>& events = corpus.events[id];
    cg.targets[id].resize(events.size());
    for (size_t e = 0; e < events.size(); ++e) {
      const Event& ev = events[e];
      if (ev.kind != EvKind::kCall) continue;
      auto it = corpus.by_name.find(ev.callee);
      if (it == corpus.by_name.end()) continue;
      std::vector<size_t> arity_ok;
      for (size_t cand : it->second) {
        const FunctionDef& def = corpus.funcs[cand];
        if (ev.arity < def.min_arity || ev.arity > def.max_arity) continue;
        if (def.is_lambda && !LambdaVisible(corpus, id, cand)) continue;
        arity_ok.push_back(cand);
      }
      if (arity_ok.empty()) continue;
      // Receiver-typed preference: `pool.Submit(...)` with `ThreadPool&
      // pool` in scope binds to ThreadPool::Submit and nothing else. The
      // symbol layer stores receiver *names*; the owning-type mapping
      // lives in the events themselves via `receiver_type` below — here we
      // prefer candidates whose owner matches the recorded receiver type.
      if (!ev.receiver_type.empty()) {
        std::vector<size_t> typed;
        for (size_t cand : arity_ok) {
          if (corpus.funcs[cand].owner == ev.receiver_type) {
            typed.push_back(cand);
          }
        }
        if (!typed.empty()) {
          cg.targets[id][e] = std::move(typed);
          continue;
        }
        // A known receiver type with no matching member: the call targets
        // a class the corpus doesn't model — drop rather than fabricate.
        continue;
      }
      cg.targets[id][e] = std::move(arity_ok);
    }
  }
  return cg;
}

}  // namespace snb_lint

// The four interprocedural check families (v3), built on symbols.h /
// callgraph.h / lock_effects.h:
//
//   static-lock-cycle           cycles and level inversions in the static
//                               held→acquired lock-site graph, reported
//                               with the witness call chain on both sides
//   blocking-while-locked-static  CondVar waits, file I/O, and ThreadPool
//                               submission reachable while a lock is held,
//                               unless the (held, blocking) pair is
//                               level-sanctioned (held.level < blocked.level)
//   epoch-escape                raw Graph*/Graph& views derived from a
//                               GraphHandle snapshot escaping the snapshot's
//                               scope (field stores, returns, task-lambda
//                               captures)
//   status-flow                 interprocedural unchecked-status: helpers
//                               that swallow a Status parameter, and locals
//                               whose final Status value is never consulted
//
// Findings flow through the caller-supplied emit callback so checks.cc can
// apply its suppression ledger and ordering; this header deliberately does
// not depend on checks.h.

#ifndef SNB_TOOLS_SNB_LINT_IPA_CHECKS_H_
#define SNB_TOOLS_SNB_LINT_IPA_CHECKS_H_

#include <functional>
#include <string>
#include <vector>

#include "symbols.h"

namespace snb_lint {

/// emit(file_index, line, check, message) — file_index indexes the
/// IpaFile vector handed to RunIpaChecks.
using IpaEmit = std::function<void(size_t, int, const std::string&,
                                   const std::string&)>;
/// enabled(check) — false skips the family (and, when every family is
/// skipped, the corpus build).
using IpaEnabled = std::function<bool(const std::string&)>;

/// Names of the interprocedural check families, for the check catalog.
const std::vector<std::string>& IpaCheckNames();

void RunIpaChecks(const std::vector<IpaFile>& files, const IpaEmit& emit,
                  const IpaEnabled& enabled);

/// Declared lock sites (SNB_LOCK_SITE / SNB_LOCK_LEVEL initializers) found
/// in the corpus — the `--dump-lock-sites` payload the cross-check test
/// compares against src/analysis/lock_site.h's registry.
std::vector<LockSite> CollectDeclaredLockSites(
    const std::vector<IpaFile>& files);

}  // namespace snb_lint

#endif  // SNB_TOOLS_SNB_LINT_IPA_CHECKS_H_

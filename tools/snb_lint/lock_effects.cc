#include "lock_effects.h"

#include <algorithm>

namespace snb_lint {
namespace {

constexpr size_t kMaxPath = 8;

bool IsPoolSubmit(const Corpus& corpus, size_t func) {
  const FunctionDef& f = corpus.funcs[func];
  return f.name == "Submit" && f.owner == "ThreadPool";
}

std::vector<PathStep> Prefixed(size_t caller, int line, size_t callee,
                               const std::vector<PathStep>& tail) {
  std::vector<PathStep> path;
  path.push_back(PathStep{caller, line, callee});
  for (const PathStep& s : tail) {
    if (path.size() >= kMaxPath) break;
    path.push_back(s);
  }
  return path;
}

std::vector<Summary> Fixpoint(const Corpus& corpus, const CallGraph& cg) {
  const size_t n = corpus.funcs.size();
  std::vector<Summary> sums(n);
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t f = 0; f < n; ++f) {
      const std::vector<Event>& events = corpus.events[f];
      for (size_t e = 0; e < events.size(); ++e) {
        const Event& ev = events[e];
        switch (ev.kind) {
          case EvKind::kAcquire:
            if (ev.site != kNoSite && !sums[f].acquires.count(ev.site)) {
              sums[f].acquires[ev.site] = AcqEffect{ev.site, f, ev.line, {}};
              changed = true;
            }
            break;
          case EvKind::kWait: {
            const LockSite* s = corpus.SiteOf(ev.site);
            std::string key = "wait:" + (s ? s->name : "?");
            if (!sums[f].blocks.count(key)) {
              sums[f].blocks[key] = BlockEffect{
                  BlockKind::kWaitOn, ev.site, "CondVar wait", f, ev.line,
                  {}};
              changed = true;
            }
            break;
          }
          case EvKind::kIo: {
            std::string key = "io:" + ev.callee;
            if (!sums[f].blocks.count(key)) {
              sums[f].blocks[key] = BlockEffect{
                  BlockKind::kIo, kNoSite, ev.callee, f, ev.line, {}};
              changed = true;
            }
            break;
          }
          case EvKind::kCall:
            for (size_t g : cg.targets[f][e]) {
              // Snapshot the callee's entries: with recursion f may equal
              // g, and we must not iterate a map we're inserting into.
              std::vector<AcqEffect> acqs;
              std::vector<std::pair<std::string, BlockEffect>> blks;
              for (const auto& [site, eff] : sums[g].acquires) {
                acqs.push_back(eff);
              }
              for (const auto& [key, eff] : sums[g].blocks) {
                blks.emplace_back(key, eff);
              }
              for (const AcqEffect& eff : acqs) {
                if (sums[f].acquires.count(eff.site)) continue;
                AcqEffect lifted = eff;
                lifted.path = Prefixed(f, ev.line, g, eff.path);
                sums[f].acquires[eff.site] = std::move(lifted);
                changed = true;
              }
              for (const auto& [key, eff] : blks) {
                if (sums[f].blocks.count(key)) continue;
                BlockEffect lifted = eff;
                lifted.path = Prefixed(f, ev.line, g, eff.path);
                sums[f].blocks[key] = std::move(lifted);
                changed = true;
              }
              // Submitting to a pool can block on the pool's queue mutex:
              // model a direct Submit call as a blocking op on every site
              // Submit itself acquires.
              if (IsPoolSubmit(corpus, g)) {
                for (const AcqEffect& eff : acqs) {
                  std::string key = "submit:" +
                                    (corpus.SiteOf(eff.site)
                                         ? corpus.SiteOf(eff.site)->name
                                         : "?");
                  if (sums[f].blocks.count(key)) continue;
                  sums[f].blocks[key] = BlockEffect{
                      BlockKind::kSubmit, eff.site, "ThreadPool::Submit", f,
                      ev.line,
                      {}};
                  changed = true;
                }
              }
            }
            break;
        }
      }
    }
  }
  return sums;
}

}  // namespace

LockEffects ComputeLockEffects(const Corpus& corpus, const CallGraph& cg) {
  LockEffects out;
  out.summaries = Fixpoint(corpus, cg);
  // Enumerate hold ranges: events are in token order, so everything after
  // an acquire with tok <= scope_end happens while the lock is held.
  for (size_t f = 0; f < corpus.funcs.size(); ++f) {
    const std::vector<Event>& events = corpus.events[f];
    for (size_t a = 0; a < events.size(); ++a) {
      const Event& held = events[a];
      if (held.kind != EvKind::kAcquire || held.site == kNoSite) continue;
      for (size_t e = a + 1; e < events.size(); ++e) {
        const Event& ev = events[e];
        if (ev.tok > held.scope_end) break;
        switch (ev.kind) {
          case EvKind::kAcquire:
            if (ev.site != kNoSite) {
              out.edges.push_back(HeldEdge{
                  held.site, f, held.line,
                  AcqEffect{ev.site, f, ev.line, {}}});
            }
            break;
          case EvKind::kWait:
            // Waiting on the held mutex itself releases it for the wait's
            // duration — that is the CondVar contract, not a hazard.
            if (ev.site != kNoSite && ev.site != held.site) {
              out.hazards.push_back(BlockHazard{
                  held.site, f, held.line,
                  BlockEffect{BlockKind::kWaitOn, ev.site, "CondVar wait",
                              f, ev.line,
                              {}}});
            }
            break;
          case EvKind::kIo:
            out.hazards.push_back(BlockHazard{
                held.site, f, held.line,
                BlockEffect{BlockKind::kIo, kNoSite, ev.callee, f, ev.line,
                            {}}});
            break;
          case EvKind::kCall:
            for (size_t g : cg.targets[f][e]) {
              for (const auto& [site, eff] : out.summaries[g].acquires) {
                AcqEffect lifted = eff;
                lifted.path = Prefixed(f, ev.line, g, eff.path);
                out.edges.push_back(
                    HeldEdge{held.site, f, held.line, std::move(lifted)});
              }
              for (const auto& [key, eff] : out.summaries[g].blocks) {
                if (eff.kind == BlockKind::kWaitOn &&
                    eff.site == held.site) {
                  continue;  // waits on the held mutex release it
                }
                BlockEffect lifted = eff;
                lifted.path = Prefixed(f, ev.line, g, eff.path);
                out.hazards.push_back(BlockHazard{held.site, f, held.line,
                                                  std::move(lifted)});
              }
              if (IsPoolSubmit(corpus, g)) {
                for (const auto& [site, eff] :
                     out.summaries[g].acquires) {
                  out.hazards.push_back(BlockHazard{
                      held.site, f, held.line,
                      BlockEffect{BlockKind::kSubmit, site,
                                  "ThreadPool::Submit", f, ev.line,
                                  {}}});
                }
              }
            }
            break;
        }
      }
    }
  }
  return out;
}

}  // namespace snb_lint

// Per-TU symbol extraction for the interprocedural layer (v3).
//
// Token-level "symbol table": function definitions (free functions, member
// functions with their owning class, lambdas), declared lock sites
// (SNB_LOCK_SITE / SNB_LOCK_LEVEL strings attached to util::Mutex members
// and locals), and per-function *event streams* — lock acquisitions with
// their static hold range, CondVar waits, blocking file I/O, and call
// sites. The call graph (callgraph.h) and the lock-effect summaries
// (lock_effects.h) are built on top of this table; the four v3 check
// families (ipa_checks.h) consume all three.
//
// Heuristic by design, like the scope model underneath it: where the token
// level cannot decide (an overload set, a receiver of unknown type, a
// callback that may or may not run inline), extraction errs toward *fewer*
// claims — a missed edge is a documented blind spot, a fabricated edge
// would break the zero-findings gate over the shipped tree. DESIGN.md
// "Static analysis v3" carries the blind-spot catalog.

#ifndef SNB_TOOLS_SNB_LINT_SYMBOLS_H_
#define SNB_TOOLS_SNB_LINT_SYMBOLS_H_

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "scopes.h"
#include "token.h"

namespace snb_lint {

inline constexpr size_t kNoSite = static_cast<size_t>(-1);
inline constexpr int kNoLevel = -1;

/// One analysis input file: lexed tokens plus the scope model already built
/// by the per-file check layer (checks.cc owns both).
struct IpaFile {
  const LexedFile* lex = nullptr;
  const ScopeModel* scopes = nullptr;
};

/// A lock-creation site. `declared` sites come from an
/// SNB_LOCK_SITE("name") / SNB_LOCK_LEVEL("name", lvl) initializer — their
/// names match the runtime lock-order graph's. Anonymous mutexes get a
/// synthesized "<Scope>::<var>" site so they still participate in cycle
/// detection, mirroring the dynamic analyzer's lazy per-instance sites.
struct LockSite {
  std::string name;
  int level = kNoLevel;
  bool declared = false;
  std::string file;
  int line = 0;
};

struct ParamInfo {
  std::string name;      // "" when unnamed
  bool is_status = false;  // declared type mentions Status (not StatusOr)
  bool has_default = false;
};

struct FunctionDef {
  std::string file;
  int line = 0;
  std::string name;     // unqualified: "Submit"; lambdas: "<lambda>"
  std::string owner;    // owning class ("ThreadPool"), "" for free/lambda
  std::string display;  // "ThreadPool::Submit", "<lambda>@file:line"
  size_t file_index = 0;
  size_t open = 0;   // token index of the body '{'
  size_t close = 0;  // token index of the matching '}'
  /// Token index of the parameter list's ')' (kNoMatch when the head was
  /// not parsed). The range (params_close, close] covers a constructor's
  /// member-init list, which status-flow must scan for parameter uses.
  size_t params_close = kNoMatch;
  size_t min_arity = 0;
  size_t max_arity = 0;
  bool is_lambda = false;
  /// Local variable a lambda was bound to (`auto run_loop = [...]...`), so
  /// a direct `run_loop(...)` invocation resolves to the lambda's body.
  std::string lambda_local;
  bool returns_status = false;  // return type mentions Status/StatusOr
  std::vector<ParamInfo> params;
};

enum class EvKind {
  kAcquire,  // MutexLock ctor or explicit .Lock(); holds to scope_end
  kWait,     // CondVar::Wait/WaitFor — `site` is the waited mutex's site
  kIo,       // blocking file I/O (fsync/fwrite/...); `callee` is the name
  kCall,     // unresolved call site, resolved later by name+arity
};

struct Event {
  EvKind kind = EvKind::kCall;
  size_t tok = 0;  // token index in the defining file
  int line = 0;
  size_t scope_end = 0;   // kAcquire: last token index of the hold range
  size_t site = kNoSite;  // kAcquire / kWait: lock-site index
  std::string callee;     // kCall: name; kIo: the I/O function
  std::string receiver;   // kCall: last receiver identifier ("" if none)
  /// kCall: the receiver's type when a `T x` / `T& x` local or parameter
  /// declaration pinned it to a mutex-owning class; "" otherwise.
  std::string receiver_type;
  size_t arity = 0;       // kCall
};

/// The whole-corpus symbol table.
struct Corpus {
  std::vector<FunctionDef> funcs;
  std::vector<std::vector<Event>> events;  // parallel to funcs
  std::vector<LockSite> sites;
  /// name -> candidate function ids, for name+arity call resolution.
  std::map<std::string, std::vector<size_t>> by_name;
  /// site name -> site index (declared sites only).
  std::map<std::string, size_t> site_by_name;

  const LockSite* SiteOf(size_t idx) const {
    return idx < sites.size() ? &sites[idx] : nullptr;
  }
};

/// Builds the symbol table over product files (src/ tools/ bench/ —
/// path-scoped exactly like the per-file product checks, so fixtures under
/// virtual src/ paths participate). src/util/mutex.h is skipped: the
/// primitive implementations are modeled as intrinsics, not analyzed.
Corpus BuildCorpus(const std::vector<IpaFile>& files);

}  // namespace snb_lint

#endif  // SNB_TOOLS_SNB_LINT_SYMBOLS_H_

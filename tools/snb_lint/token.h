// Token model for snb_lint (tools/snb_lint/README in DESIGN.md "Static
// analysis v2").
//
// The analyzer is deliberately self-contained: it includes nothing from
// src/ so scripts/lint.sh can bootstrap it with a single compiler
// invocation before any CMake configure has happened.

#ifndef SNB_TOOLS_SNB_LINT_TOKEN_H_
#define SNB_TOOLS_SNB_LINT_TOKEN_H_

#include <string>
#include <vector>

namespace snb_lint {

enum class TokKind {
  kIdent,   // identifiers and keywords (the checks match on text)
  kNumber,  // numeric literals, digit separators included
  kString,  // string literal; text is the content without quotes/prefix
  kChar,    // character literal; text is the content without quotes
  kPunct,   // punctuation; "::" and "->" are single tokens, rest one char
};

struct Token {
  TokKind kind;
  std::string text;
  int line = 1;
};

/// A comment, line or block; block comments record the full line span so
/// adjacency checks (e.g. relaxed-rationale) and snb-lint-allow suppression
/// can reason about multi-line prose.
struct Comment {
  int line_begin = 1;
  int line_end = 1;
  bool block = false;
  std::string text;  // without the // or /* */ delimiters
};

/// One logical preprocessor line (backslash continuations joined), kept
/// verbatim so include-confinement checks can substring it.
struct PPLine {
  int line_begin = 1;
  int line_end = 1;
  std::string text;  // includes the leading '#'
};

struct LexedFile {
  std::string path;  // virtual repo-relative path; decides check policy
  std::vector<Token> tokens;
  std::vector<Comment> comments;
  std::vector<PPLine> pp_lines;
};

}  // namespace snb_lint

#endif  // SNB_TOOLS_SNB_LINT_TOKEN_H_

// snb_lint — token-level repo analyzer. Replaces the grep gates that used
// to live in scripts/lint.sh with parsed checks that cannot be fooled by
// comment boundaries, string literals or scope.
//
//   snb_lint --root <repo>                 # scan src/ tools/ bench/ fuzz/
//                                          # tests/ with per-check policies
//   snb_lint --root <repo> --check <name>  # subset (repeatable)
//   snb_lint --fixture <file>...           # golden-fixture mode: virtual
//                                          # path from `snb-lint-path:`
//   snb_lint --list-checks
//
// Exit codes: 0 clean, 1 findings, 2 usage or I/O error. Findings print as
//   file:line: [check-name] message
// to stdout, one per line, sorted by file then line.

#include <algorithm>
#include <cctype>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "checks.h"
#include "lexer.h"

namespace snb_lint {
namespace {

namespace fs = std::filesystem;

int Usage() {
  std::cerr
      << "usage: snb_lint --root <repo> [--check <name>]...\n"
         "       snb_lint --fixture <file>... [--check <name>]...\n"
         "       snb_lint --list-checks\n";
  return 2;
}

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

/// The scanned trees. tools/snb_lint/ itself is excluded: the analyzer's
/// own sources spell the forbidden patterns as string data ("wal.log",
/// "memory_order_relaxed"), and a tool that has to suppress its own checks
/// to exist teaches suppression as a habit. The compiler gates still cover
/// it like any other TU.
bool ShouldScan(const std::string& rel) {
  if (rel.rfind("tools/snb_lint/", 0) == 0) return false;
  // Golden fixtures are violations on purpose; they run under --fixture
  // with their snb-lint-path virtual locations, never in the repo scan.
  if (rel.rfind("tests/lint_fixtures/", 0) == 0) return false;
  bool in_tree = rel.rfind("src/", 0) == 0 || rel.rfind("tools/", 0) == 0 ||
                 rel.rfind("bench/", 0) == 0 || rel.rfind("fuzz/", 0) == 0 ||
                 rel.rfind("tests/", 0) == 0;
  if (!in_tree) return false;
  return rel.size() > 3 && (rel.compare(rel.size() - 3, 3, ".cc") == 0 ||
                            rel.compare(rel.size() - 2, 2, ".h") == 0);
}

/// Fixture files declare the repo location they impersonate:
///   // snb-lint-path: src/bi/bi02.cc
/// so a committed fixture under tests/lint_fixtures/ can exercise a check
/// that only applies inside, say, the BI kernel tree.
std::string VirtualPath(const LexedFile& lexed, const std::string& fallback) {
  constexpr const char* kTag = "snb-lint-path:";
  for (const Comment& c : lexed.comments) {
    size_t pos = c.text.find(kTag);
    if (pos == std::string::npos) continue;
    size_t b = pos + std::strlen(kTag);
    while (b < c.text.size() && (c.text[b] == ' ' || c.text[b] == '\t')) ++b;
    size_t e = b;
    while (e < c.text.size() && !std::isspace(static_cast<unsigned char>(
                                    c.text[e]))) {
      ++e;
    }
    if (e > b) return c.text.substr(b, e - b);
  }
  return fallback;
}

int Run(int argc, char** argv) {
  std::string root;
  std::vector<std::string> fixtures;
  Options opts;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto value = [&](const char* flag) -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "snb_lint: " << flag << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--root") {
      root = value("--root");
    } else if (arg == "--check") {
      opts.only_checks.push_back(value("--check"));
    } else if (arg == "--fixture") {
      fixtures.push_back(value("--fixture"));
    } else if (arg == "--list-checks") {
      for (const std::string& n : CheckNames()) std::cout << n << "\n";
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      Usage();
      return 0;
    } else {
      std::cerr << "snb_lint: unknown argument '" << arg << "'\n";
      return Usage();
    }
  }
  for (const std::string& c : opts.only_checks) {
    bool known = false;
    for (const std::string& n : CheckNames()) known = known || n == c;
    if (!known) {
      std::cerr << "snb_lint: unknown check '" << c
                << "' (see --list-checks)\n";
      return 2;
    }
  }

  std::vector<LexedFile> files;
  // Physical path per corpus entry, for reporting: fixtures report their
  // real on-disk location while being checked under their virtual one.
  std::vector<std::string> physical;

  if (!fixtures.empty()) {
    for (const std::string& f : fixtures) {
      std::string content;
      if (!ReadFile(f, &content)) {
        std::cerr << "snb_lint: cannot read fixture " << f << "\n";
        return 2;
      }
      LexedFile lexed = Lex(f, content);
      std::string vpath =
          VirtualPath(lexed, "src/" + fs::path(f).filename().string());
      lexed.path = vpath;
      files.push_back(std::move(lexed));
      physical.push_back(f);
    }
  } else if (!root.empty()) {
    fs::path base(root);
    if (!fs::is_directory(base)) {
      std::cerr << "snb_lint: --root " << root << " is not a directory\n";
      return 2;
    }
    std::vector<std::string> rels;
    for (const char* tree : {"src", "tools", "bench", "fuzz", "tests"}) {
      fs::path sub = base / tree;
      if (!fs::is_directory(sub)) continue;
      for (const auto& entry : fs::recursive_directory_iterator(sub)) {
        if (!entry.is_regular_file()) continue;
        std::string rel =
            fs::relative(entry.path(), base).generic_string();
        if (ShouldScan(rel)) rels.push_back(rel);
      }
    }
    std::sort(rels.begin(), rels.end());
    for (const std::string& rel : rels) {
      std::string content;
      if (!ReadFile((base / rel).string(), &content)) {
        std::cerr << "snb_lint: cannot read " << rel << "\n";
        return 2;
      }
      files.push_back(Lex(rel, content));
      physical.push_back(rel);
    }
  } else {
    return Usage();
  }

  std::vector<Finding> findings = RunChecks(files, opts);
  // Map virtual paths back to physical ones for fixture reporting.
  for (Finding& f : findings) {
    for (size_t i = 0; i < files.size(); ++i) {
      if (files[i].path == f.file) {
        f.file = physical[i];
        break;
      }
    }
    std::cout << FormatFinding(f) << "\n";
  }
  return findings.empty() ? 0 : 1;
}

}  // namespace
}  // namespace snb_lint

int main(int argc, char** argv) { return snb_lint::Run(argc, argv); }

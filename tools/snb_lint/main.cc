// snb_lint — token-level repo analyzer. Replaces the grep gates that used
// to live in scripts/lint.sh with parsed checks that cannot be fooled by
// comment boundaries, string literals or scope.
//
//   snb_lint --root <repo>                 # scan src/ tools/ bench/ fuzz/
//                                          # tests/ with per-check policies
//   snb_lint --root <repo> --check <name>  # subset (repeatable)
//   snb_lint --root <repo> --format=json   # machine-readable findings
//   snb_lint --root <repo> --changed-only  # report only files touched per
//                                          # git; analysis stays whole-repo
//   snb_lint --root <repo> --dump-lock-sites  # declared SNB_LOCK_SITE /
//                                          # SNB_LOCK_LEVEL registrations
//   snb_lint --fixture <file>...           # golden-fixture mode: virtual
//                                          # path from `snb-lint-path:`
//   snb_lint --list-checks
//
// Exit codes: 0 clean, 1 findings, 2 usage or I/O error. Text findings
// print as
//   file:line: [check-name] message
// to stdout, one per line, sorted by file then line; suppressed findings
// are omitted. --format=json emits every finding (including suppressed
// ones, with their suppression state) as a JSON array; the exit code still
// counts only unsuppressed findings.

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "checks.h"
#include "ipa_checks.h"
#include "lexer.h"
#include "scopes.h"

namespace snb_lint {
namespace {

namespace fs = std::filesystem;

int Usage() {
  std::cerr
      << "usage: snb_lint --root <repo> [--check <name>]... "
         "[--format=text|json] [--changed-only]\n"
         "       snb_lint --root <repo> --dump-lock-sites\n"
         "       snb_lint --fixture <file>... [--check <name>]... "
         "[--format=text|json]\n"
         "       snb_lint --list-checks\n";
  return 2;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Files touched per git (worktree vs HEAD, plus untracked), repo-relative.
/// Returns false when git is unavailable or errors — callers fall back to
/// the full report.
bool GitChangedFiles(const std::string& root, std::set<std::string>* out) {
  for (const char* args : {"diff --name-only HEAD",
                           "ls-files --others --exclude-standard"}) {
    std::string cmd =
        "git -C '" + root + "' " + args + " 2>/dev/null";
    FILE* pipe = popen(cmd.c_str(), "r");
    if (pipe == nullptr) return false;
    char buf[4096];
    std::string text;
    while (fgets(buf, sizeof(buf), pipe) != nullptr) text += buf;
    if (pclose(pipe) != 0) return false;
    std::istringstream lines(text);
    std::string line;
    while (std::getline(lines, line)) {
      if (!line.empty()) out->insert(line);
    }
  }
  return true;
}

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

/// The scanned trees. tools/snb_lint/ itself is excluded: the analyzer's
/// own sources spell the forbidden patterns as string data ("wal.log",
/// "memory_order_relaxed"), and a tool that has to suppress its own checks
/// to exist teaches suppression as a habit. The compiler gates still cover
/// it like any other TU.
bool ShouldScan(const std::string& rel) {
  if (rel.rfind("tools/snb_lint/", 0) == 0) return false;
  // Golden fixtures are violations on purpose; they run under --fixture
  // with their snb-lint-path virtual locations, never in the repo scan.
  if (rel.rfind("tests/lint_fixtures/", 0) == 0) return false;
  bool in_tree = rel.rfind("src/", 0) == 0 || rel.rfind("tools/", 0) == 0 ||
                 rel.rfind("bench/", 0) == 0 || rel.rfind("fuzz/", 0) == 0 ||
                 rel.rfind("tests/", 0) == 0;
  if (!in_tree) return false;
  return rel.size() > 3 && (rel.compare(rel.size() - 3, 3, ".cc") == 0 ||
                            rel.compare(rel.size() - 2, 2, ".h") == 0);
}

/// Fixture files declare the repo location they impersonate:
///   // snb-lint-path: src/bi/bi02.cc
/// so a committed fixture under tests/lint_fixtures/ can exercise a check
/// that only applies inside, say, the BI kernel tree.
std::string VirtualPath(const LexedFile& lexed, const std::string& fallback) {
  constexpr const char* kTag = "snb-lint-path:";
  for (const Comment& c : lexed.comments) {
    size_t pos = c.text.find(kTag);
    if (pos == std::string::npos) continue;
    size_t b = pos + std::strlen(kTag);
    while (b < c.text.size() && (c.text[b] == ' ' || c.text[b] == '\t')) ++b;
    size_t e = b;
    while (e < c.text.size() && !std::isspace(static_cast<unsigned char>(
                                    c.text[e]))) {
      ++e;
    }
    if (e > b) return c.text.substr(b, e - b);
  }
  return fallback;
}

int Run(int argc, char** argv) {
  std::string root;
  std::vector<std::string> fixtures;
  Options opts;
  bool json = false;
  bool changed_only = false;
  bool dump_lock_sites = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto value = [&](const char* flag) -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "snb_lint: " << flag << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--root") {
      root = value("--root");
    } else if (arg == "--check") {
      opts.only_checks.push_back(value("--check"));
    } else if (arg == "--fixture") {
      fixtures.push_back(value("--fixture"));
    } else if (arg == "--format") {
      arg = "--format=" + value("--format");
    } else if (arg == "--changed-only") {
      changed_only = true;
    } else if (arg == "--dump-lock-sites") {
      dump_lock_sites = true;
    } else if (arg == "--list-checks") {
      for (const std::string& n : CheckNames()) std::cout << n << "\n";
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      Usage();
      return 0;
    } else if (arg.rfind("--format=", 0) != 0) {
      std::cerr << "snb_lint: unknown argument '" << arg << "'\n";
      return Usage();
    }
    if (arg.rfind("--format=", 0) == 0) {
      std::string fmt = arg.substr(std::strlen("--format="));
      if (fmt == "json") {
        json = true;
      } else if (fmt == "text") {
        json = false;
      } else {
        std::cerr << "snb_lint: unknown format '" << fmt << "'\n";
        return Usage();
      }
    }
  }
  for (const std::string& c : opts.only_checks) {
    bool known = false;
    for (const std::string& n : CheckNames()) known = known || n == c;
    if (!known) {
      std::cerr << "snb_lint: unknown check '" << c
                << "' (see --list-checks)\n";
      return 2;
    }
  }

  std::vector<LexedFile> files;
  // Physical path per corpus entry, for reporting: fixtures report their
  // real on-disk location while being checked under their virtual one.
  std::vector<std::string> physical;

  if (!fixtures.empty()) {
    for (const std::string& f : fixtures) {
      std::string content;
      if (!ReadFile(f, &content)) {
        std::cerr << "snb_lint: cannot read fixture " << f << "\n";
        return 2;
      }
      LexedFile lexed = Lex(f, content);
      std::string vpath =
          VirtualPath(lexed, "src/" + fs::path(f).filename().string());
      lexed.path = vpath;
      files.push_back(std::move(lexed));
      physical.push_back(f);
    }
  } else if (!root.empty()) {
    fs::path base(root);
    if (!fs::is_directory(base)) {
      std::cerr << "snb_lint: --root " << root << " is not a directory\n";
      return 2;
    }
    std::vector<std::string> rels;
    for (const char* tree : {"src", "tools", "bench", "fuzz", "tests"}) {
      fs::path sub = base / tree;
      if (!fs::is_directory(sub)) continue;
      for (const auto& entry : fs::recursive_directory_iterator(sub)) {
        if (!entry.is_regular_file()) continue;
        std::string rel =
            fs::relative(entry.path(), base).generic_string();
        if (ShouldScan(rel)) rels.push_back(rel);
      }
    }
    std::sort(rels.begin(), rels.end());
    for (const std::string& rel : rels) {
      std::string content;
      if (!ReadFile((base / rel).string(), &content)) {
        std::cerr << "snb_lint: cannot read " << rel << "\n";
        return 2;
      }
      files.push_back(Lex(rel, content));
      physical.push_back(rel);
    }
  } else {
    return Usage();
  }

  if (dump_lock_sites) {
    // name <TAB> level <TAB> file:line — the cross-check test diffs this
    // against the kDeclaredLockLevels registry in src/analysis/lock_site.h.
    std::vector<ScopeModel> models;
    models.reserve(files.size());
    for (const LexedFile& f : files) models.emplace_back(f.tokens);
    std::vector<IpaFile> ipa;
    for (size_t i = 0; i < files.size(); ++i) {
      ipa.push_back(IpaFile{&files[i], &models[i]});
    }
    for (const LockSite& s : CollectDeclaredLockSites(ipa)) {
      std::cout << s.name << "\t" << s.level << "\t" << s.file << ":"
                << s.line << "\n";
    }
    return 0;
  }

  std::vector<Finding> findings = RunChecks(files, opts);
  // Map virtual paths back to physical ones for fixture reporting.
  for (Finding& f : findings) {
    for (size_t i = 0; i < files.size(); ++i) {
      if (files[i].path == f.file) {
        f.file = physical[i];
        break;
      }
    }
  }

  if (changed_only && !root.empty()) {
    // The corpus (and so the call graph behind the interprocedural
    // checks) is always whole-repo; --changed-only narrows what gets
    // *reported*. A changed header invalidates summaries anywhere, so any
    // .h in the change set falls back to the full report — as does a tree
    // that git cannot describe.
    std::set<std::string> changed;
    bool header_changed = false;
    if (GitChangedFiles(root, &changed)) {
      for (const std::string& c : changed) {
        if (c.size() > 2 && c.compare(c.size() - 2, 2, ".h") == 0) {
          header_changed = true;
          break;
        }
      }
      if (!header_changed) {
        std::vector<Finding> kept;
        for (Finding& f : findings) {
          if (changed.count(f.file)) kept.push_back(std::move(f));
        }
        findings = std::move(kept);
      }
    }
  }

  size_t unsuppressed = 0;
  for (const Finding& f : findings) {
    if (!f.suppressed) ++unsuppressed;
  }

  if (json) {
    std::cout << "[";
    bool first = true;
    for (const Finding& f : findings) {
      std::cout << (first ? "\n" : ",\n")
                << "  {\"check\": \"" << JsonEscape(f.check)
                << "\", \"file\": \"" << JsonEscape(f.file)
                << "\", \"line\": " << f.line << ", \"message\": \""
                << JsonEscape(f.message)
                << "\", \"suppressed\": " << (f.suppressed ? "true" : "false")
                << "}";
      first = false;
    }
    std::cout << (first ? "]\n" : "\n]\n");
  } else {
    for (const Finding& f : findings) {
      if (!f.suppressed) std::cout << FormatFinding(f) << "\n";
    }
  }
  return unsuppressed == 0 ? 0 : 1;
}

}  // namespace
}  // namespace snb_lint

int main(int argc, char** argv) { return snb_lint::Run(argc, argv); }

#include "ipa_checks.h"

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <tuple>

#include "callgraph.h"
#include "lock_effects.h"

namespace snb_lint {
namespace {

constexpr char kStaticLockCycle[] = "static-lock-cycle";
constexpr char kBlockingWhileLocked[] = "blocking-while-locked-static";
constexpr char kEpochEscape[] = "epoch-escape";
constexpr char kStatusFlow[] = "status-flow";

bool IsIdent(const Token& t, std::string_view s) {
  return t.kind == TokKind::kIdent && t.text == s;
}
bool IsPunct(const Token& t, std::string_view s) {
  return t.kind == TokKind::kPunct && t.text == s;
}

std::string SiteName(const Corpus& c, size_t idx) {
  const LockSite* s = c.SiteOf(idx);
  return s ? s->name : "?";
}

std::string At(const Corpus& c, size_t func, int line) {
  return c.funcs[func].file + ":" + std::to_string(line);
}

/// Renders one side of a witness: the holder, the call chain, and the
/// terminal acquisition.
std::string Chain(const Corpus& c, size_t holder, int hold_line,
                  const AcqEffect& acq) {
  std::string s =
      c.funcs[holder].display + " (" + At(c, holder, hold_line) + ")";
  for (const PathStep& step : acq.path) {
    s += " -> calls " + c.funcs[step.callee].display + " (" +
         At(c, step.caller, step.line) + ")";
  }
  s += " -> acquires '" + SiteName(c, acq.site) + "' (" +
       At(c, acq.func, acq.line) + ")";
  return s;
}

std::string BlockChain(const Corpus& c, size_t holder, int hold_line,
                       const BlockEffect& b, const std::string& op) {
  std::string s =
      c.funcs[holder].display + " (" + At(c, holder, hold_line) + ")";
  for (const PathStep& step : b.path) {
    s += " -> calls " + c.funcs[step.callee].display + " (" +
         At(c, step.caller, step.line) + ")";
  }
  s += " -> " + op + " (" + At(c, b.func, b.line) + ")";
  return s;
}

// --------------------------------------------------------------------------
// static-lock-cycle
// --------------------------------------------------------------------------

void CheckStaticLockCycle(const Corpus& c, const LockEffects& fx,
                          const IpaEmit& emit) {
  // Site-level adjacency with the first witness edge per (held, acquired).
  std::map<size_t, std::map<size_t, const HeldEdge*>> adj;
  std::set<std::tuple<size_t, size_t, int>> self_seen;
  for (const HeldEdge& e : fx.edges) {
    if (e.held_site == e.acq.site) {
      // Re-acquiring a held (non-reentrant) mutex is an unconditional
      // self-deadlock on any execution that reaches it.
      auto key = std::make_tuple(e.held_site, e.holder, e.hold_line);
      if (self_seen.insert(key).second) {
        emit(c.funcs[e.holder].file_index, e.hold_line, kStaticLockCycle,
             "lock site '" + SiteName(c, e.held_site) +
                 "' may be re-acquired while held: " +
                 Chain(c, e.holder, e.hold_line, e.acq));
      }
      continue;
    }
    auto& slot = adj[e.held_site][e.acq.site];
    if (slot == nullptr || e.acq.path.size() < slot->acq.path.size()) {
      slot = &e;
    }
  }

  // Level inversions: any single edge that runs against declared order.
  std::set<std::pair<size_t, size_t>> inv_seen;
  for (const auto& [held, row] : adj) {
    const LockSite* hs = c.SiteOf(held);
    if (!hs || hs->level == kNoLevel) continue;
    for (const auto& [acq, edge] : row) {
      const LockSite* as = c.SiteOf(acq);
      if (!as || as->level == kNoLevel) continue;
      if (hs->level < as->level) continue;
      if (!inv_seen.insert({held, acq}).second) continue;
      emit(c.funcs[edge->holder].file_index, edge->hold_line,
           kStaticLockCycle,
           "lock level inversion: '" + hs->name + "' (level " +
               std::to_string(hs->level) + ") is held while acquiring '" +
               as->name + "' (level " + std::to_string(as->level) +
               "): " + Chain(c, edge->holder, edge->hold_line, edge->acq));
    }
  }

  // Cycles: DFS with a gray-path stack; each cycle reported once under a
  // rotation-canonical key, with the witness chain for every edge on it.
  std::set<std::vector<size_t>> reported;
  std::map<size_t, int> color;  // 0 white, 1 gray, 2 black
  std::vector<size_t> path;

  std::function<void(size_t)> dfs = [&](size_t u) {
    color[u] = 1;
    path.push_back(u);
    for (const auto& [v, edge] : adj[u]) {
      if (color[v] == 1) {
        auto it = std::find(path.begin(), path.end(), v);
        std::vector<size_t> cyc(it, path.end());
        std::vector<size_t> canon = cyc;
        auto mn = std::min_element(canon.begin(), canon.end());
        std::rotate(canon.begin(), mn, canon.end());
        if (!reported.insert(canon).second) continue;
        std::string names, chains;
        for (size_t k = 0; k < cyc.size(); ++k) {
          size_t a = cyc[k];
          size_t b = cyc[(k + 1) % cyc.size()];
          const HeldEdge* e = adj[a][b];
          names += "'" + SiteName(c, a) + "' -> ";
          chains += std::string(k ? "; " : "") +
                    Chain(c, e->holder, e->hold_line, e->acq);
        }
        names += "'" + SiteName(c, cyc[0]) + "'";
        const HeldEdge* first = adj[cyc[0]][cyc[(1) % cyc.size()]];
        emit(c.funcs[first->holder].file_index, first->hold_line,
             kStaticLockCycle,
             "static lock-order cycle: " + names + "; " + chains);
      } else if (color[v] == 0) {
        dfs(v);
      }
    }
    path.pop_back();
    color[u] = 2;
  };
  for (const auto& [u, row] : adj) {
    if (color[u] == 0) dfs(u);
  }
}

// --------------------------------------------------------------------------
// blocking-while-locked-static
// --------------------------------------------------------------------------

void CheckBlockingWhileLocked(const Corpus& c, const LockEffects& fx,
                              const IpaEmit& emit) {
  std::set<std::string> seen;
  for (const BlockHazard& h : fx.hazards) {
    const LockSite* held = c.SiteOf(h.held_site);
    if (held == nullptr) continue;
    const LockSite* blocked = c.SiteOf(h.block.site);
    // Level sanction: blocking on a strictly higher-level site while
    // holding a lower one follows the declared order — the same rule the
    // dynamic lock graph enforces. I/O is never sanctioned.
    if (h.block.kind != BlockKind::kIo && blocked != nullptr &&
        held->level != kNoLevel && blocked->level != kNoLevel &&
        held->level < blocked->level) {
      continue;
    }
    std::string op;
    switch (h.block.kind) {
      case BlockKind::kWaitOn:
        op = "CondVar wait on '" + SiteName(c, h.block.site) + "'";
        break;
      case BlockKind::kIo:
        op = "blocking file I/O " + h.block.what + "()";
        break;
      case BlockKind::kSubmit:
        op = "ThreadPool::Submit (may block on '" +
             SiteName(c, h.block.site) + "')";
        break;
    }
    std::string key = std::to_string(h.held_site) + "|" +
                      std::to_string(h.holder) + "|" +
                      std::to_string(h.hold_line) + "|" + op + "|" +
                      At(c, h.block.func, h.block.line);
    if (!seen.insert(key).second) continue;
    emit(c.funcs[h.holder].file_index, h.hold_line, kBlockingWhileLocked,
         op + " is reachable while lock site '" + held->name +
             "' is held: " +
             BlockChain(c, h.holder, h.hold_line, h.block, op));
  }
}

// --------------------------------------------------------------------------
// epoch-escape
// --------------------------------------------------------------------------

/// Start of the statement-ish chunk containing i: the token after the
/// nearest preceding ';', '{' or '}'.
size_t StmtBegin(const std::vector<Token>& t, size_t i, size_t lo) {
  while (i > lo) {
    const Token& p = t[i - 1];
    if (p.kind == TokKind::kPunct &&
        (p.text == ";" || p.text == "{" || p.text == "}")) {
      break;
    }
    --i;
  }
  return i;
}

size_t StmtEnd(const std::vector<Token>& t, size_t i, size_t hi) {
  while (i < hi) {
    const Token& p = t[i];
    if (p.kind == TokKind::kPunct &&
        (p.text == ";" || p.text == "{" || p.text == "}")) {
      break;
    }
    ++i;
  }
  return i;
}

/// First top-level '=' (assignment, not '==' / '<=' / ...) in [b, e).
size_t TopLevelAssign(const std::vector<Token>& t, size_t b, size_t e) {
  int depth = 0;
  for (size_t i = b; i < e; ++i) {
    if (t[i].kind != TokKind::kPunct) continue;
    const std::string& p = t[i].text;
    if (p == "(" || p == "[" || p == "{" || p == "<") ++depth;
    if (p == ")" || p == "]" || p == "}" || p == ">") --depth;
    if (p != "=" || depth != 0) continue;
    if (i + 1 < e && IsPunct(t[i + 1], "=")) {
      ++i;  // '==' comparison
      continue;
    }
    if (i > b && t[i - 1].kind == TokKind::kPunct) {
      const std::string& q = t[i - 1].text;
      if (q == "<" || q == ">" || q == "!" || q == "=" || q == "+" ||
          q == "-" || q == "*" || q == "/" || q == "&" || q == "|" ||
          q == "^") {
        continue;  // compound / comparison operator
      }
    }
    return i;
  }
  return kNoMatch;
}

/// Does [b, e) declare a raw view type — `Graph`/`auto` (optionally
/// const-qualified) followed by '*' or '&'?
bool RawViewDecl(const std::vector<Token>& t, size_t b, size_t e) {
  for (size_t i = b; i < e; ++i) {
    if (!(IsIdent(t[i], "Graph") || IsIdent(t[i], "auto"))) continue;
    for (size_t j = i + 1; j < e && j <= i + 3; ++j) {
      if (IsIdent(t[j], "const")) continue;
      if (IsPunct(t[j], "*") || IsPunct(t[j], "&")) return true;
      break;
    }
  }
  return false;
}

/// No unmatched '(' between anchor and expr: the expression is the
/// statement's top-level value, not an argument of some call — arguments
/// live for the full expression, so inline views passed to calls are safe.
bool TopLevelFrom(const std::vector<Token>& t, size_t anchor, size_t expr) {
  int depth = 0;
  for (size_t i = anchor + 1; i < expr; ++i) {
    if (IsPunct(t[i], "(")) ++depth;
    if (IsPunct(t[i], ")")) --depth;
  }
  return depth <= 0;
}

/// Is the LHS a field store — `name_ = ...` or `this->name = ...`?
bool FieldStore(const std::vector<Token>& t, size_t b, size_t e) {
  if (e <= b) return false;
  for (size_t i = b; i < e; ++i) {
    if (IsIdent(t[i], "this")) return true;
  }
  const Token& last = t[e - 1];
  return last.kind == TokKind::kIdent && !last.text.empty() &&
         last.text.back() == '_';
}

std::string LastIdent(const std::vector<Token>& t, size_t b, size_t e) {
  for (size_t i = e; i-- > b;) {
    if (t[i].kind == TokKind::kIdent) return t[i].text;
  }
  return "";
}

void CheckEpochEscape(const std::vector<IpaFile>& files, const Corpus& c,
                      const IpaEmit& emit) {
  for (size_t id = 0; id < c.funcs.size(); ++id) {
    const FunctionDef& f = c.funcs[id];
    const auto& t = files[f.file_index].lex->tokens;
    const ScopeModel& scopes = *files[f.file_index].scopes;

    std::vector<std::pair<size_t, size_t>> nested;
    for (size_t other = 0; other < c.funcs.size(); ++other) {
      const FunctionDef& g = c.funcs[other];
      if (other != id && g.file_index == f.file_index && g.open > f.open &&
          g.close < f.close) {
        nested.emplace_back(g.open, g.close);
      }
    }
    auto in_nested = [&](size_t i) {
      for (auto [b, e] : nested) {
        if (i > b && i < e) return true;
      }
      return false;
    };

    std::set<std::string> snapshots;   // named shared_ptr snapshots
    std::set<std::string> raw_views;   // raw Graph&/Graph* over a snapshot

    for (size_t i = f.open + 1; i < f.close; ++i) {
      if (in_nested(i)) continue;
      if (t[i].kind != TokKind::kIdent) continue;

      // ---- GraphHandle::Current() uses -------------------------------
      // Only GraphHandle exposes Current() in this tree; the receiver is
      // matched structurally (.Current() / ->Current()).
      if (t[i].text == "Current" && i + 1 < f.close &&
          IsPunct(t[i + 1], "(") && i > 0 &&
          (IsPunct(t[i - 1], ".") || IsPunct(t[i - 1], "->"))) {
        size_t close = scopes.Match(i + 1);
        if (close == kNoMatch) continue;
        // Receiver chain start: handle.Current(), ctx.handle().Current().
        size_t k = i;
        while (k >= 2 &&
               (IsPunct(t[k - 1], ".") || IsPunct(t[k - 1], "->"))) {
          if (t[k - 2].kind == TokKind::kIdent) {
            k -= 2;
            continue;
          }
          if (IsPunct(t[k - 2], ")")) {
            size_t po = scopes.Match(k - 2);
            if (po != kNoMatch && po > 0 &&
                t[po - 1].kind == TokKind::kIdent) {
              k = po - 1;
              continue;
            }
          }
          break;
        }
        bool deref = k > 0 && IsPunct(t[k - 1], "*");
        bool getter = close + 2 < f.close &&
                      (IsPunct(t[close + 1], ".") ||
                       IsPunct(t[close + 1], "->")) &&
                      IsIdent(t[close + 2], "get");
        size_t sb = StmtBegin(t, i, f.open + 1);
        size_t se = StmtEnd(t, i, f.close);
        size_t expr = deref && k > 0 ? k - 1 : k;
        if (IsIdent(t[sb], "return")) {
          if ((deref || getter) && TopLevelFrom(t, sb, expr)) {
            emit(f.file_index, t[i].line, kEpochEscape,
                 "returns a raw Graph view of a GraphHandle snapshot; the "
                 "temporary shared_ptr dies at the end of the full "
                 "expression — return the shared_ptr snapshot instead");
          }
          continue;
        }
        size_t eq = TopLevelAssign(t, sb, se);
        if (eq == kNoMatch || i < eq) continue;  // inline argument use: ok
        bool top = TopLevelFrom(t, eq, expr);
        if (deref || getter) {
          if (!top) continue;  // argument of a call on the RHS: ok
          if (FieldStore(t, sb, eq)) {
            emit(f.file_index, t[i].line, kEpochEscape,
                 "stores a raw Graph view of a GraphHandle snapshot into a "
                 "field; a refresh can swap and free the snapshot under "
                 "it — store the shared_ptr instead");
          } else if (RawViewDecl(t, sb, eq) ||
                     (getter && !LastIdent(t, sb, eq).empty())) {
            emit(f.file_index, t[i].line, kEpochEscape,
                 "binds a raw Graph view to the temporary snapshot "
                 "returned by Current(); the shared_ptr dies at the end "
                 "of this statement — name the snapshot first, then take "
                 "the view");
          }
        } else if (top && !FieldStore(t, sb, eq)) {
          // `auto snap = handle.Current();` — a named, refcounted
          // snapshot. Raw views over *it* are fine inside its scope.
          std::string name = LastIdent(t, sb, eq);
          if (!name.empty()) snapshots.insert(name);
        }
        continue;
      }

      // ---- escapes of views derived from a *named* snapshot ----------
      if (!snapshots.count(t[i].text) && !raw_views.count(t[i].text)) {
        continue;
      }
      size_t sb = StmtBegin(t, i, f.open + 1);
      size_t se = StmtEnd(t, i, f.close);
      if (sb > i || in_nested(sb)) continue;
      bool is_snapshot = snapshots.count(t[i].text) > 0;
      bool raw_of_snapshot =
          is_snapshot &&
          ((i > 0 && IsPunct(t[i - 1], "*")) ||
           (i + 2 < se &&
            (IsPunct(t[i + 1], ".") || IsPunct(t[i + 1], "->")) &&
            IsIdent(t[i + 2], "get")));
      bool is_raw_view = raw_views.count(t[i].text) > 0;
      if (!raw_of_snapshot && !is_raw_view) continue;
      size_t expr = i > 0 && IsPunct(t[i - 1], "*") ? i - 1 : i;

      if (IsIdent(t[sb], "return")) {
        if (TopLevelFrom(t, sb, expr)) {
          emit(f.file_index, t[i].line, kEpochEscape,
               "returns a raw Graph view that does not outlive the local "
               "snapshot '" + t[i].text +
                   "' — return the shared_ptr snapshot instead");
        }
        continue;
      }
      size_t eq = TopLevelAssign(t, sb, se);
      if (eq == kNoMatch || i < eq) continue;  // plain read: ok
      if (!TopLevelFrom(t, eq, expr)) continue;  // argument use: ok
      if (FieldStore(t, sb, eq)) {
        emit(f.file_index, t[i].line, kEpochEscape,
             "stores a raw Graph view derived from snapshot '" +
                 t[i].text +
                 "' into a field; the snapshot's lifetime ends with its "
                 "scope — store the shared_ptr instead");
      } else if (raw_of_snapshot && RawViewDecl(t, sb, eq)) {
        std::string name = LastIdent(t, sb, eq);
        if (!name.empty()) raw_views.insert(name);  // tracked, not flagged
      }
    }

    // ---- raw views captured by deferred task lambdas -------------------
    if (raw_views.empty()) continue;
    for (size_t other = 0; other < c.funcs.size(); ++other) {
      const FunctionDef& lam = c.funcs[other];
      if (!lam.is_lambda || lam.file_index != f.file_index ||
          lam.open <= f.open || lam.close >= f.close) {
        continue;
      }
      // Capture+body region: from the '[' of the capture list.
      size_t region_begin = lam.open;
      size_t bc = kNoMatch;
      if (lam.open > 0 && IsPunct(t[lam.open - 1], ")")) {
        size_t po = scopes.Match(lam.open - 1);
        if (po != kNoMatch && po > 0 && IsPunct(t[po - 1], "]")) {
          bc = po - 1;
        }
      } else if (lam.open > 0 && IsPunct(t[lam.open - 1], "]")) {
        bc = lam.open - 1;
      }
      if (bc != kNoMatch && scopes.Match(bc) != kNoMatch) {
        region_begin = scopes.Match(bc);
      }
      std::string captured;
      for (size_t i = region_begin; i <= lam.close && i < t.size(); ++i) {
        if (t[i].kind == TokKind::kIdent && raw_views.count(t[i].text)) {
          captured = t[i].text;
          break;
        }
      }
      if (captured.empty()) continue;
      // Deferred only when the lambda is an argument of Submit(...).
      int depth = 0;
      for (size_t j = region_begin; j-- > f.open;) {
        if (IsPunct(t[j], ")")) {
          ++depth;
        } else if (IsPunct(t[j], "(")) {
          if (depth == 0) {
            if (j > 0 && IsIdent(t[j - 1], "Submit")) {
              emit(f.file_index, c.funcs[other].line, kEpochEscape,
                   "raw Graph view '" + captured +
                       "' is captured by a lambda handed to "
                       "ThreadPool::Submit; the snapshot can be swapped "
                       "before the task runs — capture the shared_ptr "
                       "snapshot by value");
            }
            break;
          }
          --depth;
        } else if (IsPunct(t[j], ";") || IsPunct(t[j], "{") ||
                   IsPunct(t[j], "}")) {
          break;
        }
      }
    }
  }
}

// --------------------------------------------------------------------------
// status-flow
// --------------------------------------------------------------------------

/// The callee whose argument list encloses token j, or "".
std::string EnclosingCallee(const std::vector<Token>& t, size_t j,
                            size_t lo) {
  int depth = 0;
  while (j-- > lo) {
    if (t[j].kind != TokKind::kPunct) continue;
    const std::string& p = t[j].text;
    if (p == ")") {
      ++depth;
    } else if (p == "(") {
      if (depth == 0) {
        return (j > 0 && t[j - 1].kind == TokKind::kIdent) ? t[j - 1].text
                                                           : "";
      }
      --depth;
    } else if (p == ";" || p == "{" || p == "}") {
      break;
    }
  }
  return "";
}

void CheckStatusFlow(const std::vector<IpaFile>& files, const Corpus& c,
                     const IpaEmit& emit) {
  // Pass 1: helpers that swallow a Status parameter. The mention scan
  // covers the member-init list too (constructors that store the Status).
  std::map<std::string, size_t> swallowers;  // callee name -> func id
  for (size_t id = 0; id < c.funcs.size(); ++id) {
    const FunctionDef& f = c.funcs[id];
    const auto& t = files[f.file_index].lex->tokens;
    size_t scan_from =
        f.params_close != kNoMatch ? f.params_close + 1 : f.open;
    for (const ParamInfo& p : f.params) {
      if (!p.is_status) continue;
      if (p.name.empty()) {
        emit(f.file_index, f.line, kStatusFlow,
             f.display +
                 " takes an unnamed Status parameter it can never "
                 "examine — accept and check it, or drop the parameter");
        continue;
      }
      bool mentioned = false;
      for (size_t i = scan_from; i < f.close && i < t.size(); ++i) {
        if (IsIdent(t[i], p.name)) {
          mentioned = true;
          break;
        }
      }
      if (!mentioned) {
        emit(f.file_index, f.line, kStatusFlow,
             f.display + " never examines its Status parameter '" +
                 p.name +
                 "' — callers' errors are silently dropped here; check "
                 "it, return it, or document the drop with an allow");
        if (!f.is_lambda && !f.name.empty()) {
          swallowers.emplace(f.name, id);
        }
      }
    }
  }

  // Pass 2: locals whose final Status value is never consulted, and
  // locals whose value is handed to a known swallower. Branch-insensitive
  // on purpose: only the *last* write with no following read fires, so
  // `if (a) st = X(); else st = Y(); return st;` stays clean.
  for (size_t id = 0; id < c.funcs.size(); ++id) {
    const FunctionDef& f = c.funcs[id];
    const auto& t = files[f.file_index].lex->tokens;
    const ScopeModel& scopes = *files[f.file_index].scopes;

    std::vector<std::pair<size_t, size_t>> nested;
    for (size_t other = 0; other < c.funcs.size(); ++other) {
      const FunctionDef& g = c.funcs[other];
      if (other != id && g.file_index == f.file_index && g.open > f.open &&
          g.close < f.close) {
        nested.emplace_back(g.open, g.close);
      }
    }
    auto in_nested = [&](size_t i) {
      for (auto [b, e] : nested) {
        if (i > b && i < e) return true;
      }
      return false;
    };
    // Local-struct bodies are class scopes nested in the function: field
    // declarations there are not locals.
    auto in_local_class = [&](size_t i) {
      for (const auto& cls : scopes.classes()) {
        if (cls.open > f.open && cls.close < f.close && i > cls.open &&
            i < cls.close) {
          return true;
        }
      }
      return false;
    };

    for (size_t i = f.open + 1; i + 2 < f.close; ++i) {
      if (in_nested(i) || in_local_class(i)) continue;
      if (!IsIdent(t[i], "Status")) continue;
      if (i + 1 < f.close && IsPunct(t[i + 1], "::")) continue;  // Status::Ok
      if (t[i + 1].kind != TokKind::kIdent) continue;
      bool assigned = IsPunct(t[i + 2], "=") &&
                      !(i + 3 < f.close && IsPunct(t[i + 3], "="));
      if (!assigned && !IsPunct(t[i + 2], ";")) continue;
      const std::string name = t[i + 1].text;

      bool pending = true;
      int last_write_line = t[i + 1].line;
      for (size_t j = i + 3; j < f.close; ++j) {
        if (!IsIdent(t[j], name)) continue;
        if (j > 0 &&
            (IsPunct(t[j - 1], ".") || IsPunct(t[j - 1], "->"))) {
          continue;  // member of some other object, not this local
        }
        bool write = j + 1 < f.close && IsPunct(t[j + 1], "=") &&
                     !(j + 2 < f.close && IsPunct(t[j + 2], "="));
        if (write) {
          pending = true;
          last_write_line = t[j].line;
          continue;
        }
        if (!in_nested(j)) {
          std::string callee = EnclosingCallee(t, j, f.open);
          auto sw = swallowers.find(callee);
          if (sw != swallowers.end()) {
            emit(f.file_index, t[j].line, kStatusFlow,
                 "Status '" + name + "' is handed to '" +
                     c.funcs[sw->second].display +
                     "', which never examines its Status parameter — the "
                     "error is dropped across the call boundary");
          }
        }
        pending = false;
      }
      if (pending) {
        emit(f.file_index, last_write_line, kStatusFlow,
             "the Status assigned to '" + name +
                 "' here is never consulted — check it, return it, or "
                 "discard it explicitly with (void) and an allow");
      }
    }
  }
}

}  // namespace

const std::vector<std::string>& IpaCheckNames() {
  static const std::vector<std::string> names = {
      kStaticLockCycle, kBlockingWhileLocked, kEpochEscape, kStatusFlow};
  return names;
}

void RunIpaChecks(const std::vector<IpaFile>& files, const IpaEmit& emit,
                  const IpaEnabled& enabled) {
  const bool want_cycle = enabled(kStaticLockCycle);
  const bool want_block = enabled(kBlockingWhileLocked);
  const bool want_epoch = enabled(kEpochEscape);
  const bool want_status = enabled(kStatusFlow);
  if (!want_cycle && !want_block && !want_epoch && !want_status) return;

  Corpus corpus = BuildCorpus(files);
  if (want_cycle || want_block) {
    CallGraph cg = BuildCallGraph(corpus);
    LockEffects fx = ComputeLockEffects(corpus, cg);
    if (want_cycle) CheckStaticLockCycle(corpus, fx, emit);
    if (want_block) CheckBlockingWhileLocked(corpus, fx, emit);
  }
  if (want_epoch) CheckEpochEscape(files, corpus, emit);
  if (want_status) CheckStatusFlow(files, corpus, emit);
}

std::vector<LockSite> CollectDeclaredLockSites(
    const std::vector<IpaFile>& files) {
  Corpus corpus = BuildCorpus(files);
  std::vector<LockSite> out;
  for (const LockSite& s : corpus.sites) {
    if (s.declared) out.push_back(s);
  }
  std::sort(out.begin(), out.end(),
            [](const LockSite& a, const LockSite& b) {
              return a.name < b.name;
            });
  return out;
}

}  // namespace snb_lint

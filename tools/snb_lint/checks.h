// The snb_lint check families. Every check consumes lexed tokens (never
// raw text), emits structured `file:line: [check-name] message` findings,
// and honors `// snb-lint-allow(check): reason` suppressions on the same
// or the following line. DESIGN.md "Static analysis v2" carries the
// catalog; tests/lint_fixtures/ carries a fires/clean pair per check.

#ifndef SNB_TOOLS_SNB_LINT_CHECKS_H_
#define SNB_TOOLS_SNB_LINT_CHECKS_H_

#include <string>
#include <vector>

#include "token.h"

namespace snb_lint {

struct Finding {
  std::string file;   // the physical file the finding points into
  int line = 0;
  std::string check;
  std::string message;
  /// True when an snb-lint-allow covers the finding. Suppressed findings
  /// are recorded (so --format=json can report the suppression state) but
  /// never printed in text mode and never affect the exit code.
  bool suppressed = false;
};

/// Renders a finding in the one stable diagnostic format every consumer
/// (check.sh, the fixture test, a human grepping CI logs) parses.
std::string FormatFinding(const Finding& f);

struct Options {
  /// Empty = run everything; otherwise only the named checks (suppression
  /// syntax diagnostics always run — a malformed allow is never silent).
  std::vector<std::string> only_checks;
};

/// All check names, in catalog order.
std::vector<std::string> CheckNames();

/// Runs the checks over the corpus. `files` must carry *virtual* repo-
/// relative paths (src/..., tools/..., bench/..., fuzz/..., tests/...) —
/// path prefixes are what scope each check family. Cross-file checks
/// (failpoint-site-unique, the unchecked-status registry) see the whole
/// corpus at once. Findings come back sorted by (file, line, check).
std::vector<Finding> RunChecks(const std::vector<LexedFile>& files,
                               const Options& opts);

}  // namespace snb_lint

#endif  // SNB_TOOLS_SNB_LINT_CHECKS_H_

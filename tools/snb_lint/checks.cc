#include "checks.h"

#include <algorithm>
#include <cctype>
#include <map>
#include <memory>
#include <set>
#include <string_view>

#include "ipa_checks.h"
#include "scopes.h"

namespace snb_lint {
namespace {

// ---------------------------------------------------------------------------
// Small token / path helpers.

bool IsIdent(const Token& t, std::string_view s) {
  return t.kind == TokKind::kIdent && t.text == s;
}
bool IsPunct(const Token& t, std::string_view s) {
  return t.kind == TokKind::kPunct && t.text == s;
}
bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}
bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

/// Product code: the trees whose conventions the analyzer enforces. tests/
/// is deliberately outside — tests arm fail-points, seed corruption and
/// poke internals by design; only failpoint-site-confined looks at them.
bool InProduct(std::string_view p) {
  return StartsWith(p, "src/") || StartsWith(p, "tools/") ||
         StartsWith(p, "bench/");
}

/// src/bi/biNN.cc — the 25 BI kernel translation units.
bool IsBiKernel(std::string_view p) {
  if (!StartsWith(p, "src/bi/bi") || !EndsWith(p, ".cc")) return false;
  std::string_view digits = p.substr(9, p.size() - 9 - 3);
  if (digits.size() != 2) return false;
  return std::isdigit(static_cast<unsigned char>(digits[0])) &&
         std::isdigit(static_cast<unsigned char>(digits[1]));
}

// ---------------------------------------------------------------------------
// Per-file analysis unit: lexed tokens + scope model + parsed suppressions.

struct Suppression {
  std::string check;  // "*" allows any check
  int line_begin;     // suppressed range: [line_begin, line_end + 1]
  int line_end;
};

struct Unit {
  const LexedFile* lex;
  std::unique_ptr<ScopeModel> scopes;
  std::vector<Suppression> allows;
};

class Ctx {
 public:
  Ctx(const std::vector<LexedFile>& files, const Options& opts)
      : opts_(opts) {
    std::set<std::string> names;
    for (const std::string& n : CheckNames()) names.insert(n);
    for (const LexedFile& f : files) {
      Unit u;
      u.lex = &f;
      u.scopes = std::make_unique<ScopeModel>(f.tokens);
      ParseSuppressions(f, names, &u.allows);
      units_.push_back(std::move(u));
    }
  }

  const std::vector<Unit>& units() const { return units_; }

  bool Enabled(std::string_view check) const {
    if (opts_.only_checks.empty()) return true;
    for (const std::string& c : opts_.only_checks) {
      if (c == check) return true;
    }
    return false;
  }

  void Emit(const Unit& u, int line, std::string check, std::string msg) {
    bool suppressed = false;
    for (const Suppression& s : u.allows) {
      if ((s.check == "*" || s.check == check) && line >= s.line_begin &&
          line <= s.line_end + 1) {
        suppressed = true;
        break;
      }
    }
    findings_.push_back(Finding{u.lex->path, line, std::move(check),
                                std::move(msg), suppressed});
  }

  std::vector<Finding> Take() {
    std::sort(findings_.begin(), findings_.end(),
              [](const Finding& a, const Finding& b) {
                if (a.file != b.file) return a.file < b.file;
                if (a.line != b.line) return a.line < b.line;
                return a.check < b.check;
              });
    return std::move(findings_);
  }

 private:
  /// `// snb-lint-allow(check): reason` — the reason is mandatory: an
  /// unexplained suppression is itself a finding (check "suppression"),
  /// as is a name the catalog does not know (typos must not silently
  /// allow nothing).
  void ParseSuppressions(const LexedFile& f, const std::set<std::string>& names,
                         std::vector<Suppression>* out) {
    constexpr std::string_view kTag = "snb-lint-allow";
    for (const Comment& c : f.comments) {
      size_t pos = 0;
      while ((pos = c.text.find(kTag, pos)) != std::string::npos) {
        size_t i = pos + kTag.size();
        pos = i;
        if (i >= c.text.size() || c.text[i] != '(') {
          findings_.push_back(
              {f.path, c.line_begin, "suppression",
               "snb-lint-allow needs the form snb-lint-allow(check): reason"});
          continue;
        }
        size_t close = c.text.find(')', i);
        if (close == std::string::npos) {
          findings_.push_back({f.path, c.line_begin, "suppression",
                               "unterminated snb-lint-allow(check) clause"});
          continue;
        }
        std::string check = c.text.substr(i + 1, close - i - 1);
        if (check != "*" && names.find(check) == names.end()) {
          findings_.push_back({f.path, c.line_begin, "suppression",
                               "unknown check '" + check +
                                   "' in snb-lint-allow (see --list-checks)"});
          continue;
        }
        size_t r = close + 1;
        while (r < c.text.size() && (c.text[r] == ' ' || c.text[r] == '\t')) {
          ++r;
        }
        bool has_reason = r < c.text.size() && c.text[r] == ':';
        if (has_reason) {
          ++r;
          while (r < c.text.size() &&
                 (c.text[r] == ' ' || c.text[r] == '\t')) {
            ++r;
          }
          has_reason = r < c.text.size() &&
                       c.text.find_first_not_of(" \t\r\n", r) !=
                           std::string::npos;
        }
        if (!has_reason) {
          findings_.push_back({f.path, c.line_begin, "suppression",
                               "snb-lint-allow(" + check +
                                   ") carries no ': reason' — say why "
                                   "ignoring is correct"});
          continue;
        }
        out->push_back(Suppression{check, c.line_begin, c.line_end});
      }
    }
  }

  const Options& opts_;
  std::vector<Unit> units_;
  std::vector<Finding> findings_;
};

// ---------------------------------------------------------------------------
// Simple token-pattern checks (the ported grep gates).

void CheckNoRawRandom(Ctx& ctx) {
  for (const Unit& u : ctx.units()) {
    const std::string& p = u.lex->path;
    if (!InProduct(p) || StartsWith(p, "src/datagen/")) continue;
    const auto& t = u.lex->tokens;
    for (size_t i = 0; i + 1 < t.size(); ++i) {
      if (t[i].kind != TokKind::kIdent || !IsPunct(t[i + 1], "(")) continue;
      if (t[i].text == "rand" || t[i].text == "srand" ||
          t[i].text == "random") {
        ctx.Emit(u, t[i].line, "no-raw-random",
                 "call to " + t[i].text +
                     "() — query/bench code draws from seeded util::Rng; "
                     "only src/datagen/ owns its own seeding policy");
      }
    }
  }
}

void CheckNoWallClock(Ctx& ctx) {
  for (const Unit& u : ctx.units()) {
    const std::string& p = u.lex->path;
    if (!InProduct(p) || StartsWith(p, "src/datagen/")) continue;
    const auto& t = u.lex->tokens;
    for (size_t i = 0; i < t.size(); ++i) {
      if (!IsIdent(t[i], "time")) continue;
      bool std_qualified = i >= 2 && IsPunct(t[i - 1], "::") &&
                           IsIdent(t[i - 2], "std");
      bool null_arg = i + 3 < t.size() && IsPunct(t[i + 1], "(") &&
                      (IsIdent(t[i + 2], "nullptr") ||
                       IsIdent(t[i + 2], "NULL")) &&
                      IsPunct(t[i + 3], ")");
      if (std_qualified || null_arg) {
        ctx.Emit(u, t[i].line, "no-wall-clock",
                 "wall-clock std::time — results must not depend on when "
                 "the benchmark ran; timing goes through util/timer");
      }
    }
  }
}

void CheckNoRawSync(Ctx& ctx) {
  static const std::set<std::string> kPrimitives = {
      "mutex",          "recursive_mutex",        "timed_mutex",
      "shared_mutex",   "condition_variable",     "condition_variable_any",
      "lock_guard",     "unique_lock",            "scoped_lock",
      "shared_lock"};
  for (const Unit& u : ctx.units()) {
    const std::string& p = u.lex->path;
    if (!InProduct(p) || p == "src/util/mutex.h") continue;
    const auto& t = u.lex->tokens;
    for (size_t i = 0; i + 2 < t.size(); ++i) {
      if (IsIdent(t[i], "std") && IsPunct(t[i + 1], "::") &&
          t[i + 2].kind == TokKind::kIdent &&
          kPrimitives.count(t[i + 2].text)) {
        ctx.Emit(u, t[i].line, "no-raw-sync",
                 "raw std::" + t[i + 2].text +
                     " — only util::Mutex/MutexLock/CondVar carry the "
                     "clang thread-safety capability attributes");
      }
    }
  }
}

void CheckCondVarConfined(Ctx& ctx) {
  for (const Unit& u : ctx.units()) {
    const std::string& p = u.lex->path;
    if (!InProduct(p) || StartsWith(p, "src/util/") ||
        StartsWith(p, "src/analysis/")) {
      continue;
    }
    for (const Token& tok : u.lex->tokens) {
      if (IsIdent(tok, "CondVar")) {
        ctx.Emit(u, tok.line, "condvar-confined",
                 "util::CondVar outside src/util/ — blocking wait loops "
                 "live in util primitives where the spurious-wakeup "
                 "re-check is reviewed in one place");
      }
    }
  }
}

void CheckFuzzPublicParser(Ctx& ctx) {
  static const std::set<std::string> kEntryPoints = {
      "ScanWal", "ReadCsv", "ParseUpdateEventLine", "DecodeColumnBlock"};
  for (const Unit& u : ctx.units()) {
    const std::string& p = u.lex->path;
    if (!StartsWith(p, "fuzz/fuzz_") || !EndsWith(p, ".cc") ||
        p == "fuzz/fuzz_smoke_main.cc") {
      continue;
    }
    bool drives_entry = false;
    for (const Token& tok : u.lex->tokens) {
      if (tok.kind == TokKind::kIdent && kEntryPoints.count(tok.text)) {
        drives_entry = true;
        break;
      }
    }
    if (!drives_entry) {
      ctx.Emit(u, 1, "fuzz-public-parser",
               "fuzz harness drives no public parser entry point (ScanWal / "
               "ReadCsv / ParseUpdateEventLine / DecodeColumnBlock)");
    }
    for (const PPLine& pp : u.lex->pp_lines) {
      if (pp.text.find(".cc\"") != std::string::npos &&
          pp.text.find("include") != std::string::npos) {
        ctx.Emit(u, pp.line_begin, "fuzz-public-parser",
                 "fuzz harness includes a .cc — it would fuzz a copy of "
                 "the parser, not the shipped one");
      }
    }
    const auto& t = u.lex->tokens;
    for (size_t i = 0; i + 1 < t.size(); ++i) {
      if (IsIdent(t[i], "internal") && IsPunct(t[i + 1], "::")) {
        ctx.Emit(u, t[i].line, "fuzz-public-parser",
                 "fuzz harness reaches into an internal:: namespace — "
                 "harnesses drive public Status-returning parsers only");
      }
    }
  }
}

void CheckCancelPoll(Ctx& ctx) {
  for (const Unit& u : ctx.units()) {
    const std::string& p = u.lex->path;
    if (!IsBiKernel(p)) continue;
    const auto& t = u.lex->tokens;
    bool any_poll = false;
    bool reachable_poll = false;
    int first_poll_line = 0;
    for (size_t i = 0; i + 1 < t.size(); ++i) {
      if (!(IsIdent(t[i], "Tick") || IsIdent(t[i], "PollCancel")) ||
          !IsPunct(t[i + 1], "(")) {
        continue;
      }
      any_poll = true;
      if (first_poll_line == 0) first_poll_line = t[i].line;
      if (u.scopes->InLoopOrLambda(i)) {
        reachable_poll = true;
        break;
      }
    }
    if (!any_poll) {
      ctx.Emit(u, 1, "cancel-poll",
               "BI kernel has no cancellation poll — scheduler deadline "
               "cancellation is cooperative and needs a CancelPoller tick "
               "in the hot loop");
    } else if (!reachable_poll) {
      ctx.Emit(u, first_poll_line, "cancel-poll",
               "cancellation poll is never inside a loop or per-element "
               "callback body — a straight-line poll runs once and the "
               "kernel can still stall its stream");
    }
  }
}

void CheckTopkBound(Ctx& ctx) {
  static const std::set<std::string> kTopKFiles = {
      "src/bi/bi02.cc", "src/bi/bi03.cc", "src/bi/bi06.cc",
      "src/bi/bi12.cc", "src/bi/bi14.cc", "src/bi/parallel.cc"};
  for (const Unit& u : ctx.units()) {
    if (!kTopKFiles.count(u.lex->path)) continue;
    bool consults = false;
    for (const Token& tok : u.lex->tokens) {
      if (IsIdent(tok, "BoundRef") || IsIdent(tok, "CannotPlace")) {
        consults = true;
        break;
      }
    }
    if (!consults) {
      ctx.Emit(u, 1, "topk-bound",
               "top-k kernel never consults engine::BoundRef — the kernel "
               "has silently regressed to the sort-everything plan the "
               "pushdown work exists to beat");
    }
  }
}

void CheckNoRawAtomic(Ctx& ctx) {
  for (const Unit& u : ctx.units()) {
    const std::string& p = u.lex->path;
    if (!StartsWith(p, "src/bi/") || p == "src/bi/cancel.h" ||
        p == "src/bi/cancel.cc") {
      continue;
    }
    const auto& t = u.lex->tokens;
    for (size_t i = 0; i + 2 < t.size(); ++i) {
      if (IsIdent(t[i], "std") && IsPunct(t[i + 1], "::") &&
          (IsIdent(t[i + 2], "atomic") || IsIdent(t[i + 2], "atomic_flag"))) {
        ctx.Emit(u, t[i].line, "no-raw-atomic",
                 "raw std::atomic in query code — cross-slot state goes "
                 "through the reviewed engine/ helpers (BoundRef, "
                 "ScanStats); cancel.h owns the one sanctioned flag");
      }
    }
  }
}

void CheckNoRawAssert(Ctx& ctx) {
  for (const Unit& u : ctx.units()) {
    const std::string& p = u.lex->path;
    if (!InProduct(p) || p == "src/util/check.h") continue;
    const auto& t = u.lex->tokens;
    for (size_t i = 0; i + 1 < t.size(); ++i) {
      if (t[i].kind != TokKind::kIdent || !IsPunct(t[i + 1], "(")) continue;
      if (t[i].text == "assert" || t[i].text == "abort") {
        ctx.Emit(u, t[i].line, "no-raw-assert",
                 "raw " + t[i].text +
                     "() — SNB_CHECK*/SNB_DCHECK print the expression and "
                     "file:line and honor NDEBUG policy");
      }
    }
  }
}

void CheckFailpointSiteConfined(Ctx& ctx) {
  for (const Unit& u : ctx.units()) {
    const std::string& p = u.lex->path;
    bool outside_src = StartsWith(p, "tools/") || StartsWith(p, "bench/") ||
                       StartsWith(p, "tests/") || StartsWith(p, "fuzz/");
    if (!outside_src) continue;
    for (const Token& tok : u.lex->tokens) {
      if (tok.kind == TokKind::kIdent &&
          StartsWith(tok.text, "SNB_FAILPOINT")) {
        ctx.Emit(u, tok.line, "failpoint-site-confined",
                 "SNB_FAILPOINT site macro outside src/ — sites mark "
                 "production code; tests inject through the arming API");
      }
    }
  }
}

void CheckFailpointArmingConfined(Ctx& ctx) {
  static const std::set<std::string> kArmingApi = {
      "Arm", "ArmFromSpecString", "Disarm", "DisarmAll"};
  for (const Unit& u : ctx.units()) {
    const std::string& p = u.lex->path;
    if (!InProduct(p) || p == "src/util/failpoint.h" ||
        p == "src/util/failpoint.cc") {
      continue;
    }
    const auto& t = u.lex->tokens;
    for (size_t i = 0; i + 2 < t.size(); ++i) {
      if (IsIdent(t[i], "failpoint") && IsPunct(t[i + 1], "::") &&
          t[i + 2].kind == TokKind::kIdent && kArmingApi.count(t[i + 2].text)) {
        ctx.Emit(u, t[i].line, "failpoint-arming-confined",
                 "fail-point arming API in shipping code — a binary that "
                 "injects its own failures is a latent outage; arming is "
                 "for tests and the SNB_FAILPOINTS env");
      }
    }
  }
}

void CheckFailpointSiteUnique(Ctx& ctx) {
  std::map<std::string, std::pair<std::string, int>> first_site;
  for (const Unit& u : ctx.units()) {
    const std::string& p = u.lex->path;
    if (!StartsWith(p, "src/")) continue;
    const auto& t = u.lex->tokens;
    for (size_t i = 0; i + 2 < t.size(); ++i) {
      if (t[i].kind != TokKind::kIdent ||
          !StartsWith(t[i].text, "SNB_FAILPOINT") || !IsPunct(t[i + 1], "(") ||
          t[i + 2].kind != TokKind::kString) {
        continue;
      }
      const std::string& name = t[i + 2].text;
      auto [it, inserted] =
          first_site.emplace(name, std::make_pair(p, t[i].line));
      if (!inserted) {
        ctx.Emit(u, t[i].line, "failpoint-site-unique",
                 "duplicate fail-point site \"" + name + "\" (first at " +
                     it->second.first + ":" +
                     std::to_string(it->second.second) +
                     ") — crash-at-every-site loops enumerate the registry "
                     "by name and would test only one of them");
      }
    }
  }
}

void CheckWalConfined(Ctx& ctx) {
  for (const Unit& u : ctx.units()) {
    const std::string& p = u.lex->path;
    if (!InProduct(p) || p == "src/storage/wal.cc") continue;
    for (const Token& tok : u.lex->tokens) {
      if (tok.kind == TokKind::kString &&
          tok.text.find("wal.log") != std::string::npos) {
        ctx.Emit(u, tok.line, "wal-confined",
                 "\"wal.log\" path literal outside src/storage/wal.cc — a "
                 "second opener could break the framing or the torn-tail "
                 "truncation invariant unnoticed");
      }
    }
  }
}

void CheckTestAccessConfined(Ctx& ctx) {
  for (const Unit& u : ctx.units()) {
    const std::string& p = u.lex->path;
    if (!InProduct(p)) continue;
    for (const PPLine& pp : u.lex->pp_lines) {
      if (pp.text.find("include") != std::string::npos &&
          pp.text.find("test_access.h") != std::string::npos) {
        ctx.Emit(u, pp.line_begin, "test-access-confined",
                 "test_access.h included from shipping code — it pierces "
                 "every encapsulation boundary by design and is tests-only");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// unchecked-status: a Status/StatusOr-returning call whose result vanishes.

/// Pass 1 — registry: every function name declared with a Status or
/// StatusOr return type anywhere in the corpus. Token-pattern based, so a
/// `Status st(...)` variable sneaks in as a "function" — harmless, nothing
/// ever calls it as one. Fixtures declare their own functions, which is
/// what makes the fires/clean pairs self-contained.
std::set<std::string> CollectStatusFunctions(Ctx& ctx) {
  std::set<std::string> names;
  for (const Unit& u : ctx.units()) {
    const auto& t = u.lex->tokens;
    for (size_t i = 0; i < t.size(); ++i) {
      if (!(IsIdent(t[i], "Status") || IsIdent(t[i], "StatusOr"))) continue;
      // Expression context — `return Status(...)`, `StatusOr<T>(x)` as a
      // cast, template args — is not a declaration. Walk the qualifier
      // chain (util::, snb::util::) back to the token before the type.
      size_t q = i;
      while (q >= 2 && IsPunct(t[q - 1], "::") &&
             t[q - 2].kind == TokKind::kIdent) {
        q -= 2;
      }
      if (q > 0) {
        const Token& pre = t[q - 1];
        if (pre.kind == TokKind::kIdent &&
            (pre.text == "return" || pre.text == "new" ||
             pre.text == "case")) {
          continue;
        }
        if (pre.kind == TokKind::kPunct &&
            (pre.text == "(" || pre.text == "," || pre.text == "<" ||
             pre.text == "=" || pre.text == "!" || pre.text == "::")) {
          continue;
        }
      }
      size_t k = i + 1;
      if (IsIdent(t[i], "StatusOr")) {
        if (k >= t.size() || !IsPunct(t[k], "<")) continue;
        int depth = 0;
        while (k < t.size()) {
          if (IsPunct(t[k], "<")) ++depth;
          if (IsPunct(t[k], ">") && --depth == 0) break;
          ++k;
        }
        ++k;  // past the closing '>'
      }
      if (k + 1 >= t.size() || t[k].kind != TokKind::kIdent ||
          !IsPunct(t[k + 1], "(")) {
        continue;
      }
      if (t[k].text == "operator") continue;
      names.insert(t[k].text);
    }
  }

  // Pass 2 — disambiguation: a name also declared somewhere with a
  // *non*-Status return type (TopK::Add vs ExternalSorter::Add) is dropped
  // from the registry. The token level cannot resolve which overload a
  // call site binds to; the compiler's [[nodiscard]] on the Status classes
  // covers the ambiguous names exactly, by type. This check owns only the
  // unambiguous ones.
  std::set<std::string> ambiguous;
  static const std::set<std::string> kNotAType = {
      "return", "new",  "delete", "case",   "goto",    "throw",
      "else",   "do",   "co_return", "co_await", "co_yield", "not",
      "sizeof", "alignof"};
  static const std::set<std::string> kNotAName = {
      "if",       "for",      "while",    "switch",   "catch",
      "constexpr", "const",   "noexcept", "decltype", "requires",
      "operator", "final",    "override", "sizeof",   "alignof"};
  for (const Unit& u : ctx.units()) {
    const auto& t = u.lex->tokens;
    for (size_t i = 1; i + 1 < t.size(); ++i) {
      if (t[i].kind != TokKind::kIdent || !IsPunct(t[i + 1], "(")) continue;
      if (!names.count(t[i].text) || kNotAName.count(t[i].text)) continue;
      const Token& pre = t[i - 1];
      bool type_before =
          pre.kind == TokKind::kIdent && !kNotAType.count(pre.text) &&
          pre.text != "Status" && pre.text != "StatusOr";
      if (IsPunct(pre, ">")) {
        // `std::vector<Row> Add(` is a non-Status declaration — but walk
        // the angle group back first: `StatusOr<T> Foo(` ends in '>' too.
        int depth = 0;
        size_t q = i - 1;
        while (true) {
          if (IsPunct(t[q], ">")) ++depth;
          else if (IsPunct(t[q], "<") && --depth == 0) break;
          if (q == 0) break;
          --q;
        }
        type_before = !(q > 0 && IsIdent(t[q - 1], "StatusOr"));
      }
      if (type_before) ambiguous.insert(t[i].text);
    }
  }
  for (const std::string& a : ambiguous) names.erase(a);
  return names;
}

void CheckUncheckedStatus(Ctx& ctx) {
  std::set<std::string> registry = CollectStatusFunctions(ctx);
  for (const Unit& u : ctx.units()) {
    const std::string& p = u.lex->path;
    if (!InProduct(p)) continue;
    const auto& t = u.lex->tokens;
    const ScopeModel& sc = *u.scopes;
    for (size_t i = 0; i < t.size(); ++i) {
      // Statement starts: after ; { } : else do, or after the ')' of an
      // if/for/while condition (braceless body).
      bool stmt_start = i == 0;
      if (!stmt_start) {
        const Token& prev = t[i - 1];
        if (prev.kind == TokKind::kPunct &&
            (prev.text == ";" || prev.text == "{" || prev.text == "}" ||
             prev.text == ":")) {
          stmt_start = true;
        } else if (prev.kind == TokKind::kIdent &&
                   (prev.text == "else" || prev.text == "do")) {
          stmt_start = true;
        } else if (IsPunct(prev, ")") && sc.Match(i - 1) != kNoMatch) {
          size_t open = sc.Match(i - 1);
          if (open > 0 && t[open - 1].kind == TokKind::kIdent &&
              (t[open - 1].text == "if" || t[open - 1].text == "for" ||
               t[open - 1].text == "while")) {
            stmt_start = true;
          }
        }
      }
      if (!stmt_start) continue;

      size_t j = i;
      bool explicit_void = false;
      if (j + 2 < t.size() && IsPunct(t[j], "(") && IsIdent(t[j + 1], "void") &&
          IsPunct(t[j + 2], ")")) {
        explicit_void = true;
        j += 3;
      }
      if (j >= t.size() || t[j].kind != TokKind::kIdent) continue;
      // Chain: ident ((:: | . | ->) ident)* directly followed by '('.
      std::string callee = t[j].text;
      size_t c = j;
      while (c + 2 < t.size() && t[c + 1].kind == TokKind::kPunct &&
             (t[c + 1].text == "::" || t[c + 1].text == "." ||
              t[c + 1].text == "->") &&
             t[c + 2].kind == TokKind::kIdent) {
        c += 2;
        callee = t[c].text;
      }
      if (c + 1 >= t.size() || !IsPunct(t[c + 1], "(")) continue;
      size_t close = sc.Match(c + 1);
      if (close == kNoMatch || close + 1 >= t.size() ||
          !IsPunct(t[close + 1], ";")) {
        continue;
      }
      if (!registry.count(callee)) continue;
      if (explicit_void) {
        ctx.Emit(u, t[j].line, "unchecked-status",
                 "(void)-discarded Status from '" + callee +
                     "' — an explicit discard still needs an adjacent "
                     "snb-lint-allow(unchecked-status): <why ignoring is "
                     "correct>");
      } else {
        ctx.Emit(u, t[j].line, "unchecked-status",
                 "result of Status-returning '" + callee +
                     "' is discarded — a dropped kCorruption during a "
                     "cascade is silent data loss; check it, return it, or "
                     "(void)+snb-lint-allow it");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// relaxed-rationale: every memory_order_relaxed outside the three reviewed
// homes carries an adjacent `// relaxed:` justification.

void CheckRelaxedRationale(Ctx& ctx) {
  static const std::set<std::string> kReviewedHomes = {
      "src/engine/bound.h", "src/storage/scan_stats.h", "src/bi/cancel.h",
      "src/bi/cancel.cc"};
  for (const Unit& u : ctx.units()) {
    const std::string& p = u.lex->path;
    if (!InProduct(p) || kReviewedHomes.count(p)) continue;
    const auto& t = u.lex->tokens;
    for (size_t i = 0; i < t.size(); ++i) {
      const Token& tok = t[i];
      if (!IsIdent(tok, "memory_order_relaxed")) continue;
      // The note may sit above the *statement*, whose first line can be
      // earlier than the token when the call wraps — walk back to the
      // statement boundary to find where "above" starts.
      int stmt_line = tok.line;
      for (size_t j = i; j-- > 0;) {
        if (t[j].kind == TokKind::kPunct &&
            (t[j].text == ";" || t[j].text == "{" || t[j].text == "}")) {
          if (j + 1 < t.size()) stmt_line = t[j + 1].line;
          break;
        }
      }
      bool justified = false;
      for (const Comment& c : u.lex->comments) {
        if (c.text.find("relaxed:") == std::string::npos) continue;
        // Adjacent: on the statement's lines, or a comment (block or line
        // run) ending on the line immediately above the statement.
        if (c.line_begin <= tok.line && c.line_end >= stmt_line - 1) {
          justified = true;
          break;
        }
      }
      if (!justified) {
        ctx.Emit(u, tok.line, "relaxed-rationale",
                 "memory_order_relaxed outside engine/bound.h, "
                 "storage/scan_stats.h and bi/cancel.* needs an adjacent "
                 "'// relaxed: <why this ordering is sufficient>' note");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// guarded-by: mutable fields of classes owning a util::Mutex must carry
// SNB_GUARDED_BY (or an explicit allow with the synchronization story).

struct MemberInfo {
  enum Kind { kSkip, kMethod, kField } kind = kSkip;
  std::string name;
  int line = 0;
  bool is_sync_primitive = false;  // Mutex / CondVar / BlockingCounter
  bool is_atomic = false;
  bool is_const = false;
  bool has_guard = false;
};

MemberInfo ClassifyMember(const std::vector<Token>& t,
                          const MemberStatement& m) {
  MemberInfo info;
  if (m.tokens.empty()) return info;
  const Token& first = t[m.tokens.front()];
  info.line = first.line;
  static const std::set<std::string> kSkipLeads = {
      "public",   "private", "protected", "using",  "typedef", "friend",
      "template", "static",  "constexpr", "enum",   "class",   "struct",
      "union",    "operator", "explicit", "virtual", "inline"};
  if (first.kind == TokKind::kIdent && kSkipLeads.count(first.text)) {
    return info;  // kSkip
  }
  int angle = 0;
  size_t paren_at = kNoMatch;
  for (size_t k = 0; k < m.tokens.size(); ++k) {
    if (IsIdent(t[m.tokens[k]], "operator")) {
      info.kind = MemberInfo::kMethod;  // operator=(const Mutex&) etc.
      return info;
    }
    const Token& tok = t[m.tokens[k]];
    if (tok.kind == TokKind::kPunct) {
      if (tok.text == "<") ++angle;
      if (tok.text == ">" && angle > 0) --angle;
      if (tok.text == "(" && angle == 0 && paren_at == kNoMatch) paren_at = k;
    }
    if (tok.kind != TokKind::kIdent) continue;
    if (angle == 0 && tok.text == "const") info.is_const = true;
    if (tok.text == "Mutex" || tok.text == "CondVar" ||
        tok.text == "BlockingCounter") {
      info.is_sync_primitive = true;
    }
    if (tok.text == "atomic" || tok.text == "atomic_flag") {
      info.is_atomic = true;
    }
    if (tok.text == "SNB_GUARDED_BY" || tok.text == "SNB_PT_GUARDED_BY") {
      info.has_guard = true;
    }
  }
  // A top-level '(' whose left neighbour is a plain identifier (not one of
  // our annotation macros) is a parameter list: a method declaration.
  if (paren_at != kNoMatch && paren_at > 0) {
    const Token& before = t[m.tokens[paren_at - 1]];
    if (before.kind == TokKind::kIdent && !StartsWith(before.text, "SNB_")) {
      info.kind = MemberInfo::kMethod;
      return info;
    }
  }
  // Field name: last identifier before '=', '[', or an SNB_* annotation.
  angle = 0;
  for (size_t k = 0; k < m.tokens.size(); ++k) {
    const Token& tok = t[m.tokens[k]];
    if (tok.kind == TokKind::kPunct) {
      if (tok.text == "<") ++angle;
      if (tok.text == ">" && angle > 0) --angle;
      if (angle == 0 && (tok.text == "=" || tok.text == "[")) break;
    }
    if (angle == 0 && tok.kind == TokKind::kIdent) {
      if (StartsWith(tok.text, "SNB_")) break;
      static const std::set<std::string> kNotNames = {
          "const", "mutable", "volatile", "unsigned", "signed", "long",
          "short", "int",     "bool",     "char",     "float",  "double",
          "auto",  "void",    "size_t"};
      if (!kNotNames.count(tok.text)) info.name = tok.text;
    }
  }
  info.kind = MemberInfo::kField;
  return info;
}

void CheckGuardedBy(Ctx& ctx) {
  for (const Unit& u : ctx.units()) {
    const std::string& p = u.lex->path;
    if (!InProduct(p)) continue;
    for (const ScopeModel::ClassScope& cls : u.scopes->classes()) {
      std::vector<MemberStatement> members =
          SplitMembers(u.lex->tokens, *u.scopes, cls);
      bool owns_mutex = false;
      for (const MemberStatement& m : members) {
        if (m.had_body) continue;
        MemberInfo info = ClassifyMember(u.lex->tokens, m);
        if (info.kind == MemberInfo::kField && info.is_sync_primitive) {
          // Only an owned Mutex establishes the guarding obligation;
          // CondVar/BlockingCounter alone do not guard data.
          for (size_t idx : m.tokens) {
            if (IsIdent(u.lex->tokens[idx], "Mutex")) {
              owns_mutex = true;
              break;
            }
          }
        }
      }
      if (!owns_mutex) continue;
      for (const MemberStatement& m : members) {
        if (m.had_body) continue;
        MemberInfo info = ClassifyMember(u.lex->tokens, m);
        if (info.kind != MemberInfo::kField) continue;
        if (info.is_sync_primitive || info.is_atomic || info.is_const ||
            info.has_guard) {
          continue;
        }
        std::string cls_name = cls.name.empty() ? "(anonymous)" : cls.name;
        ctx.Emit(u, info.line, "guarded-by",
                 "field '" + info.name + "' of mutex-owning class '" +
                     cls_name +
                     "' has no SNB_GUARDED_BY — annotate it, or "
                     "snb-lint-allow(guarded-by) with the synchronization "
                     "story (immutable-after-construction, single-writer, "
                     "...)");
      }
    }
  }
}

}  // namespace

std::string FormatFinding(const Finding& f) {
  return f.file + ":" + std::to_string(f.line) + ": [" + f.check + "] " +
         f.message;
}

std::vector<std::string> CheckNames() {
  return {
      "no-raw-random",
      "no-wall-clock",
      "no-raw-sync",
      "condvar-confined",
      "fuzz-public-parser",
      "cancel-poll",
      "topk-bound",
      "no-raw-atomic",
      "no-raw-assert",
      "failpoint-site-confined",
      "failpoint-arming-confined",
      "failpoint-site-unique",
      "wal-confined",
      "test-access-confined",
      "unchecked-status",
      "relaxed-rationale",
      "guarded-by",
      "static-lock-cycle",
      "blocking-while-locked-static",
      "epoch-escape",
      "status-flow",
      "suppression",
  };
}

std::vector<Finding> RunChecks(const std::vector<LexedFile>& files,
                               const Options& opts) {
  Ctx ctx(files, opts);
  struct Entry {
    const char* name;
    void (*fn)(Ctx&);
  };
  static const Entry kChecks[] = {
      {"no-raw-random", CheckNoRawRandom},
      {"no-wall-clock", CheckNoWallClock},
      {"no-raw-sync", CheckNoRawSync},
      {"condvar-confined", CheckCondVarConfined},
      {"fuzz-public-parser", CheckFuzzPublicParser},
      {"cancel-poll", CheckCancelPoll},
      {"topk-bound", CheckTopkBound},
      {"no-raw-atomic", CheckNoRawAtomic},
      {"no-raw-assert", CheckNoRawAssert},
      {"failpoint-site-confined", CheckFailpointSiteConfined},
      {"failpoint-arming-confined", CheckFailpointArmingConfined},
      {"failpoint-site-unique", CheckFailpointSiteUnique},
      {"wal-confined", CheckWalConfined},
      {"test-access-confined", CheckTestAccessConfined},
      {"unchecked-status", CheckUncheckedStatus},
      {"relaxed-rationale", CheckRelaxedRationale},
      {"guarded-by", CheckGuardedBy},
  };
  for (const Entry& e : kChecks) {
    if (ctx.Enabled(e.name)) e.fn(ctx);
  }

  // The interprocedural families (v3) run over the same units; findings
  // route back through Ctx::Emit so the suppression ledger applies
  // uniformly. The unit order matches `files`, so file indices line up.
  std::vector<IpaFile> ipa;
  for (const Unit& u : ctx.units()) {
    ipa.push_back(IpaFile{u.lex, u.scopes.get()});
  }
  RunIpaChecks(
      ipa,
      [&ctx](size_t file_index, int line, const std::string& check,
             const std::string& msg) {
        ctx.Emit(ctx.units()[file_index], line, check, msg);
      },
      [&ctx](const std::string& check) { return ctx.Enabled(check); });

  return ctx.Take();
}

}  // namespace snb_lint

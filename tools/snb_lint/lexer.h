// A real C++ lexer for snb_lint: unlike the grep gates it replaces, it
// knows where comments end (including /* */ spanning lines), what is inside
// a string/char/raw-string literal, and which lines belong to the
// preprocessor — so a convention documented in prose can never trip the
// check that enforces it, and a violation hidden in column 80 after real
// code can never hide.

#ifndef SNB_TOOLS_SNB_LINT_LEXER_H_
#define SNB_TOOLS_SNB_LINT_LEXER_H_

#include <string_view>

#include "token.h"

namespace snb_lint {

/// Lexes `content` into tokens + comment/preprocessor side channels.
/// Total: any byte sequence lexes (unterminated literals are closed at
/// end-of-file); the analyzer must never crash on weird input because the
/// fuzz corpus and golden fixtures are fed straight through it.
LexedFile Lex(std::string path, std::string_view content);

}  // namespace snb_lint

#endif  // SNB_TOOLS_SNB_LINT_LEXER_H_

#include "scopes.h"

#include <algorithm>

namespace snb_lint {
namespace {

bool IsPunct(const Token& t, const char* s) {
  return t.kind == TokKind::kPunct && t.text == s;
}
bool IsIdent(const Token& t, const char* s) {
  return t.kind == TokKind::kIdent && t.text == s;
}

}  // namespace

ScopeModel::ScopeModel(const std::vector<Token>& tokens) : t_(tokens) {
  const size_t n = t_.size();
  match_.assign(n, kNoMatch);
  loopish_.assign(n, 0);

  // Bracket matching for ( ) [ ] { }. Tolerant: a closer with no opener of
  // its kind on the stack stays unmatched (the input may be a fixture
  // deliberately torn mid-scope), and everything above a matched opener is
  // abandoned rather than mis-paired.
  {
    std::vector<std::pair<char, size_t>> stack;
    for (size_t i = 0; i < n; ++i) {
      if (t_[i].kind != TokKind::kPunct || t_[i].text.size() != 1) continue;
      char c = t_[i].text[0];
      if (c == '(' || c == '[' || c == '{') {
        stack.emplace_back(c, i);
      } else if (c == ')' || c == ']' || c == '}') {
        char open = (c == ')') ? '(' : (c == ']') ? '[' : '{';
        for (size_t k = stack.size(); k-- > 0;) {
          if (stack[k].first == open) {
            match_[i] = stack[k].second;
            match_[stack[k].second] = i;
            stack.resize(k);
            break;
          }
        }
      }
    }
  }

  // Classify every '{' by lookback, then compute loop/lambda reachability
  // with a scope stack in the same forward walk.
  std::vector<BraceKind> open_stack;
  size_t loop_or_lambda_depth = 0;
  for (size_t i = 0; i < n; ++i) {
    const Token& tok = t_[i];
    if (loop_or_lambda_depth > 0) loopish_[i] = 1;
    if (tok.kind != TokKind::kPunct) continue;
    if (tok.text == "}") {
      if (!open_stack.empty()) {
        BraceKind k = open_stack.back();
        open_stack.pop_back();
        if (k == BraceKind::kLoop || k == BraceKind::kLambda) {
          --loop_or_lambda_depth;
        }
      }
      continue;
    }
    if (tok.text != "{") continue;

    BraceKind kind = BraceKind::kBlock;
    if (i == 0) {
      kind = BraceKind::kBlock;
    } else {
      const Token& prev = t_[i - 1];
      if (IsPunct(prev, ")") && match_[i - 1] != kNoMatch) {
        size_t open_paren = match_[i - 1];
        // `) {` — control statement, lambda with params, or function body.
        if (open_paren > 0) {
          const Token& before = t_[open_paren - 1];
          if (IsIdent(before, "for") || IsIdent(before, "while")) {
            kind = BraceKind::kLoop;
          } else if (IsIdent(before, "if") || IsIdent(before, "switch") ||
                     IsIdent(before, "catch")) {
            kind = BraceKind::kBlock;
          } else if (IsPunct(before, "]")) {
            kind = BraceKind::kLambda;
          } else {
            kind = BraceKind::kFunction;
          }
        } else {
          kind = BraceKind::kFunction;
        }
      } else if (IsPunct(prev, "]")) {
        kind = BraceKind::kLambda;  // capture list with no parameter list
      } else if (IsIdent(prev, "do")) {
        kind = BraceKind::kLoop;
      } else if (IsIdent(prev, "else") || IsIdent(prev, "try")) {
        kind = BraceKind::kBlock;
      } else if (prev.kind == TokKind::kPunct &&
                 (prev.text == "=" || prev.text == "," || prev.text == "(" ||
                  prev.text == "{" || prev.text == ";")) {
        kind = BraceKind::kBlock;  // brace-init or statement block
      } else if (IsIdent(prev, "return")) {
        kind = BraceKind::kBlock;
      } else {
        // Lookback over the declaration head: walk to the nearest ; { } at
        // this nesting level, jumping over matched groups, and classify on
        // the keywords seen. "()" markers record jumped paren groups so a
        // trailing-return function head is recognizable.
        std::vector<std::string> rev;   // head tokens, reverse order
        bool paren_group = false;       // saw a (...) group in the head
        bool paren_after_bracket = false;  // that group followed a ']'
        size_t j = i;
        while (j-- > 0) {
          const Token& bt = t_[j];
          if (bt.kind == TokKind::kPunct &&
              (bt.text == ")" || bt.text == "]" || bt.text == "}")) {
            if (match_[j] == kNoMatch) break;
            if (bt.text == ")") {
              paren_group = true;
              size_t open_paren = match_[j];
              if (open_paren > 0 && IsPunct(t_[open_paren - 1], "]")) {
                paren_after_bracket = true;
              }
              rev.push_back("()");
            } else if (bt.text == "}") {
              rev.push_back("{}");
            } else {
              rev.push_back("[]");
            }
            j = match_[j];
            continue;
          }
          if (bt.kind == TokKind::kPunct &&
              (bt.text == ";" || bt.text == "{" || bt.text == "}")) {
            break;
          }
          rev.push_back(bt.text);
        }
        auto contains = [&](const char* s) {
          return std::find(rev.begin(), rev.end(), s) != rev.end();
        };
        if (contains("namespace")) {
          kind = BraceKind::kNamespace;
        } else if (contains("enum")) {
          kind = BraceKind::kEnum;
        } else if (contains("class") || contains("struct") ||
                   contains("union")) {
          // `template <class T> void f()` also mentions "class"; the
          // keyword only names a type definition when it is not a template
          // parameter introducer (directly preceded by '<' or ',').
          bool is_class = false;
          for (size_t k = 0; k < rev.size(); ++k) {
            const std::string& w = rev[k];
            if (w != "class" && w != "struct" && w != "union") continue;
            bool param_intro =
                k + 1 < rev.size() && (rev[k + 1] == "<" || rev[k + 1] == ",");
            if (!param_intro) {
              is_class = true;
              break;
            }
          }
          kind = is_class ? BraceKind::kClass : BraceKind::kBlock;
        } else if (contains("->") && paren_group) {
          kind = paren_after_bracket ? BraceKind::kLambda
                                     : BraceKind::kFunction;
        } else {
          kind = BraceKind::kBlock;  // brace-init: `Mutex mu_{...}` etc.
        }

        if (kind == BraceKind::kClass) {
          // Name: the identifier before the base-clause ':' when present,
          // else the last identifier of the head (forward order).
          std::string name;
          std::vector<std::string> fwd(rev.rbegin(), rev.rend());
          for (size_t k = 0; k < fwd.size(); ++k) {
            if (fwd[k] == ":" && k > 0) {
              name = fwd[k - 1];
              break;
            }
          }
          if (name.empty()) {
            for (size_t k = fwd.size(); k-- > 0;) {
              if (fwd[k] != "()" && fwd[k] != "{}" && fwd[k] != "[]" &&
                  fwd[k] != "final" && !fwd[k].empty() &&
                  (std::isalpha(static_cast<unsigned char>(fwd[k][0])) ||
                   fwd[k][0] == '_')) {
                name = fwd[k];
                break;
              }
            }
          }
          classes_.push_back(
              ClassScope{name, i, match_[i] == kNoMatch ? n - 1 : match_[i]});
        }
      }
    }
    if (IsPunct(t_[i], "{")) {
      // Classes found through the `) {` path cannot exist; record classes
      // only via the head path above. Push scope state.
      brace_kinds_.emplace_back(i, kind);
      open_stack.push_back(kind);
      if (kind == BraceKind::kLoop || kind == BraceKind::kLambda) {
        ++loop_or_lambda_depth;
        loopish_[i] = 1;
      }
    }
  }

  // Braceless loop bodies: `for (...) stmt;` / `while (...) stmt;` — mark
  // the single statement through its terminating ';' (groups jumped).
  for (size_t i = 0; i + 1 < n; ++i) {
    if (!(IsIdent(t_[i], "for") || IsIdent(t_[i], "while"))) continue;
    if (!IsPunct(t_[i + 1], "(") || match_[i + 1] == kNoMatch) continue;
    size_t close = match_[i + 1];
    if (close + 1 >= n || IsPunct(t_[close + 1], "{")) continue;
    for (size_t j = close + 1; j < n; ++j) {
      loopish_[j] = 1;
      if (t_[j].kind == TokKind::kPunct &&
          (t_[j].text == "(" || t_[j].text == "[" || t_[j].text == "{") &&
          match_[j] != kNoMatch) {
        for (size_t k = j; k <= match_[j]; ++k) loopish_[k] = 1;
        j = match_[j];
        continue;
      }
      if (IsPunct(t_[j], ";")) break;
    }
  }
}

BraceKind ScopeModel::KindOf(size_t open_brace) const {
  auto it = std::lower_bound(
      brace_kinds_.begin(), brace_kinds_.end(),
      std::make_pair(open_brace, BraceKind::kNamespace),
      [](const auto& a, const auto& b) { return a.first < b.first; });
  if (it != brace_kinds_.end() && it->first == open_brace) return it->second;
  return BraceKind::kBlock;
}

std::vector<MemberStatement> SplitMembers(const std::vector<Token>& tokens,
                                          const ScopeModel& scopes,
                                          const ScopeModel::ClassScope& cls) {
  std::vector<MemberStatement> out;
  MemberStatement cur;
  size_t i = cls.open + 1;
  while (i < cls.close && i < tokens.size()) {
    const Token& tok = tokens[i];
    if (tok.kind == TokKind::kPunct && tok.text == "{" &&
        scopes.Match(i) != kNoMatch) {
      size_t close = scopes.Match(i);
      bool followed_by_semi = close + 1 < tokens.size() &&
                              tokens[close + 1].kind == TokKind::kPunct &&
                              tokens[close + 1].text == ";";
      if (followed_by_semi) {
        // Brace initializer: `Mutex mu_{...};` — part of a field decl.
        i = close + 1;  // leave the ';' for the loop to terminate on
        continue;
      }
      // Body of a method / nested class defined inline: ends the statement.
      cur.had_body = true;
      if (!cur.tokens.empty()) out.push_back(std::move(cur));
      cur = MemberStatement{};
      i = close + 1;
      continue;
    }
    if (tok.kind == TokKind::kPunct && tok.text == ";") {
      if (!cur.tokens.empty()) out.push_back(std::move(cur));
      cur = MemberStatement{};
      ++i;
      continue;
    }
    // Access-specifier labels end nothing with ';' — `private: Mutex mu_;`
    // must not fold the label into the field statement (a lead "private"
    // keyword would make the classifier skip the field entirely).
    if (tok.kind == TokKind::kPunct && tok.text == ":" &&
        cur.tokens.size() == 1) {
      const Token& lead = tokens[cur.tokens[0]];
      if (lead.kind == TokKind::kIdent &&
          (lead.text == "public" || lead.text == "private" ||
           lead.text == "protected")) {
        cur = MemberStatement{};
        ++i;
        continue;
      }
    }
    cur.tokens.push_back(i);
    ++i;
  }
  if (!cur.tokens.empty()) out.push_back(std::move(cur));
  return out;
}

}  // namespace snb_lint

// Lightweight scope tracker over the token stream: matches brackets,
// classifies every brace (function body, loop body, lambda body, class
// body, namespace, brace-init), and answers the two questions the checks
// ask — "is this token inside a loop or lambda body?" (cancel-poll
// reachability) and "which token ranges are class bodies, and what members
// do they declare?" (GUARDED_BY coverage).
//
// This is a heuristic model, not a parser: it errs toward *not* claiming
// scope knowledge when the lookback is ambiguous. The golden fixtures and
// the zero-findings gate over the shipped tree are what keep it honest.

#ifndef SNB_TOOLS_SNB_LINT_SCOPES_H_
#define SNB_TOOLS_SNB_LINT_SCOPES_H_

#include <cstddef>
#include <string>
#include <vector>

#include "token.h"

namespace snb_lint {

inline constexpr size_t kNoMatch = static_cast<size_t>(-1);

enum class BraceKind {
  kNamespace,
  kClass,     // class / struct / union body
  kEnum,
  kFunction,  // function, method or constructor body
  kLoop,      // for / while / do body
  kLambda,    // lambda body
  kBlock,     // plain block, if/else/switch/try body, brace-init, unknown
};

class ScopeModel {
 public:
  explicit ScopeModel(const std::vector<Token>& tokens);

  /// Matching bracket index for ( ) [ ] { } tokens, kNoMatch otherwise.
  size_t Match(size_t i) const { return match_[i]; }

  /// True when token i sits inside at least one loop body (braced or the
  /// single-statement body of a for/while) or lambda body. Lambdas count
  /// because every BI kernel drives its hot iteration through ForEach-style
  /// callbacks — the lambda body *is* the loop body.
  bool InLoopOrLambda(size_t i) const { return loopish_[i] != 0; }

  struct ClassScope {
    std::string name;  // "" for anonymous
    size_t open;       // index of '{'
    size_t close;      // index of matching '}' (or last token)
  };
  const std::vector<ClassScope>& classes() const { return classes_; }

  BraceKind KindOf(size_t open_brace) const;

 private:
  const std::vector<Token>& t_;
  std::vector<size_t> match_;
  std::vector<char> loopish_;
  std::vector<ClassScope> classes_;
  std::vector<std::pair<size_t, BraceKind>> brace_kinds_;  // sorted by index
};

/// One member declaration of a class body: the token indices that make it
/// up, with nested brace groups (method bodies, brace-inits) elided, plus
/// whether an elided group was a body (no trailing ';' — a definition).
struct MemberStatement {
  std::vector<size_t> tokens;  // indices into the file token stream
  bool had_body = false;       // ended with a brace group and no ';'
};

/// Splits a class body into member statements at class-body depth.
std::vector<MemberStatement> SplitMembers(const std::vector<Token>& tokens,
                                          const ScopeModel& scopes,
                                          const ScopeModel::ClassScope& cls);

}  // namespace snb_lint

#endif  // SNB_TOOLS_SNB_LINT_SCOPES_H_

#include "symbols.h"

#include <algorithm>
#include <cctype>
#include <set>
#include <string_view>

namespace snb_lint {
namespace {

bool IsIdent(const Token& t, std::string_view s) {
  return t.kind == TokKind::kIdent && t.text == s;
}
bool IsPunct(const Token& t, std::string_view s) {
  return t.kind == TokKind::kPunct && t.text == s;
}
bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

/// Product trees, minus the primitive implementation the analyzer models
/// as intrinsics (Mutex::Lock calling std::mutex::lock is not an "effect").
bool ExtractFrom(std::string_view p) {
  if (p == "src/util/mutex.h") return false;
  return StartsWith(p, "src/") || StartsWith(p, "tools/") ||
         StartsWith(p, "bench/");
}

const std::set<std::string>& CallKeywords() {
  static const std::set<std::string> kw = {
      "if",     "for",    "while",   "switch",   "return", "catch",
      "sizeof", "alignof", "new",    "delete",   "throw",  "co_await",
      "co_return", "static_assert", "decltype", "typeid", "noexcept",
      "alignas", "defined"};
  return kw;
}

const std::set<std::string>& BlockingIo() {
  static const std::set<std::string> io = {
      "fsync",  "fdatasync", "fopen", "fwrite", "fread",
      "fflush", "fclose",    "ftruncate"};
  return io;
}

/// Innermost enclosing '{' for every token (kNoMatch at namespace level).
std::vector<size_t> EnclosingOpenBrace(const std::vector<Token>& t) {
  std::vector<size_t> encl(t.size(), kNoMatch);
  std::vector<size_t> stack;
  for (size_t i = 0; i < t.size(); ++i) {
    encl[i] = stack.empty() ? kNoMatch : stack.back();
    if (t[i].kind != TokKind::kPunct) continue;
    if (t[i].text == "{") {
      stack.push_back(i);
    } else if (t[i].text == "}" && !stack.empty()) {
      stack.pop_back();
    }
  }
  return encl;
}

struct Head {
  size_t name_tok = kNoMatch;
  size_t params_open = kNoMatch;
  size_t params_close = kNoMatch;
  std::string owner;  // from a Class:: qualifier, "" otherwise
};

/// Walks back from a function-body '{' over trailing annotations
/// (const/noexcept/override, SNB_* attribute macros, trailing return
/// types) and constructor member-init lists to the parameter list, and
/// names the function. Returns name_tok == kNoMatch when the head shape
/// is beyond the heuristic (operators, function-pointer returns) — such
/// definitions simply do not join the call graph.
Head ParseFunctionHead(const std::vector<Token>& t,
                       const ScopeModel& scopes, size_t open_brace) {
  Head h;
  static const std::set<std::string> kTrailing = {
      "const", "noexcept", "override", "final", "mutable", "try"};
  size_t j = open_brace;
  int guard = 0;
  while (j-- > 0) {
    if (++guard > 400) return h;
    const Token& tok = t[j];
    if (tok.kind == TokKind::kIdent) {
      // Trailing keyword, or part of a trailing return type (`-> bool`).
      continue;
    }
    if (tok.kind == TokKind::kPunct) {
      const std::string& p = tok.text;
      if (p == "::" || p == "->" || p == "<" || p == ">" || p == "*" ||
          p == "&" || p == "," || p == ":") {
        continue;  // return-type bits / member-init separators
      }
      if (p == ";" || p == "{") return h;  // ran out of the statement
      if (p == "}") {
        // Brace-init entry of a member-init list: `: a_{n} {`.
        size_t m = scopes.Match(j);
        if (m == kNoMatch) return h;
        j = m;
        continue;
      }
      if (p == ")") {
        size_t open_p = scopes.Match(j);
        if (open_p == kNoMatch || open_p == 0) return h;
        const Token& before = t[open_p - 1];
        if (before.kind != TokKind::kIdent) return h;
        if (StartsWith(before.text, "SNB_")) {
          // Attribute macro group: SNB_EXCLUDES(mu_) etc. — skip whole.
          j = open_p - 1;
          continue;
        }
        // `, name(x)` / `: name(x)` is a member-init entry, keep walking.
        if (open_p >= 2 && t[open_p - 2].kind == TokKind::kPunct &&
            (t[open_p - 2].text == "," || t[open_p - 2].text == ":")) {
          j = open_p - 1;
          continue;
        }
        h.name_tok = open_p - 1;
        h.params_open = open_p;
        h.params_close = j;
        // Class:: qualifier chain (take the innermost qualifier).
        if (h.name_tok >= 2 && IsPunct(t[h.name_tok - 1], "::") &&
            t[h.name_tok - 2].kind == TokKind::kIdent) {
          h.owner = t[h.name_tok - 2].text;
        }
        return h;
      }
      return h;
    }
    return h;  // string/number in a head — not a function we model
  }
  return h;
}

/// Splits (params_open, params_close) into ParamInfo entries and counts
/// arity bounds. Bracket-depth aware; `void` and empty lists are arity 0.
void ParseParams(const std::vector<Token>& t, size_t open, size_t close,
                 FunctionDef* def) {
  std::vector<std::pair<size_t, size_t>> slices;
  size_t begin = open + 1;
  int depth = 0;
  for (size_t i = open + 1; i < close; ++i) {
    const Token& tok = t[i];
    if (tok.kind == TokKind::kPunct) {
      const std::string& p = tok.text;
      if (p == "(" || p == "[" || p == "{" || p == "<") ++depth;
      if (p == ")" || p == "]" || p == "}" || p == ">") --depth;
      if (p == "," && depth == 0) {
        slices.emplace_back(begin, i);
        begin = i + 1;
      }
    }
  }
  if (begin < close) slices.emplace_back(begin, close);
  if (slices.size() == 1) {
    auto [b, e] = slices[0];
    if (e == b || (e == b + 1 && IsIdent(t[b], "void"))) slices.clear();
  }
  for (auto [b, e] : slices) {
    ParamInfo p;
    size_t stop = e;
    depth = 0;
    for (size_t i = b; i < e; ++i) {
      if (t[i].kind != TokKind::kPunct) continue;
      const std::string& s = t[i].text;
      if (s == "(" || s == "[" || s == "{" || s == "<") ++depth;
      if (s == ")" || s == "]" || s == "}" || s == ">") --depth;
      if (s == "=" && depth == 0) {
        p.has_default = true;
        stop = i;
        break;
      }
    }
    size_t ident_count = 0;
    size_t last_ident = kNoMatch;
    for (size_t i = b; i < stop; ++i) {
      if (t[i].kind != TokKind::kIdent) continue;
      ++ident_count;
      last_ident = i;
      if (t[i].text == "Status") p.is_status = true;
    }
    // The name is the trailing identifier — but only when the parameter
    // is named at all: a lone `Status` / `int`, or a qualified type like
    // `util::Status` (last ident preceded by '::'), is unnamed.
    if (last_ident != kNoMatch && last_ident + 1 >= stop &&
        ident_count >= 2 && !IsPunct(t[last_ident - 1], "::")) {
      p.name = t[last_ident].text;
    }
    def->params.push_back(std::move(p));
  }
  def->max_arity = def->params.size();
  def->min_arity = 0;
  for (const ParamInfo& p : def->params) {
    if (!p.has_default) ++def->min_arity;
  }
}

/// Return-type scan: from the head's first token to the name, does the
/// declaration mention Status/StatusOr?
bool ReturnsStatus(const std::vector<Token>& t, size_t name_tok) {
  size_t q = name_tok;
  // Skip the Class:: qualifier chain.
  while (q >= 2 && IsPunct(t[q - 1], "::") &&
         t[q - 2].kind == TokKind::kIdent) {
    q -= 2;
  }
  int guard = 0;
  while (q-- > 0) {
    if (++guard > 24) break;
    const Token& tok = t[q];
    if (tok.kind == TokKind::kPunct) {
      if (tok.text == ";" || tok.text == "{" || tok.text == "}" ||
          tok.text == ")" || tok.text == "(") {
        break;
      }
      continue;
    }
    if (tok.kind != TokKind::kIdent) break;
    if (tok.text == "Status" || tok.text == "StatusOr") return true;
  }
  return false;
}

struct MutexVar {
  std::string scope;  // class name, or enclosing function display
  std::string var;
  size_t site = kNoSite;
};

/// Per-file extraction state shared across the passes.
struct FileWork {
  size_t file_index;
  const LexedFile* lex;
  const ScopeModel* scopes;
  std::vector<size_t> encl;               // enclosing '{' per token
  std::vector<size_t> func_ids;           // corpus ids of this file's defs
};

class Builder {
 public:
  explicit Builder(const std::vector<IpaFile>& files) {
    for (size_t fi = 0; fi < files.size(); ++fi) {
      if (!files[fi].lex || !files[fi].scopes) continue;
      if (!ExtractFrom(files[fi].lex->path)) continue;
      FileWork w;
      w.file_index = fi;
      w.lex = files[fi].lex;
      w.scopes = files[fi].scopes;
      w.encl = EnclosingOpenBrace(w.lex->tokens);
      work_.push_back(std::move(w));
    }
    for (FileWork& w : work_) ExtractFunctions(w);
    for (FileWork& w : work_) ExtractMutexes(w);
    for (FileWork& w : work_) ExtractEvents(w);
    for (size_t id = 0; id < corpus_.funcs.size(); ++id) {
      const FunctionDef& f = corpus_.funcs[id];
      if (f.is_lambda) {
        if (!f.lambda_local.empty()) {
          corpus_.by_name[f.lambda_local].push_back(id);
        }
      } else if (!f.name.empty() && f.name[0] != '~') {
        corpus_.by_name[f.name].push_back(id);
      }
    }
  }

  Corpus Take() { return std::move(corpus_); }

 private:
  /// Innermost class scope containing token i, or nullptr.
  const ScopeModel::ClassScope* EnclosingClass(const FileWork& w, size_t i) {
    const ScopeModel::ClassScope* best = nullptr;
    for (const auto& cls : w.scopes->classes()) {
      if (cls.open < i && i < cls.close) {
        if (!best || cls.open > best->open) best = &cls;
      }
    }
    return best;
  }

  void ExtractFunctions(FileWork& w) {
    const auto& t = w.lex->tokens;
    for (size_t i = 0; i < t.size(); ++i) {
      if (!IsPunct(t[i], "{")) continue;
      BraceKind kind = w.scopes->KindOf(i);
      if (kind != BraceKind::kFunction && kind != BraceKind::kLambda) {
        continue;
      }
      size_t close = w.scopes->Match(i);
      if (close == kNoMatch) close = t.size() - 1;
      FunctionDef def;
      def.file = w.lex->path;
      def.file_index = w.file_index;
      def.line = t[i].line;
      def.open = i;
      def.close = close;
      if (kind == BraceKind::kLambda) {
        def.is_lambda = true;
        def.name = "<lambda>";
        // Optional parameter list: `](params) {` vs `] {`.
        size_t bracket_close = kNoMatch;
        if (i > 0 && IsPunct(t[i - 1], ")")) {
          size_t po = w.scopes->Match(i - 1);
          if (po != kNoMatch) {
            ParseParams(t, po, i - 1, &def);
            def.params_close = i - 1;
            if (po > 0 && IsPunct(t[po - 1], "]")) bracket_close = po - 1;
          }
        } else if (i > 0 && IsPunct(t[i - 1], "]")) {
          bracket_close = i - 1;
        }
        if (bracket_close != kNoMatch) {
          size_t cap_open = w.scopes->Match(bracket_close);
          // `auto name = [caps]...` — bind the lambda to its local name.
          if (cap_open != kNoMatch && cap_open >= 2 &&
              IsPunct(t[cap_open - 1], "=") &&
              t[cap_open - 2].kind == TokKind::kIdent) {
            def.lambda_local = t[cap_open - 2].text;
          }
          def.line = t[cap_open == kNoMatch ? i : cap_open].line;
        }
        def.display =
            (def.lambda_local.empty() ? "<lambda>" : def.lambda_local) +
            std::string("@") + def.file + ":" + std::to_string(def.line);
      } else {
        Head h = ParseFunctionHead(t, *w.scopes, i);
        if (h.name_tok == kNoMatch) continue;
        const Token& name = t[h.name_tok];
        def.name = name.text;
        def.line = name.line;
        if (h.name_tok > 0 && IsPunct(t[h.name_tok - 1], "~")) {
          def.name = "~" + def.name;
        }
        def.owner = h.owner;
        if (def.owner.empty()) {
          if (const auto* cls = EnclosingClass(w, i)) def.owner = cls->name;
        }
        def.display =
            def.owner.empty() ? def.name : def.owner + "::" + def.name;
        ParseParams(t, h.params_open, h.params_close, &def);
        def.params_close = h.params_close;
        def.returns_status = ReturnsStatus(t, h.name_tok);
      }
      w.func_ids.push_back(corpus_.funcs.size());
      corpus_.funcs.push_back(std::move(def));
    }
  }

  size_t InternSite(LockSite site) {
    auto it = site_index_.find(site.name);
    if (it != site_index_.end()) return it->second;
    size_t idx = corpus_.sites.size();
    site_index_.emplace(site.name, idx);
    if (site.declared) corpus_.site_by_name.emplace(site.name, idx);
    corpus_.sites.push_back(std::move(site));
    return idx;
  }

  /// Innermost function def (by corpus id) containing token i, or kNoMatch.
  size_t EnclosingFunc(const FileWork& w, size_t i) {
    size_t best = kNoMatch;
    for (size_t id : w.func_ids) {
      const FunctionDef& f = corpus_.funcs[id];
      if (f.open < i && i < f.close) {
        if (best == kNoMatch || f.open > corpus_.funcs[best].open) best = id;
      }
    }
    return best;
  }

  void ExtractMutexes(FileWork& w) {
    const auto& t = w.lex->tokens;
    for (size_t i = 0; i + 1 < t.size(); ++i) {
      if (!IsIdent(t[i], "Mutex")) continue;
      if (t[i + 1].kind != TokKind::kIdent) continue;
      const std::string& var = t[i + 1].text;
      size_t after = i + 2;
      if (after >= t.size()) continue;
      // A declaration: `Mutex name;`, `Mutex name{...};`, `Mutex name(...)`.
      if (!(IsPunct(t[after], ";") || IsPunct(t[after], "{") ||
            IsPunct(t[after], "("))) {
        continue;
      }
      LockSite site;
      site.file = w.lex->path;
      site.line = t[i].line;
      if (IsPunct(t[after], "{") || IsPunct(t[after], "(")) {
        size_t close = w.scopes->Match(after);
        if (close == kNoMatch) close = std::min(after + 32, t.size() - 1);
        for (size_t k = after + 1; k < close; ++k) {
          if (t[k].kind != TokKind::kIdent) continue;
          bool levelled = t[k].text == "SNB_LOCK_LEVEL";
          if (!levelled && t[k].text != "SNB_LOCK_SITE") continue;
          if (k + 2 < close && IsPunct(t[k + 1], "(") &&
              t[k + 2].kind == TokKind::kString) {
            site.name = t[k + 2].text;
            site.declared = true;
            if (levelled && k + 4 < close &&
                t[k + 4].kind == TokKind::kNumber) {
              site.level = std::atoi(t[k + 4].text.c_str());
            }
          }
          break;
        }
      }
      std::string scope;
      if (const auto* cls = EnclosingClass(w, i)) {
        scope = cls->name;
      } else {
        size_t fn = EnclosingFunc(w, i);
        if (fn != kNoMatch) scope = corpus_.funcs[fn].display;
      }
      if (!site.declared) {
        // Anonymous mutex: synthesize a per-(scope, var) site, mirroring
        // the dynamic analyzer's lazy per-instance sites.
        site.name = (scope.empty() ? w.lex->path : scope) + "::" + var;
      }
      size_t idx = InternSite(std::move(site));
      mutex_vars_.push_back(MutexVar{scope, var, idx});
      if (!scope.empty()) owning_scopes_.insert(scope);
    }
  }

  /// Resolves a mutex expression (the argument of MutexLock / CondVar
  /// waits) to a lock site: local-scope match first, then the enclosing
  /// class's member, then a receiver-typed member, then a corpus-unique
  /// member name. kNoSite when genuinely unresolvable.
  size_t ResolveMutexExpr(const FileWork& w, size_t func_id, size_t b,
                          size_t e,
                          const std::map<std::string, std::string>& types) {
    const auto& t = w.lex->tokens;
    std::string var, recv;
    for (size_t i = b; i < e; ++i) {
      if (t[i].kind == TokKind::kIdent) {
        recv = var;
        var = t[i].text;
      }
    }
    if (var.empty()) return kNoSite;
    const FunctionDef& f = corpus_.funcs[func_id];
    // Candidate scopes, most-local first.
    std::vector<std::string> scopes;
    scopes.push_back(f.display);
    if (!recv.empty()) {
      auto it = types.find(recv);
      if (it != types.end()) scopes.push_back(it->second);
    } else if (!f.owner.empty()) {
      scopes.push_back(f.owner);
    }
    for (const std::string& s : scopes) {
      for (const MutexVar& mv : mutex_vars_) {
        if (mv.scope == s && mv.var == var) return mv.site;
      }
    }
    size_t unique = kNoSite;
    for (const MutexVar& mv : mutex_vars_) {
      if (mv.var != var) continue;
      if (unique != kNoSite && unique != mv.site) return kNoSite;  // ambiguous
      unique = mv.site;
    }
    return unique;
  }

  /// `T x`, `T& x`, `T* x` where T is a mutex-owning scope name — the
  /// receiver-type table for member resolution.
  std::map<std::string, std::string> LocalTypes(const FileWork& w,
                                                const FunctionDef& f) {
    std::map<std::string, std::string> types;
    const auto& t = w.lex->tokens;
    size_t begin = f.open > 64 ? f.open - 64 : 0;  // covers the param list
    for (size_t i = begin; i + 1 < t.size() && i < f.close; ++i) {
      if (t[i].kind != TokKind::kIdent || !owning_scopes_.count(t[i].text)) {
        continue;
      }
      size_t j = i + 1;
      while (j < t.size() && t[j].kind == TokKind::kPunct &&
             (t[j].text == "&" || t[j].text == "*")) {
        ++j;
      }
      if (j < t.size() && t[j].kind == TokKind::kIdent) {
        types[t[j].text] = t[i].text;
      }
    }
    return types;
  }

  size_t CallArity(const FileWork& w, size_t open_paren) {
    const auto& t = w.lex->tokens;
    size_t close = w.scopes->Match(open_paren);
    if (close == kNoMatch) return 0;
    if (close == open_paren + 1) return 0;
    size_t commas = 0;
    int depth = 0;
    for (size_t i = open_paren + 1; i < close; ++i) {
      if (t[i].kind != TokKind::kPunct) continue;
      const std::string& p = t[i].text;
      if (p == "(" || p == "[" || p == "{") ++depth;
      if (p == ")" || p == "]" || p == "}") --depth;
      if (p == "," && depth == 0) ++commas;
    }
    return commas + 1;
  }

  void ExtractEvents(FileWork& w) {
    corpus_.events.resize(corpus_.funcs.size());
    const auto& t = w.lex->tokens;
    for (size_t id : w.func_ids) {
      const FunctionDef& f = corpus_.funcs[id];
      std::vector<Event>& out = corpus_.events[id];
      // Nested definitions (lambdas, local-struct methods) analyze as
      // their own nodes; their tokens are skipped here. In particular a
      // deferred lambda's effects never count against the enclosing
      // function's hold ranges — see DESIGN.md for the inline-callback
      // blind spot this choice accepts.
      std::vector<std::pair<size_t, size_t>> skip;
      for (size_t other : w.func_ids) {
        const FunctionDef& g = corpus_.funcs[other];
        if (other != id && g.open > f.open && g.close < f.close) {
          skip.emplace_back(g.open, g.close);
        }
      }
      std::map<std::string, std::string> types = LocalTypes(w, f);
      for (size_t i = f.open + 1; i < f.close; ++i) {
        bool skipped = false;
        for (auto [b, e] : skip) {
          if (i >= b && i <= e) {
            i = e;
            skipped = true;
            break;
          }
        }
        if (skipped) continue;
        if (t[i].kind != TokKind::kIdent) continue;
        const std::string& name = t[i].text;

        // util::MutexLock lock(mu_); — RAII acquire, held to scope end.
        if (name == "MutexLock") {
          size_t paren = kNoMatch;
          if (i + 2 < f.close && t[i + 1].kind == TokKind::kIdent &&
              IsPunct(t[i + 2], "(")) {
            paren = i + 2;
          } else if (i + 1 < f.close && IsPunct(t[i + 1], "(")) {
            paren = i + 1;  // temporary: held for the statement only
          }
          if (paren == kNoMatch) continue;
          size_t close = w.scopes->Match(paren);
          if (close == kNoMatch) continue;
          Event ev;
          ev.kind = EvKind::kAcquire;
          ev.tok = i;
          ev.line = t[i].line;
          ev.site = ResolveMutexExpr(w, id, paren + 1, close, types);
          size_t encl = w.encl[i];
          size_t scope_end =
              (encl != kNoMatch && w.scopes->Match(encl) != kNoMatch)
                  ? w.scopes->Match(encl)
                  : f.close;
          if (paren == i + 1) {
            for (size_t k = close; k < scope_end; ++k) {
              if (IsPunct(t[k], ";")) {
                scope_end = k;
                break;
              }
            }
          }
          ev.scope_end = std::min(scope_end, f.close);
          if (ev.site != kNoSite) out.push_back(std::move(ev));
          i = close;
          continue;
        }

        bool member_call = i > 0 && t[i - 1].kind == TokKind::kPunct &&
                           (t[i - 1].text == "." || t[i - 1].text == "->");

        // Explicit mu_.Lock() / mu_.Unlock() pairing.
        if (member_call && (name == "Lock" || name == "Unlock") &&
            i + 1 < f.close && IsPunct(t[i + 1], "(")) {
          if (name == "Unlock") {
            i = w.scopes->Match(i + 1) != kNoMatch ? w.scopes->Match(i + 1)
                                                   : i + 1;
            continue;  // consumed by the matching Lock below
          }
          size_t site =
              i >= 2 ? ResolveMutexExpr(w, id, i - 2, i - 1, types)
                     : kNoSite;
          if (site != kNoSite) {
            Event ev;
            ev.kind = EvKind::kAcquire;
            ev.tok = i;
            ev.line = t[i].line;
            ev.site = site;
            ev.scope_end = f.close;
            // Balance against a later Unlock on any receiver spelling the
            // same site (token-level pairing; first match wins).
            for (size_t k = i + 2; k < f.close; ++k) {
              if (!IsIdent(t[k], "Unlock") || k + 1 >= f.close ||
                  !IsPunct(t[k + 1], "(")) {
                continue;
              }
              size_t usite =
                  k >= 2 ? ResolveMutexExpr(w, id, k - 2, k - 1, types)
                         : kNoSite;
              if (usite == site) {
                ev.scope_end = k;
                break;
              }
            }
            out.push_back(std::move(ev));
          }
          i = w.scopes->Match(i + 1) != kNoMatch ? w.scopes->Match(i + 1)
                                                 : i + 1;
          continue;
        }

        // CondVar waits: cv_.Wait(mu) / cv_.WaitFor(mu, budget). The waited
        // mutex is the first argument; zero-arg Wait() is an ordinary call
        // (ThreadPool::Wait etc.) resolved through the call graph.
        if (member_call && (name == "Wait" || name == "WaitFor") &&
            i + 1 < f.close && IsPunct(t[i + 1], "(")) {
          size_t close = w.scopes->Match(i + 1);
          if (close != kNoMatch && close > i + 2) {
            size_t arg_end = close;
            int depth = 0;
            for (size_t k = i + 2; k < close; ++k) {
              if (t[k].kind != TokKind::kPunct) continue;
              const std::string& p = t[k].text;
              if (p == "(" || p == "[" || p == "{") ++depth;
              if (p == ")" || p == "]" || p == "}") --depth;
              if (p == "," && depth == 0) {
                arg_end = k;
                break;
              }
            }
            size_t site = ResolveMutexExpr(w, id, i + 2, arg_end, types);
            if (site != kNoSite) {
              Event ev;
              ev.kind = EvKind::kWait;
              ev.tok = i;
              ev.line = t[i].line;
              ev.site = site;
              out.push_back(std::move(ev));
              i = close;
              continue;
            }
          }
        }

        // Blocking file I/O by name (optionally ::-qualified).
        if (BlockingIo().count(name) && i + 1 < f.close &&
            IsPunct(t[i + 1], "(")) {
          Event ev;
          ev.kind = EvKind::kIo;
          ev.tok = i;
          ev.line = t[i].line;
          ev.callee = name;
          out.push_back(std::move(ev));
          continue;
        }

        // Generic call site: ident '(' — resolved later by name+arity.
        if (i + 1 < f.close && IsPunct(t[i + 1], "(") &&
            !CallKeywords().count(name) && !StartsWith(name, "SNB_")) {
          Event ev;
          ev.kind = EvKind::kCall;
          ev.tok = i;
          ev.line = t[i].line;
          ev.callee = name;
          ev.arity = CallArity(w, i + 1);
          if (member_call && i >= 2 && t[i - 2].kind == TokKind::kIdent) {
            ev.receiver = t[i - 2].text;
            auto rt = types.find(ev.receiver);
            if (rt != types.end()) ev.receiver_type = rt->second;
          }
          out.push_back(std::move(ev));
        }
      }
    }
  }

  std::vector<FileWork> work_;
  Corpus corpus_;
  std::vector<MutexVar> mutex_vars_;
  std::set<std::string> owning_scopes_;
  std::map<std::string, size_t> site_index_;
};

}  // namespace

Corpus BuildCorpus(const std::vector<IpaFile>& files) {
  Builder b(files);
  return b.Take();
}

}  // namespace snb_lint

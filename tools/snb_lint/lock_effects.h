// Bottom-up lock-effect summaries over the call graph, and the static
// held→acquired edge set they imply.
//
// A function's summary says which lock sites any call to it may acquire
// and which blocking operations (CondVar waits, file I/O, ThreadPool
// submission) it may reach — each with a witness call path back to the
// literal event. Summaries are a fixpoint over the call graph: entries
// only accumulate, so iteration terminates when a full pass adds nothing.
//
// On top of the summaries, ComputeLockEffects enumerates, for every
// static hold range (a MutexLock to the end of its scope, an explicit
// Lock() to its paired Unlock()), the sites acquired and the blocking
// operations reached inside it — the raw material for static-lock-cycle
// and blocking-while-locked-static. This is the compile-time complement
// of src/analysis/lock_graph: same edge relation, derived from all call
// paths instead of the interleavings that happened to execute.

#ifndef SNB_TOOLS_SNB_LINT_LOCK_EFFECTS_H_
#define SNB_TOOLS_SNB_LINT_LOCK_EFFECTS_H_

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "callgraph.h"
#include "symbols.h"

namespace snb_lint {

/// One call edge on a witness path: `caller` invokes `callee` at `line`
/// (line numbers are in caller's file).
struct PathStep {
  size_t caller = 0;
  int line = 0;
  size_t callee = 0;
};

/// "Calling this function may acquire `site`": the literal acquisition is
/// in `func` at `line`; `path` walks from the summarized function down to
/// `func` (empty for a direct acquisition).
struct AcqEffect {
  size_t site = kNoSite;
  size_t func = 0;
  int line = 0;
  std::vector<PathStep> path;
};

enum class BlockKind {
  kWaitOn,  // CondVar::Wait/WaitFor on `site`'s mutex
  kIo,      // blocking file I/O; `what` is the function name
  kSubmit,  // ThreadPool::Submit — blocks on the pool's own `site`
};

struct BlockEffect {
  BlockKind kind = BlockKind::kIo;
  size_t site = kNoSite;  // kWaitOn / kSubmit; kNoSite for kIo
  std::string what;
  size_t func = 0;
  int line = 0;
  std::vector<PathStep> path;
};

struct Summary {
  std::map<size_t, AcqEffect> acquires;
  std::map<std::string, BlockEffect> blocks;
};

/// held→acquired: while `holder` holds `held_site` (acquired at
/// `hold_line`), the acquisition described by `acq` is reachable.
struct HeldEdge {
  size_t held_site = kNoSite;
  size_t holder = 0;
  int hold_line = 0;
  AcqEffect acq;
};

/// While `holder` holds `held_site`, the blocking operation `block` is
/// reachable.
struct BlockHazard {
  size_t held_site = kNoSite;
  size_t holder = 0;
  int hold_line = 0;
  BlockEffect block;
};

struct LockEffects {
  std::vector<Summary> summaries;  // parallel to Corpus::funcs
  std::vector<HeldEdge> edges;
  std::vector<BlockHazard> hazards;
};

LockEffects ComputeLockEffects(const Corpus& corpus, const CallGraph& cg);

}  // namespace snb_lint

#endif  // SNB_TOOLS_SNB_LINT_LOCK_EFFECTS_H_

// snb_datagen — bounded-memory streaming datagen CLI.
//
// Generates the CsvBasic dataset and update streams through
// datagen::GenerateStreaming: messages are never materialized; external
// merge-sort runs spill to --spill-dir under --budget-mb. Output is
// byte-identical to the in-memory pipeline at every budget.
//
//   snb_datagen <out_dir> [--persons <n>] [--seed <s>] [--budget-mb <mb>]
//               [--spill-dir <dir>]           default <out_dir>/.spill
//               [--verify-load]               load + build graph afterwards
//               [--max-bytes-per-edge <b>]    with --verify-load: fail when
//                                             the compressed store exceeds b
//               [--derive-deletes]            derive a DEL 1–8 stream from
//                                             the bulk dataset (opt-in; the
//                                             classic output is insert-only)
//               [--delete-days <n>]           spread deletes over n days
//
// Exit status: 0 on success, 1 on generation/load failure or a violated
// --max-bytes-per-edge budget, 2 on usage errors.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "datagen/delete_stream.h"
#include "datagen/streaming.h"
#include "datagen/update_stream.h"
#include "storage/graph.h"
#include "storage/loader.h"

namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <out_dir> [--persons <n>] [--seed <s>] "
               "[--budget-mb <mb>] [--spill-dir <dir>] [--verify-load] "
               "[--max-bytes-per-edge <b>] [--derive-deletes] "
               "[--delete-days <n>]\n",
               argv0);
  return 2;
}

// Appends the derived DEL stream as the optional third update-stream file.
// Writes only that file: the person/forum streams already on disk stay
// byte-identical to an insert-only run.
int WriteDeleteStream(const std::string& out_dir,
                      const std::vector<snb::datagen::UpdateEvent>& events) {
  const std::string path = out_dir + "/updateStream_0_0_delete.csv";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 1;
  }
  for (const auto& e : events) {
    std::string line = snb::datagen::FormatUpdateEventLine(e);
    line.push_back('\n');
    std::fwrite(line.data(), 1, line.size(), f);
  }
  if (std::fclose(f) != 0) {
    std::fprintf(stderr, "fclose failed for %s\n", path.c_str());
    return 1;
  }
  std::printf("derived %zu delete events -> %s\n", events.size(),
              path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace snb;  // NOLINT

  if (argc < 2 || argv[1][0] == '-') return Usage(argv[0]);
  datagen::StreamingOptions options;
  options.out_dir = argv[1];
  options.spill_dir = options.out_dir + "/.spill";
  bool verify_load = false;
  double max_bytes_per_edge = 0;
  bool derive_deletes = false;
  int32_t delete_days = 7;

  for (int i = 2; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--persons") == 0 && i + 1 < argc) {
      options.datagen.num_persons = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(arg, "--seed") == 0 && i + 1 < argc) {
      options.datagen.seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(arg, "--budget-mb") == 0 && i + 1 < argc) {
      options.memory_budget_bytes =
          std::strtoull(argv[++i], nullptr, 10) << 20;
    } else if (std::strcmp(arg, "--spill-dir") == 0 && i + 1 < argc) {
      options.spill_dir = argv[++i];
    } else if (std::strcmp(arg, "--verify-load") == 0) {
      verify_load = true;
    } else if (std::strcmp(arg, "--max-bytes-per-edge") == 0 && i + 1 < argc) {
      max_bytes_per_edge = std::strtod(argv[++i], nullptr);
      verify_load = true;
    } else if (std::strcmp(arg, "--derive-deletes") == 0) {
      derive_deletes = true;
    } else if (std::strcmp(arg, "--delete-days") == 0 && i + 1 < argc) {
      delete_days = static_cast<int32_t>(std::strtol(argv[++i], nullptr, 10));
      derive_deletes = true;
    } else {
      return Usage(argv[0]);
    }
  }

  std::printf("streaming datagen: %llu persons, seed %llu, budget %zu MiB\n",
              static_cast<unsigned long long>(options.datagen.num_persons),
              static_cast<unsigned long long>(options.datagen.seed),
              options.memory_budget_bytes >> 20);
  datagen::StreamingStats stats;
  util::Status status = datagen::GenerateStreaming(options, &stats);
  if (!status.ok()) {
    std::fprintf(stderr, "generation failed: %s\n",
                 status.ToString().c_str());
    return 1;
  }
  std::printf(
      "  persons %zu, knows %zu, forums %zu, memberships %zu\n"
      "  posts %zu, comments %zu, likes %zu, update events %zu\n"
      "  spill runs %zu, orphans reclaimed %zu\n",
      stats.persons, stats.knows, stats.forums, stats.memberships,
      stats.posts, stats.comments, stats.likes, stats.update_events,
      stats.spill_runs, stats.orphans_reclaimed);

  if (derive_deletes) {
    auto bulk = storage::LoadCsvBasic(options.out_dir);
    if (!bulk.ok()) {
      std::fprintf(stderr, "load for delete derivation failed: %s\n",
                   bulk.status().ToString().c_str());
      return 1;
    }
    datagen::DeleteStreamOptions del;
    del.seed = options.datagen.seed;
    del.days = delete_days;
    std::vector<datagen::UpdateEvent> deletes =
        datagen::DeriveDeleteStream(bulk.value(), del);
    int rc = WriteDeleteStream(options.out_dir, deletes);
    if (rc != 0) return rc;
  }

  if (!verify_load) return 0;

  std::printf("verify-load: loading %s...\n", options.out_dir.c_str());
  auto loaded = storage::LoadCsvBasic(options.out_dir);
  if (!loaded.ok()) {
    std::fprintf(stderr, "load failed: %s\n",
                 loaded.status().ToString().c_str());
    return 1;
  }
  storage::Graph graph(std::move(loaded.value()));
  storage::columnar::MemoryBreakdown mb = graph.Memory();
  std::printf("%s", mb.ToString().c_str());
  if (max_bytes_per_edge > 0 && mb.BytesPerEdge() > max_bytes_per_edge) {
    std::fprintf(stderr,
                 "FAIL: bytes/edge %.2f exceeds budget %.2f\n",
                 mb.BytesPerEdge(), max_bytes_per_edge);
    return 1;
  }
  std::printf("bytes/edge %.2f (raw %.2f, %.2fx), bytes/message %.2f "
              "(raw %.2f)\n",
              mb.BytesPerEdge(), mb.RawBytesPerEdge(),
              mb.BytesPerEdge() > 0
                  ? mb.RawBytesPerEdge() / mb.BytesPerEdge()
                  : 0.0,
              mb.BytesPerMessage(), mb.RawBytesPerMessage());
  return 0;
}

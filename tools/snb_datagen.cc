// snb_datagen — bounded-memory streaming datagen CLI.
//
// Generates the CsvBasic dataset and update streams through
// datagen::GenerateStreaming: messages are never materialized; external
// merge-sort runs spill to --spill-dir under --budget-mb. Output is
// byte-identical to the in-memory pipeline at every budget.
//
//   snb_datagen <out_dir> [--persons <n>] [--seed <s>] [--budget-mb <mb>]
//               [--spill-dir <dir>]           default <out_dir>/.spill
//               [--verify-load]               load + build graph afterwards
//               [--max-bytes-per-edge <b>]    with --verify-load: fail when
//                                             the compressed store exceeds b
//
// Exit status: 0 on success, 1 on generation/load failure or a violated
// --max-bytes-per-edge budget, 2 on usage errors.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "datagen/streaming.h"
#include "storage/graph.h"
#include "storage/loader.h"

namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <out_dir> [--persons <n>] [--seed <s>] "
               "[--budget-mb <mb>] [--spill-dir <dir>] [--verify-load] "
               "[--max-bytes-per-edge <b>]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace snb;  // NOLINT

  if (argc < 2 || argv[1][0] == '-') return Usage(argv[0]);
  datagen::StreamingOptions options;
  options.out_dir = argv[1];
  options.spill_dir = options.out_dir + "/.spill";
  bool verify_load = false;
  double max_bytes_per_edge = 0;

  for (int i = 2; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--persons") == 0 && i + 1 < argc) {
      options.datagen.num_persons = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(arg, "--seed") == 0 && i + 1 < argc) {
      options.datagen.seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(arg, "--budget-mb") == 0 && i + 1 < argc) {
      options.memory_budget_bytes =
          std::strtoull(argv[++i], nullptr, 10) << 20;
    } else if (std::strcmp(arg, "--spill-dir") == 0 && i + 1 < argc) {
      options.spill_dir = argv[++i];
    } else if (std::strcmp(arg, "--verify-load") == 0) {
      verify_load = true;
    } else if (std::strcmp(arg, "--max-bytes-per-edge") == 0 && i + 1 < argc) {
      max_bytes_per_edge = std::strtod(argv[++i], nullptr);
      verify_load = true;
    } else {
      return Usage(argv[0]);
    }
  }

  std::printf("streaming datagen: %llu persons, seed %llu, budget %zu MiB\n",
              static_cast<unsigned long long>(options.datagen.num_persons),
              static_cast<unsigned long long>(options.datagen.seed),
              options.memory_budget_bytes >> 20);
  datagen::StreamingStats stats;
  util::Status status = datagen::GenerateStreaming(options, &stats);
  if (!status.ok()) {
    std::fprintf(stderr, "generation failed: %s\n",
                 status.ToString().c_str());
    return 1;
  }
  std::printf(
      "  persons %zu, knows %zu, forums %zu, memberships %zu\n"
      "  posts %zu, comments %zu, likes %zu, update events %zu\n"
      "  spill runs %zu, orphans reclaimed %zu\n",
      stats.persons, stats.knows, stats.forums, stats.memberships,
      stats.posts, stats.comments, stats.likes, stats.update_events,
      stats.spill_runs, stats.orphans_reclaimed);

  if (!verify_load) return 0;

  std::printf("verify-load: loading %s...\n", options.out_dir.c_str());
  auto loaded = storage::LoadCsvBasic(options.out_dir);
  if (!loaded.ok()) {
    std::fprintf(stderr, "load failed: %s\n",
                 loaded.status().ToString().c_str());
    return 1;
  }
  storage::Graph graph(std::move(loaded.value()));
  storage::columnar::MemoryBreakdown mb = graph.Memory();
  std::printf("%s", mb.ToString().c_str());
  if (max_bytes_per_edge > 0 && mb.BytesPerEdge() > max_bytes_per_edge) {
    std::fprintf(stderr,
                 "FAIL: bytes/edge %.2f exceeds budget %.2f\n",
                 mb.BytesPerEdge(), max_bytes_per_edge);
    return 1;
  }
  std::printf("bytes/edge %.2f (raw %.2f, %.2fx), bytes/message %.2f "
              "(raw %.2f)\n",
              mb.BytesPerEdge(), mb.RawBytesPerEdge(),
              mb.BytesPerEdge() > 0
                  ? mb.RawBytesPerEdge() / mb.BytesPerEdge()
                  : 0.0,
              mb.BytesPerMessage(), mb.RawBytesPerMessage());
  return 0;
}

// snb_validate — standalone graph-invariant checker (the "arbitrary checks
// of the data" tool the audit workflow asks for, spec §6.1.3).
//
// Modes:
//   snb_validate --generate <sf>          datagen at the given scale factor
//                                         (default 0.003), build, validate
//   snb_validate --load <dir>             load a CsvBasic directory, build,
//                                         validate
//   snb_validate ... --deletes <dir>      also read the update streams under
//                                         <dir> and apply their DEL 1–8
//                                         events (cascading), then validate
//                                         the tombstoned graph and print the
//                                         tombstone report
//   snb_validate ... --expect-sf <sf>     additionally check cardinalities
//                                         against the SF's Table 2.12 row
//   snb_validate ... --no-store-check     skip the O(V+E) forward/reverse
//                                         cross-check
//
// Exit status: 0 when every invariant holds, 1 on violations (printed,
// grouped by invariant name — the tombstone-* classes cover delete
// invariants, so a torn cascade exits non-zero like any corruption), 2 on
// usage or load/apply errors.

#include <cstdio>
#include <cstring>
#include <optional>
#include <string>
#include <utility>

#include "core/scale_factors.h"
#include "datagen/datagen.h"
#include "datagen/update_stream.h"
#include "interactive/updates.h"
#include "storage/graph.h"
#include "storage/loader.h"
#include "validate/validator.h"

namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--generate <sf> | --load <dir>] [--deletes <dir>]"
               " [--expect-sf <sf>] [--no-store-check]\n",
               argv0);
  return 2;
}

/// Live-vs-tombstoned census of the graph, printed whenever the run applied
/// deletes (and on demand after any load that left tombstones behind).
void PrintTombstoneReport(const snb::storage::Graph& graph) {
  auto row = [](const char* name, size_t live, size_t total) {
    std::printf("  %-10s %zu live / %zu tombstoned\n", name, live,
                total - live);
  };
  std::printf("tombstones:\n");
  row("persons", graph.NumLivePersons(), graph.NumPersons());
  row("forums", graph.NumLiveForums(), graph.NumForums());
  row("posts", graph.NumLivePosts(), graph.NumPosts());
  row("comments", graph.NumLiveComments(), graph.NumComments());
  std::printf("  completed cascades (tombstone epoch): %u\n",
              graph.TombstoneEpoch());
  std::printf("  compaction epoch: %u\n", graph.CompactionEpoch());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace snb;  // NOLINT

  std::string generate_sf = "0.003";
  std::string load_dir;
  std::string deletes_dir;
  std::string expect_sf;
  bool store_check = true;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--generate") == 0 && i + 1 < argc) {
      generate_sf = argv[++i];
    } else if (std::strcmp(arg, "--load") == 0 && i + 1 < argc) {
      load_dir = argv[++i];
    } else if (std::strcmp(arg, "--deletes") == 0 && i + 1 < argc) {
      deletes_dir = argv[++i];
    } else if (std::strcmp(arg, "--expect-sf") == 0 && i + 1 < argc) {
      expect_sf = argv[++i];
    } else if (std::strcmp(arg, "--no-store-check") == 0) {
      store_check = false;
    } else {
      return Usage(argv[0]);
    }
  }

  validate::ValidatorOptions options;
  options.run_store_consistency = store_check;

  core::SocialNetwork network;
  if (!load_dir.empty()) {
    auto loaded = storage::LoadCsvBasic(load_dir);
    if (!loaded.ok()) {
      std::fprintf(stderr, "snb_validate: load failed: %s\n",
                   loaded.status().ToString().c_str());
      return 2;
    }
    network = std::move(loaded).value();
  } else {
    auto sf = core::FindScaleFactor(generate_sf);
    if (!sf.has_value()) {
      std::fprintf(stderr, "snb_validate: unknown scale factor '%s'\n",
                   generate_sf.c_str());
      return 2;
    }
    datagen::DatagenConfig cfg;
    cfg.num_persons = sf->num_persons;
    network = datagen::Generate(cfg).network;
    // A generated dataset's cardinality is checkable by construction.
    options.expect_sf = *sf;
  }

  if (!expect_sf.empty()) {
    auto sf = core::FindScaleFactor(expect_sf);
    if (!sf.has_value()) {
      std::fprintf(stderr, "snb_validate: unknown scale factor '%s'\n",
                   expect_sf.c_str());
      return 2;
    }
    options.expect_sf = *sf;
  }

  storage::Graph graph(std::move(network));
  std::printf("snb_validate: %zu persons, %zu forums, %zu messages\n",
              graph.NumPersons(), graph.NumForums(), graph.NumMessages());

  if (!deletes_dir.empty()) {
    auto updates = datagen::ReadUpdateStreams(deletes_dir);
    if (!updates.ok()) {
      std::fprintf(stderr, "snb_validate: cannot read update streams: %s\n",
                   updates.status().ToString().c_str());
      return 2;
    }
    size_t applied = 0;
    for (const datagen::UpdateEvent& event : updates.value()) {
      if (!datagen::IsDeleteKind(event.kind)) continue;
      util::Status st = interactive::ApplyUpdate(graph, event);
      if (!st.ok()) {
        std::fprintf(stderr,
                     "snb_validate: cascade failed (graph is torn): %s\n",
                     st.ToString().c_str());
        return 2;
      }
      ++applied;
    }
    std::printf("applied %zu delete events\n", applied);
  }
  if (!deletes_dir.empty() || graph.HasTombstones()) {
    PrintTombstoneReport(graph);
  }

  validate::ValidationReport report = validate::ValidateGraph(graph, options);
  if (!report.ok()) {
    std::fprintf(stderr, "%s", report.ToString().c_str());
    std::printf("FAILED: %zu violation(s) across %zu invariant class(es)\n",
                report.violations.size(), report.invariants_checked);
    return 1;
  }
  std::printf("OK: all %zu invariant classes hold\n",
              report.invariants_checked);
  return 0;
}

file(REMOVE_RECURSE
  "libsnb_storage.a"
)

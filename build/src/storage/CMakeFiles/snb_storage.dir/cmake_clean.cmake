file(REMOVE_RECURSE
  "CMakeFiles/snb_storage.dir/consistency.cc.o"
  "CMakeFiles/snb_storage.dir/consistency.cc.o.d"
  "CMakeFiles/snb_storage.dir/export.cc.o"
  "CMakeFiles/snb_storage.dir/export.cc.o.d"
  "CMakeFiles/snb_storage.dir/graph.cc.o"
  "CMakeFiles/snb_storage.dir/graph.cc.o.d"
  "CMakeFiles/snb_storage.dir/loader.cc.o"
  "CMakeFiles/snb_storage.dir/loader.cc.o.d"
  "libsnb_storage.a"
  "libsnb_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snb_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for snb_storage.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/consistency.cc" "src/storage/CMakeFiles/snb_storage.dir/consistency.cc.o" "gcc" "src/storage/CMakeFiles/snb_storage.dir/consistency.cc.o.d"
  "/root/repo/src/storage/export.cc" "src/storage/CMakeFiles/snb_storage.dir/export.cc.o" "gcc" "src/storage/CMakeFiles/snb_storage.dir/export.cc.o.d"
  "/root/repo/src/storage/graph.cc" "src/storage/CMakeFiles/snb_storage.dir/graph.cc.o" "gcc" "src/storage/CMakeFiles/snb_storage.dir/graph.cc.o.d"
  "/root/repo/src/storage/loader.cc" "src/storage/CMakeFiles/snb_storage.dir/loader.cc.o" "gcc" "src/storage/CMakeFiles/snb_storage.dir/loader.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/snb_core.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/snb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/datagen/activity_generator.cc" "src/datagen/CMakeFiles/snb_datagen.dir/activity_generator.cc.o" "gcc" "src/datagen/CMakeFiles/snb_datagen.dir/activity_generator.cc.o.d"
  "/root/repo/src/datagen/datagen.cc" "src/datagen/CMakeFiles/snb_datagen.dir/datagen.cc.o" "gcc" "src/datagen/CMakeFiles/snb_datagen.dir/datagen.cc.o.d"
  "/root/repo/src/datagen/dictionaries.cc" "src/datagen/CMakeFiles/snb_datagen.dir/dictionaries.cc.o" "gcc" "src/datagen/CMakeFiles/snb_datagen.dir/dictionaries.cc.o.d"
  "/root/repo/src/datagen/dictionary_data.cc" "src/datagen/CMakeFiles/snb_datagen.dir/dictionary_data.cc.o" "gcc" "src/datagen/CMakeFiles/snb_datagen.dir/dictionary_data.cc.o.d"
  "/root/repo/src/datagen/flashmob.cc" "src/datagen/CMakeFiles/snb_datagen.dir/flashmob.cc.o" "gcc" "src/datagen/CMakeFiles/snb_datagen.dir/flashmob.cc.o.d"
  "/root/repo/src/datagen/knows_generator.cc" "src/datagen/CMakeFiles/snb_datagen.dir/knows_generator.cc.o" "gcc" "src/datagen/CMakeFiles/snb_datagen.dir/knows_generator.cc.o.d"
  "/root/repo/src/datagen/person_generator.cc" "src/datagen/CMakeFiles/snb_datagen.dir/person_generator.cc.o" "gcc" "src/datagen/CMakeFiles/snb_datagen.dir/person_generator.cc.o.d"
  "/root/repo/src/datagen/serializer.cc" "src/datagen/CMakeFiles/snb_datagen.dir/serializer.cc.o" "gcc" "src/datagen/CMakeFiles/snb_datagen.dir/serializer.cc.o.d"
  "/root/repo/src/datagen/serializer_composite.cc" "src/datagen/CMakeFiles/snb_datagen.dir/serializer_composite.cc.o" "gcc" "src/datagen/CMakeFiles/snb_datagen.dir/serializer_composite.cc.o.d"
  "/root/repo/src/datagen/statistics.cc" "src/datagen/CMakeFiles/snb_datagen.dir/statistics.cc.o" "gcc" "src/datagen/CMakeFiles/snb_datagen.dir/statistics.cc.o.d"
  "/root/repo/src/datagen/update_stream.cc" "src/datagen/CMakeFiles/snb_datagen.dir/update_stream.cc.o" "gcc" "src/datagen/CMakeFiles/snb_datagen.dir/update_stream.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/snb_core.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/snb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty dependencies file for snb_datagen.
# This may be replaced when dependencies are built.

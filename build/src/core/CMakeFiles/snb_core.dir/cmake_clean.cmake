file(REMOVE_RECURSE
  "CMakeFiles/snb_core.dir/choke_points.cc.o"
  "CMakeFiles/snb_core.dir/choke_points.cc.o.d"
  "CMakeFiles/snb_core.dir/date_time.cc.o"
  "CMakeFiles/snb_core.dir/date_time.cc.o.d"
  "CMakeFiles/snb_core.dir/scale_factors.cc.o"
  "CMakeFiles/snb_core.dir/scale_factors.cc.o.d"
  "CMakeFiles/snb_core.dir/schema.cc.o"
  "CMakeFiles/snb_core.dir/schema.cc.o.d"
  "libsnb_core.a"
  "libsnb_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snb_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

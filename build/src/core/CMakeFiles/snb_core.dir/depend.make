# Empty dependencies file for snb_core.
# This may be replaced when dependencies are built.

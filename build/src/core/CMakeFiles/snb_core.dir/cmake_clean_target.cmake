file(REMOVE_RECURSE
  "libsnb_core.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/choke_points.cc" "src/core/CMakeFiles/snb_core.dir/choke_points.cc.o" "gcc" "src/core/CMakeFiles/snb_core.dir/choke_points.cc.o.d"
  "/root/repo/src/core/date_time.cc" "src/core/CMakeFiles/snb_core.dir/date_time.cc.o" "gcc" "src/core/CMakeFiles/snb_core.dir/date_time.cc.o.d"
  "/root/repo/src/core/scale_factors.cc" "src/core/CMakeFiles/snb_core.dir/scale_factors.cc.o" "gcc" "src/core/CMakeFiles/snb_core.dir/scale_factors.cc.o.d"
  "/root/repo/src/core/schema.cc" "src/core/CMakeFiles/snb_core.dir/schema.cc.o" "gcc" "src/core/CMakeFiles/snb_core.dir/schema.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/snb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

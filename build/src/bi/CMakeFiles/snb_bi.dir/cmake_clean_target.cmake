file(REMOVE_RECURSE
  "libsnb_bi.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bi/bi01.cc" "src/bi/CMakeFiles/snb_bi.dir/bi01.cc.o" "gcc" "src/bi/CMakeFiles/snb_bi.dir/bi01.cc.o.d"
  "/root/repo/src/bi/bi02.cc" "src/bi/CMakeFiles/snb_bi.dir/bi02.cc.o" "gcc" "src/bi/CMakeFiles/snb_bi.dir/bi02.cc.o.d"
  "/root/repo/src/bi/bi03.cc" "src/bi/CMakeFiles/snb_bi.dir/bi03.cc.o" "gcc" "src/bi/CMakeFiles/snb_bi.dir/bi03.cc.o.d"
  "/root/repo/src/bi/bi04.cc" "src/bi/CMakeFiles/snb_bi.dir/bi04.cc.o" "gcc" "src/bi/CMakeFiles/snb_bi.dir/bi04.cc.o.d"
  "/root/repo/src/bi/bi05.cc" "src/bi/CMakeFiles/snb_bi.dir/bi05.cc.o" "gcc" "src/bi/CMakeFiles/snb_bi.dir/bi05.cc.o.d"
  "/root/repo/src/bi/bi06.cc" "src/bi/CMakeFiles/snb_bi.dir/bi06.cc.o" "gcc" "src/bi/CMakeFiles/snb_bi.dir/bi06.cc.o.d"
  "/root/repo/src/bi/bi07.cc" "src/bi/CMakeFiles/snb_bi.dir/bi07.cc.o" "gcc" "src/bi/CMakeFiles/snb_bi.dir/bi07.cc.o.d"
  "/root/repo/src/bi/bi08.cc" "src/bi/CMakeFiles/snb_bi.dir/bi08.cc.o" "gcc" "src/bi/CMakeFiles/snb_bi.dir/bi08.cc.o.d"
  "/root/repo/src/bi/bi09.cc" "src/bi/CMakeFiles/snb_bi.dir/bi09.cc.o" "gcc" "src/bi/CMakeFiles/snb_bi.dir/bi09.cc.o.d"
  "/root/repo/src/bi/bi10.cc" "src/bi/CMakeFiles/snb_bi.dir/bi10.cc.o" "gcc" "src/bi/CMakeFiles/snb_bi.dir/bi10.cc.o.d"
  "/root/repo/src/bi/bi11.cc" "src/bi/CMakeFiles/snb_bi.dir/bi11.cc.o" "gcc" "src/bi/CMakeFiles/snb_bi.dir/bi11.cc.o.d"
  "/root/repo/src/bi/bi12.cc" "src/bi/CMakeFiles/snb_bi.dir/bi12.cc.o" "gcc" "src/bi/CMakeFiles/snb_bi.dir/bi12.cc.o.d"
  "/root/repo/src/bi/bi13.cc" "src/bi/CMakeFiles/snb_bi.dir/bi13.cc.o" "gcc" "src/bi/CMakeFiles/snb_bi.dir/bi13.cc.o.d"
  "/root/repo/src/bi/bi14.cc" "src/bi/CMakeFiles/snb_bi.dir/bi14.cc.o" "gcc" "src/bi/CMakeFiles/snb_bi.dir/bi14.cc.o.d"
  "/root/repo/src/bi/bi15.cc" "src/bi/CMakeFiles/snb_bi.dir/bi15.cc.o" "gcc" "src/bi/CMakeFiles/snb_bi.dir/bi15.cc.o.d"
  "/root/repo/src/bi/bi16.cc" "src/bi/CMakeFiles/snb_bi.dir/bi16.cc.o" "gcc" "src/bi/CMakeFiles/snb_bi.dir/bi16.cc.o.d"
  "/root/repo/src/bi/bi17.cc" "src/bi/CMakeFiles/snb_bi.dir/bi17.cc.o" "gcc" "src/bi/CMakeFiles/snb_bi.dir/bi17.cc.o.d"
  "/root/repo/src/bi/bi18.cc" "src/bi/CMakeFiles/snb_bi.dir/bi18.cc.o" "gcc" "src/bi/CMakeFiles/snb_bi.dir/bi18.cc.o.d"
  "/root/repo/src/bi/bi19.cc" "src/bi/CMakeFiles/snb_bi.dir/bi19.cc.o" "gcc" "src/bi/CMakeFiles/snb_bi.dir/bi19.cc.o.d"
  "/root/repo/src/bi/bi20.cc" "src/bi/CMakeFiles/snb_bi.dir/bi20.cc.o" "gcc" "src/bi/CMakeFiles/snb_bi.dir/bi20.cc.o.d"
  "/root/repo/src/bi/bi21.cc" "src/bi/CMakeFiles/snb_bi.dir/bi21.cc.o" "gcc" "src/bi/CMakeFiles/snb_bi.dir/bi21.cc.o.d"
  "/root/repo/src/bi/bi22.cc" "src/bi/CMakeFiles/snb_bi.dir/bi22.cc.o" "gcc" "src/bi/CMakeFiles/snb_bi.dir/bi22.cc.o.d"
  "/root/repo/src/bi/bi23.cc" "src/bi/CMakeFiles/snb_bi.dir/bi23.cc.o" "gcc" "src/bi/CMakeFiles/snb_bi.dir/bi23.cc.o.d"
  "/root/repo/src/bi/bi24.cc" "src/bi/CMakeFiles/snb_bi.dir/bi24.cc.o" "gcc" "src/bi/CMakeFiles/snb_bi.dir/bi24.cc.o.d"
  "/root/repo/src/bi/bi25.cc" "src/bi/CMakeFiles/snb_bi.dir/bi25.cc.o" "gcc" "src/bi/CMakeFiles/snb_bi.dir/bi25.cc.o.d"
  "/root/repo/src/bi/naive_bi_01_05.cc" "src/bi/CMakeFiles/snb_bi.dir/naive_bi_01_05.cc.o" "gcc" "src/bi/CMakeFiles/snb_bi.dir/naive_bi_01_05.cc.o.d"
  "/root/repo/src/bi/naive_bi_06_10.cc" "src/bi/CMakeFiles/snb_bi.dir/naive_bi_06_10.cc.o" "gcc" "src/bi/CMakeFiles/snb_bi.dir/naive_bi_06_10.cc.o.d"
  "/root/repo/src/bi/naive_bi_11_15.cc" "src/bi/CMakeFiles/snb_bi.dir/naive_bi_11_15.cc.o" "gcc" "src/bi/CMakeFiles/snb_bi.dir/naive_bi_11_15.cc.o.d"
  "/root/repo/src/bi/naive_bi_16_20.cc" "src/bi/CMakeFiles/snb_bi.dir/naive_bi_16_20.cc.o" "gcc" "src/bi/CMakeFiles/snb_bi.dir/naive_bi_16_20.cc.o.d"
  "/root/repo/src/bi/naive_bi_21_25.cc" "src/bi/CMakeFiles/snb_bi.dir/naive_bi_21_25.cc.o" "gcc" "src/bi/CMakeFiles/snb_bi.dir/naive_bi_21_25.cc.o.d"
  "/root/repo/src/bi/parallel.cc" "src/bi/CMakeFiles/snb_bi.dir/parallel.cc.o" "gcc" "src/bi/CMakeFiles/snb_bi.dir/parallel.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/engine/CMakeFiles/snb_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/snb_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/snb_core.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/snb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty dependencies file for snb_bi.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/snb_interactive.dir/ic01_05.cc.o"
  "CMakeFiles/snb_interactive.dir/ic01_05.cc.o.d"
  "CMakeFiles/snb_interactive.dir/ic06_10.cc.o"
  "CMakeFiles/snb_interactive.dir/ic06_10.cc.o.d"
  "CMakeFiles/snb_interactive.dir/ic11_14.cc.o"
  "CMakeFiles/snb_interactive.dir/ic11_14.cc.o.d"
  "CMakeFiles/snb_interactive.dir/naive_ic_01_07.cc.o"
  "CMakeFiles/snb_interactive.dir/naive_ic_01_07.cc.o.d"
  "CMakeFiles/snb_interactive.dir/naive_ic_08_14.cc.o"
  "CMakeFiles/snb_interactive.dir/naive_ic_08_14.cc.o.d"
  "CMakeFiles/snb_interactive.dir/naive_is.cc.o"
  "CMakeFiles/snb_interactive.dir/naive_is.cc.o.d"
  "CMakeFiles/snb_interactive.dir/short_reads.cc.o"
  "CMakeFiles/snb_interactive.dir/short_reads.cc.o.d"
  "CMakeFiles/snb_interactive.dir/updates.cc.o"
  "CMakeFiles/snb_interactive.dir/updates.cc.o.d"
  "libsnb_interactive.a"
  "libsnb_interactive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snb_interactive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

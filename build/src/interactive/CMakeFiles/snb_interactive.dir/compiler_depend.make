# Empty compiler generated dependencies file for snb_interactive.
# This may be replaced when dependencies are built.

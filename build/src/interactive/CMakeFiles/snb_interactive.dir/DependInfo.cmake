
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/interactive/ic01_05.cc" "src/interactive/CMakeFiles/snb_interactive.dir/ic01_05.cc.o" "gcc" "src/interactive/CMakeFiles/snb_interactive.dir/ic01_05.cc.o.d"
  "/root/repo/src/interactive/ic06_10.cc" "src/interactive/CMakeFiles/snb_interactive.dir/ic06_10.cc.o" "gcc" "src/interactive/CMakeFiles/snb_interactive.dir/ic06_10.cc.o.d"
  "/root/repo/src/interactive/ic11_14.cc" "src/interactive/CMakeFiles/snb_interactive.dir/ic11_14.cc.o" "gcc" "src/interactive/CMakeFiles/snb_interactive.dir/ic11_14.cc.o.d"
  "/root/repo/src/interactive/naive_ic_01_07.cc" "src/interactive/CMakeFiles/snb_interactive.dir/naive_ic_01_07.cc.o" "gcc" "src/interactive/CMakeFiles/snb_interactive.dir/naive_ic_01_07.cc.o.d"
  "/root/repo/src/interactive/naive_ic_08_14.cc" "src/interactive/CMakeFiles/snb_interactive.dir/naive_ic_08_14.cc.o" "gcc" "src/interactive/CMakeFiles/snb_interactive.dir/naive_ic_08_14.cc.o.d"
  "/root/repo/src/interactive/naive_is.cc" "src/interactive/CMakeFiles/snb_interactive.dir/naive_is.cc.o" "gcc" "src/interactive/CMakeFiles/snb_interactive.dir/naive_is.cc.o.d"
  "/root/repo/src/interactive/short_reads.cc" "src/interactive/CMakeFiles/snb_interactive.dir/short_reads.cc.o" "gcc" "src/interactive/CMakeFiles/snb_interactive.dir/short_reads.cc.o.d"
  "/root/repo/src/interactive/updates.cc" "src/interactive/CMakeFiles/snb_interactive.dir/updates.cc.o" "gcc" "src/interactive/CMakeFiles/snb_interactive.dir/updates.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/engine/CMakeFiles/snb_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/snb_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/datagen/CMakeFiles/snb_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/snb_core.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/snb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

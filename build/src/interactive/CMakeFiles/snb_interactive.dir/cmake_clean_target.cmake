file(REMOVE_RECURSE
  "libsnb_interactive.a"
)

file(REMOVE_RECURSE
  "libsnb_params.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/snb_params.dir/parameter_curation.cc.o"
  "CMakeFiles/snb_params.dir/parameter_curation.cc.o.d"
  "libsnb_params.a"
  "libsnb_params.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snb_params.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

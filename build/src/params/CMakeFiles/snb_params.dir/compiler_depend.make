# Empty compiler generated dependencies file for snb_params.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/snb_driver.dir/driver.cc.o"
  "CMakeFiles/snb_driver.dir/driver.cc.o.d"
  "CMakeFiles/snb_driver.dir/validation.cc.o"
  "CMakeFiles/snb_driver.dir/validation.cc.o.d"
  "libsnb_driver.a"
  "libsnb_driver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snb_driver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

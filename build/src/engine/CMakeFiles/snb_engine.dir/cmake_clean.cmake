file(REMOVE_RECURSE
  "CMakeFiles/snb_engine.dir/bfs.cc.o"
  "CMakeFiles/snb_engine.dir/bfs.cc.o.d"
  "libsnb_engine.a"
  "libsnb_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snb_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libsnb_engine.a"
)

# Empty dependencies file for snb_engine.
# This may be replaced when dependencies are built.

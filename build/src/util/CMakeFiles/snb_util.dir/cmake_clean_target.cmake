file(REMOVE_RECURSE
  "libsnb_util.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_parallel.cc" "bench/CMakeFiles/bench_parallel.dir/bench_parallel.cc.o" "gcc" "bench/CMakeFiles/bench_parallel.dir/bench_parallel.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/driver/CMakeFiles/snb_driver.dir/DependInfo.cmake"
  "/root/repo/build/src/params/CMakeFiles/snb_params.dir/DependInfo.cmake"
  "/root/repo/build/src/interactive/CMakeFiles/snb_interactive.dir/DependInfo.cmake"
  "/root/repo/build/src/bi/CMakeFiles/snb_bi.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/snb_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/snb_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/datagen/CMakeFiles/snb_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/snb_core.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/snb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/table_frequencies.dir/table_frequencies.cc.o"
  "CMakeFiles/table_frequencies.dir/table_frequencies.cc.o.d"
  "table_frequencies"
  "table_frequencies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_frequencies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for table_frequencies.
# This may be replaced when dependencies are built.

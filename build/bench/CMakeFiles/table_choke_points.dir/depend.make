# Empty dependencies file for table_choke_points.
# This may be replaced when dependencies are built.

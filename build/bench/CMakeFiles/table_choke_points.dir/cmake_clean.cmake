file(REMOVE_RECURSE
  "CMakeFiles/table_choke_points.dir/table_choke_points.cc.o"
  "CMakeFiles/table_choke_points.dir/table_choke_points.cc.o.d"
  "table_choke_points"
  "table_choke_points.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_choke_points.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_engine_ablation.dir/bench_engine_ablation.cc.o"
  "CMakeFiles/bench_engine_ablation.dir/bench_engine_ablation.cc.o.d"
  "bench_engine_ablation"
  "bench_engine_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_engine_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_engine_ablation.
# This may be replaced when dependencies are built.

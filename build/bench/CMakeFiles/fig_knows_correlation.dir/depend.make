# Empty dependencies file for fig_knows_correlation.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig_knows_correlation.dir/fig_knows_correlation.cc.o"
  "CMakeFiles/fig_knows_correlation.dir/fig_knows_correlation.cc.o.d"
  "fig_knows_correlation"
  "fig_knows_correlation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_knows_correlation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_param_curation.
# This may be replaced when dependencies are built.

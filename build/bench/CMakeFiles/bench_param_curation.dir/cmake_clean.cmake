file(REMOVE_RECURSE
  "CMakeFiles/bench_param_curation.dir/bench_param_curation.cc.o"
  "CMakeFiles/bench_param_curation.dir/bench_param_curation.cc.o.d"
  "bench_param_curation"
  "bench_param_curation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_param_curation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_driver.dir/bench_driver.cc.o"
  "CMakeFiles/bench_driver.dir/bench_driver.cc.o.d"
  "bench_driver"
  "bench_driver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_driver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

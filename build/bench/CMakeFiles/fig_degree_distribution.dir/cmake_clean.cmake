file(REMOVE_RECURSE
  "CMakeFiles/fig_degree_distribution.dir/fig_degree_distribution.cc.o"
  "CMakeFiles/fig_degree_distribution.dir/fig_degree_distribution.cc.o.d"
  "fig_degree_distribution"
  "fig_degree_distribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_degree_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

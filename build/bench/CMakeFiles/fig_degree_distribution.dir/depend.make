# Empty dependencies file for fig_degree_distribution.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for table_serializer_files.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/table_serializer_files.dir/table_serializer_files.cc.o"
  "CMakeFiles/table_serializer_files.dir/table_serializer_files.cc.o.d"
  "table_serializer_files"
  "table_serializer_files.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_serializer_files.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bi_sf_sweep.
# This may be replaced when dependencies are built.

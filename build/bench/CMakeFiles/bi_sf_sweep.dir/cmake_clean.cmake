file(REMOVE_RECURSE
  "CMakeFiles/bi_sf_sweep.dir/bi_sf_sweep.cc.o"
  "CMakeFiles/bi_sf_sweep.dir/bi_sf_sweep.cc.o.d"
  "bi_sf_sweep"
  "bi_sf_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bi_sf_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

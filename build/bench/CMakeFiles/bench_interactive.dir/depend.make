# Empty dependencies file for bench_interactive.
# This may be replaced when dependencies are built.

# Empty dependencies file for table_sf_stats.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/table_sf_stats.dir/table_sf_stats.cc.o"
  "CMakeFiles/table_sf_stats.dir/table_sf_stats.cc.o.d"
  "table_sf_stats"
  "table_sf_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_sf_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

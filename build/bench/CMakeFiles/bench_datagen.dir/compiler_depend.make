# Empty compiler generated dependencies file for bench_datagen.
# This may be replaced when dependencies are built.

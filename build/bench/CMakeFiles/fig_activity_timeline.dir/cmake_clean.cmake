file(REMOVE_RECURSE
  "CMakeFiles/fig_activity_timeline.dir/fig_activity_timeline.cc.o"
  "CMakeFiles/fig_activity_timeline.dir/fig_activity_timeline.cc.o.d"
  "fig_activity_timeline"
  "fig_activity_timeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_activity_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

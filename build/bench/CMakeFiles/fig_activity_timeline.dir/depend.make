# Empty dependencies file for fig_activity_timeline.
# This may be replaced when dependencies are built.

# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart" "300")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_datagen_tool "/root/repo/build/examples/datagen_tool" "/root/repo/build/examples/datagen_out" "--persons" "150")
set_tests_properties(example_datagen_tool PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_analytics_dashboard "/root/repo/build/examples/analytics_dashboard" "300")
set_tests_properties(example_analytics_dashboard PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_interactive_session "/root/repo/build/examples/interactive_session" "300")
set_tests_properties(example_interactive_session PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_audit_run "/root/repo/build/examples/audit_run" "250")
set_tests_properties(example_audit_run PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;23;add_test;/root/repo/examples/CMakeLists.txt;0;")

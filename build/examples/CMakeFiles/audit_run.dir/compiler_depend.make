# Empty compiler generated dependencies file for audit_run.
# This may be replaced when dependencies are built.

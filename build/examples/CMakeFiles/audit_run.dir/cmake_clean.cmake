file(REMOVE_RECURSE
  "CMakeFiles/audit_run.dir/audit_run.cpp.o"
  "CMakeFiles/audit_run.dir/audit_run.cpp.o.d"
  "audit_run"
  "audit_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/audit_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

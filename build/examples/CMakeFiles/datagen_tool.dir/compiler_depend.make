# Empty compiler generated dependencies file for datagen_tool.
# This may be replaced when dependencies are built.

# Empty dependencies file for bi_crossval_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bi_crossval_test.dir/bi_crossval_test.cc.o"
  "CMakeFiles/bi_crossval_test.dir/bi_crossval_test.cc.o.d"
  "bi_crossval_test"
  "bi_crossval_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bi_crossval_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/serializer_extra_test.dir/serializer_extra_test.cc.o"
  "CMakeFiles/serializer_extra_test.dir/serializer_extra_test.cc.o.d"
  "serializer_extra_test"
  "serializer_extra_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serializer_extra_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/adjacency_fuzz_test.dir/adjacency_fuzz_test.cc.o"
  "CMakeFiles/adjacency_fuzz_test.dir/adjacency_fuzz_test.cc.o.d"
  "adjacency_fuzz_test"
  "adjacency_fuzz_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adjacency_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

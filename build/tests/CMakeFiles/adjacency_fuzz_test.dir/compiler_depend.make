# Empty compiler generated dependencies file for adjacency_fuzz_test.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for dictionaries_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/dictionaries_test.dir/dictionaries_test.cc.o"
  "CMakeFiles/dictionaries_test.dir/dictionaries_test.cc.o.d"
  "dictionaries_test"
  "dictionaries_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dictionaries_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

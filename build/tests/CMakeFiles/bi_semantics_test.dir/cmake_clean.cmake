file(REMOVE_RECURSE
  "CMakeFiles/bi_semantics_test.dir/bi_semantics_test.cc.o"
  "CMakeFiles/bi_semantics_test.dir/bi_semantics_test.cc.o.d"
  "bi_semantics_test"
  "bi_semantics_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bi_semantics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bi_semantics_test.
# This may be replaced when dependencies are built.

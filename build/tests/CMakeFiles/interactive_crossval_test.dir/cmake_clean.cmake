file(REMOVE_RECURSE
  "CMakeFiles/interactive_crossval_test.dir/interactive_crossval_test.cc.o"
  "CMakeFiles/interactive_crossval_test.dir/interactive_crossval_test.cc.o.d"
  "interactive_crossval_test"
  "interactive_crossval_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interactive_crossval_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for loader_failure_test.
# This may be replaced when dependencies are built.

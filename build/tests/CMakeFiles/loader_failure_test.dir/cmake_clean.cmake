file(REMOVE_RECURSE
  "CMakeFiles/loader_failure_test.dir/loader_failure_test.cc.o"
  "CMakeFiles/loader_failure_test.dir/loader_failure_test.cc.o.d"
  "loader_failure_test"
  "loader_failure_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/loader_failure_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bi_semantics2_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bi_semantics2_test.dir/bi_semantics2_test.cc.o"
  "CMakeFiles/bi_semantics2_test.dir/bi_semantics2_test.cc.o.d"
  "bi_semantics2_test"
  "bi_semantics2_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bi_semantics2_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

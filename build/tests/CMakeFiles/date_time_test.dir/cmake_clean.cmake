file(REMOVE_RECURSE
  "CMakeFiles/date_time_test.dir/date_time_test.cc.o"
  "CMakeFiles/date_time_test.dir/date_time_test.cc.o.d"
  "date_time_test"
  "date_time_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/date_time_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
